//! The platform facade: one handle per simulated device under test.

use oranges_gemm::suite::suite_for;
use oranges_gemm::{GemmError, GemmImplementation, GemmOutcome, Matrix};
use oranges_harness::metric::PowerContext;
use oranges_metal::Device;
use oranges_powermetrics::{PowerReading, PowerSession, SamplerError};
use oranges_soc::chip::ChipGeneration;
use oranges_soc::device::DeviceModel;
use oranges_stream::cpu::{CpuStream, CpuStreamConfig};
use oranges_stream::gpu::{GpuStream, GpuStreamConfig};
use oranges_stream::StreamRun;
use oranges_umem::buffer::SharedAddressSpace;

/// A complete run (performance + piggybacked power), as the paper's
/// harness produces for every experiment cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredRun {
    /// Timing outcome.
    pub outcome: GemmOutcome,
    /// Power reading over the same window.
    pub power: PowerReading,
}

impl MeasuredRun {
    /// GFLOPS of the run.
    pub fn gflops(&self) -> f64 {
        self.outcome.gflops()
    }

    /// GFLOPS per watt — the Figure 4 quantity.
    pub fn gflops_per_watt(&self) -> f64 {
        self.power.gflops_per_watt(self.outcome.flops)
    }

    /// The run's power/thermal provenance, ready to stamp onto the
    /// [`MetricSet`](oranges_harness::metric::MetricSet)s derived from
    /// it. Paper-protocol runs are short enough that DVFS never engages,
    /// so the thermal state is nominal (cap 1.0).
    pub fn power_context(&self) -> PowerContext {
        PowerContext {
            package_watts: self.power.package_watts(),
            energy_j: self.power.energy_j,
            window_s: self.power.window.as_secs_f64(),
            dvfs_cap: 1.0,
        }
    }
}

/// One simulated device under test (chip + Table 3 enclosure + substrates).
pub struct Platform {
    chip: ChipGeneration,
    device_model: &'static DeviceModel,
    metal: Device,
    space: SharedAddressSpace,
    power: PowerSession,
    suite: Vec<Box<dyn GemmImplementation>>,
}

impl Platform {
    /// Platform for a chip in its Table 3 enclosure.
    pub fn new(chip: ChipGeneration) -> Self {
        let metal = Device::system_default(chip);
        let space = metal.address_space().clone();
        Platform {
            chip,
            device_model: DeviceModel::of(chip),
            metal,
            space,
            power: PowerSession::new(chip),
            suite: suite_for(chip),
        }
    }

    /// The chip generation.
    pub fn chip(&self) -> ChipGeneration {
        self.chip
    }

    /// The Table 3 device.
    pub fn device_model(&self) -> &'static DeviceModel {
        self.device_model
    }

    /// The Metal device.
    pub fn metal(&self) -> &Device {
        &self.metal
    }

    /// The unified-memory space.
    pub fn address_space(&self) -> &SharedAddressSpace {
        &self.space
    }

    /// The power session.
    pub fn power_session(&self) -> &PowerSession {
        &self.power
    }

    /// Names of the available GEMM implementations (Table 2 order).
    pub fn implementation_names(&self) -> Vec<&'static str> {
        self.suite.iter().map(|i| i.name()).collect()
    }

    /// Run one implementation at size `n` with freshly generated matrices
    /// (functional when under the implementation's ceiling) and measure
    /// power over the same window.
    pub fn gemm(&mut self, implementation: &str, n: usize) -> Result<MeasuredRun, GemmError> {
        let a = Matrix::random(&self.space, n, 0xA11CE)?;
        let b = Matrix::random(&self.space, n, 0xB0B)?;
        let mut c = Matrix::zeros(&self.space, n)?;
        let implementation = self
            .suite
            .iter_mut()
            .find(|i| i.name() == implementation)
            .ok_or_else(|| {
                GemmError::Dimension(format!("unknown implementation {implementation}"))
            })?;
        let outcome = implementation.run(n, a.as_slice(), b.as_slice(), c.as_mut_slice())?;
        let power = self
            .power
            .measure(implementation.work_class(), outcome.duration, outcome.duty)
            .map_err(|e: SamplerError| GemmError::Verification(e.to_string()))?;
        Ok(MeasuredRun { outcome, power })
    }

    /// Model-only GEMM run (no matrices) with piggybacked power — what the
    /// figure sweeps use for the paper's largest sizes.
    pub fn gemm_modeled(
        &mut self,
        implementation: &str,
        n: usize,
    ) -> Result<MeasuredRun, GemmError> {
        let implementation = self
            .suite
            .iter_mut()
            .find(|i| i.name() == implementation)
            .ok_or_else(|| {
                GemmError::Dimension(format!("unknown implementation {implementation}"))
            })?;
        let outcome = implementation.model_run(n)?;
        let power = self
            .power
            .measure(implementation.work_class(), outcome.duration, outcome.duty)
            .map_err(|e: SamplerError| GemmError::Verification(e.to_string()))?;
        Ok(MeasuredRun { outcome, power })
    }

    /// Full CPU STREAM with the paper's configuration.
    pub fn stream_cpu(&self) -> StreamRun {
        CpuStream::new(self.chip).run()
    }

    /// Small functional CPU STREAM (validates arithmetic; for examples
    /// and tests).
    pub fn stream_cpu_quick(&self) -> StreamRun {
        CpuStream::with_config(self.chip, CpuStreamConfig::functional_small()).run()
    }

    /// Full GPU STREAM with the paper's configuration.
    pub fn stream_gpu(&self) -> StreamRun {
        GpuStream::new(self.chip)
            .run()
            .expect("standard library kernels present")
    }

    /// Small functional GPU STREAM.
    pub fn stream_gpu_quick(&self) -> StreamRun {
        GpuStream::with_config(self.chip, GpuStreamConfig::functional_small())
            .run()
            .expect("standard library kernels present")
    }
}

/// A lazily-populated set of platforms, one per chip generation.
///
/// Campaign workers own one pool each: a worker services units for any
/// chip, but a [`Platform`] is chip-specific, so the pool materializes
/// platforms on first use and reuses them for every later unit on the
/// same chip. Construction is the expensive part (suite + substrate
/// wiring); reuse is what makes a full-grid campaign cheap per unit.
#[derive(Default)]
pub struct PlatformPool {
    platforms: Vec<Platform>,
}

impl PlatformPool {
    /// An empty pool; platforms materialize on first request.
    pub fn new() -> Self {
        PlatformPool::default()
    }

    /// The platform for `chip`, creating it on first use.
    pub fn platform(&mut self, chip: ChipGeneration) -> &mut Platform {
        match self.platforms.iter().position(|p| p.chip() == chip) {
            Some(index) => &mut self.platforms[index],
            None => {
                self.platforms.push(Platform::new(chip));
                self.platforms.last_mut().expect("just pushed")
            }
        }
    }

    /// How many platforms have been materialized so far.
    pub fn len(&self) -> usize {
        self.platforms.len()
    }

    /// Whether the pool is still empty.
    pub fn is_empty(&self) -> bool {
        self.platforms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_wires_all_substrates() {
        let platform = Platform::new(ChipGeneration::M2);
        assert_eq!(platform.chip(), ChipGeneration::M2);
        assert_eq!(platform.device_model().memory_gb, 16);
        assert_eq!(
            platform.implementation_names(),
            vec![
                "CPU-Single",
                "CPU-OMP",
                "CPU-Accelerate",
                "GPU-Naive",
                "GPU-CUTLASS",
                "GPU-MPS"
            ]
        );
    }

    #[test]
    fn gemm_runs_functionally_and_measures_power() {
        let mut platform = Platform::new(ChipGeneration::M1);
        let run = platform.gemm("GPU-MPS", 64).unwrap();
        assert!(run.outcome.functional);
        assert!(run.gflops() > 0.0);
        assert!(run.power.package_watts() > 0.0);
        assert!(run.gflops_per_watt() > 0.0);
        let context = run.power_context();
        assert_eq!(context.package_watts, run.power.package_watts());
        assert!(context.window_s > 0.0 && context.energy_j > 0.0);
        assert!(!context.throttled(), "paper-protocol runs are nominal");
    }

    #[test]
    fn modeled_runs_cover_paper_scale() {
        let mut platform = Platform::new(ChipGeneration::M4);
        let run = platform.gemm_modeled("GPU-MPS", 16384).unwrap();
        assert!(!run.outcome.functional);
        // The headline number: ~2.9 TFLOPS.
        assert!((run.gflops() / 1e3 - 2.9).abs() < 0.1, "{}", run.gflops());
    }

    #[test]
    fn unknown_implementation_is_an_error() {
        let mut platform = Platform::new(ChipGeneration::M3);
        assert!(platform.gemm("GPU-FAST", 64).is_err());
    }

    #[test]
    fn stream_quick_paths_validate() {
        let platform = Platform::new(ChipGeneration::M1);
        assert!(platform.stream_cpu_quick().validated);
        assert!(platform.stream_gpu_quick().validated);
    }

    #[test]
    fn pool_materializes_once_per_chip() {
        let mut pool = PlatformPool::new();
        assert!(pool.is_empty());
        assert_eq!(pool.platform(ChipGeneration::M1).chip(), ChipGeneration::M1);
        assert_eq!(pool.platform(ChipGeneration::M4).chip(), ChipGeneration::M4);
        assert_eq!(pool.platform(ChipGeneration::M1).chip(), ChipGeneration::M1);
        assert_eq!(pool.len(), 2);
    }
}
