//! The paper-vs-measured report generator (EXPERIMENTS.md's engine).

use crate::experiments::{fig1, fig2, fig3, fig4};
use crate::paper;
use oranges_harness::table::TextTable;
use oranges_soc::chip::ChipGeneration;
use std::fmt::Write as _;

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// What is being compared ("M1 CPU STREAM best", …).
    pub quantity: String,
    /// The paper's value.
    pub published: f64,
    /// Our measured value.
    pub measured: f64,
    /// Unit label.
    pub unit: &'static str,
}

impl ComparisonRow {
    /// Relative error.
    pub fn relative_error(&self) -> f64 {
        paper::relative_error(self.measured, self.published)
    }
}

fn comparison_table(rows: &[ComparisonRow]) -> String {
    let mut table =
        TextTable::new(vec!["Quantity", "Paper", "Measured", "Unit", "Rel. err"]).numeric();
    for row in rows {
        table.row(vec![
            row.quantity.clone(),
            format!("{:.3}", row.published),
            format!("{:.3}", row.measured),
            row.unit.to_string(),
            format!("{:.1}%", row.relative_error() * 100.0),
        ]);
    }
    table.render()
}

/// Figure 1 comparison rows.
pub fn fig1_rows(data: &fig1::Fig1Data) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    for (chip, published) in paper::FIG1_CPU_BEST_GBS {
        rows.push(ComparisonRow {
            quantity: format!("{chip} CPU STREAM best"),
            published,
            measured: data.best(chip, "CPU"),
            unit: "GB/s",
        });
    }
    for (chip, published) in paper::FIG1_GPU_BEST_GBS {
        rows.push(ComparisonRow {
            quantity: format!("{chip} GPU STREAM best"),
            published,
            measured: data.best(chip, "GPU"),
            unit: "GB/s",
        });
    }
    rows
}

/// Figure 2 comparison rows (peak TFLOPS per anchored implementation).
pub fn fig2_rows(data: &fig2::Fig2Data) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    for implementation in ["CPU-Accelerate", "GPU-Naive", "GPU-CUTLASS", "GPU-MPS"] {
        for chip in ChipGeneration::ALL {
            if let Some(published) = paper::fig2_peak_tflops(implementation, chip) {
                rows.push(ComparisonRow {
                    quantity: format!("{chip} {implementation} peak"),
                    published,
                    measured: data.peak(chip, implementation) / 1e3,
                    unit: "TFLOPS",
                });
            }
        }
    }
    rows
}

/// Figure 4 comparison rows (peak TFLOPS/W for the anchored pair).
pub fn fig4_rows(data: &fig4::Fig4Data) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    for implementation in ["GPU-MPS", "CPU-Accelerate"] {
        for chip in ChipGeneration::ALL {
            if let Some(published) = paper::fig4_peak_tflops_per_watt(implementation, chip) {
                rows.push(ComparisonRow {
                    quantity: format!("{chip} {implementation} peak efficiency"),
                    published,
                    measured: data.peak(chip, implementation) / 1e3,
                    unit: "TFLOPS/W",
                });
            }
        }
    }
    rows
}

/// Build the full paper-vs-measured report body (the core of
/// EXPERIMENTS.md).
pub fn full_report(
    fig1_data: &fig1::Fig1Data,
    fig2_data: &fig2::Fig2Data,
    fig3_data: &fig3::Fig3Data,
    fig4_data: &fig4::Fig4Data,
) -> String {
    let mut out = String::new();
    writeln!(out, "## Figure 1 — STREAM bandwidth\n").unwrap();
    writeln!(out, "{}", comparison_table(&fig1_rows(fig1_data))).unwrap();
    writeln!(out, "## Figure 2 — GEMM FP32 throughput (peaks)\n").unwrap();
    writeln!(out, "{}", comparison_table(&fig2_rows(fig2_data))).unwrap();
    writeln!(out, "## Figure 3 — power dissipation\n").unwrap();
    if let Some(hottest) = fig3_data.hottest() {
        writeln!(
            out,
            "Hottest cell: {} {} at n = {} → {:.1} W (paper: M4 + Cutlass-style shader, ~17–20 W).\n",
            hottest.chip,
            hottest.implementation,
            hottest.n,
            hottest.power_mw / 1e3,
        )
        .unwrap();
    }
    writeln!(out, "## Figure 4 — efficiency (peaks)\n").unwrap();
    writeln!(out, "{}", comparison_table(&fig4_rows(fig4_data))).unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig2::Fig2Config;
    use crate::experiments::fig3::Fig3Config;
    use crate::experiments::fig4::Fig4Config;

    #[test]
    fn full_report_contains_all_sections_and_small_errors() {
        let fig1_data = fig1::run();
        let fig2_data = fig2::run(&Fig2Config {
            sizes: vec![8192, 16384],
            verify_max_flops: 0,
            ..Fig2Config::default()
        })
        .unwrap();
        let fig3_data = fig3::run(&Fig3Config::default()).unwrap();
        let fig4_data = fig4::run(&Fig4Config::default()).unwrap();
        let report = full_report(&fig1_data, &fig2_data, &fig3_data, &fig4_data);
        assert!(report.contains("## Figure 1"));
        assert!(report.contains("## Figure 2"));
        assert!(report.contains("## Figure 3"));
        assert!(report.contains("## Figure 4"));
        assert!(report.contains("Hottest cell: M4 GPU-CUTLASS"));
        // Every anchored row lands within 10% of the paper.
        for row in fig1_rows(&fig1_data)
            .into_iter()
            .chain(fig2_rows(&fig2_data))
            .chain(fig4_rows(&fig4_data))
        {
            assert!(
                row.relative_error() < 0.10,
                "{}: {:.1}%",
                row.quantity,
                row.relative_error() * 100.0
            );
        }
    }
}
