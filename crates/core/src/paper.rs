//! The paper's published numbers.
//!
//! These constants serve two purposes: they are the calibration anchors
//! the substrate models were fit to, and they are the expected values the
//! EXPERIMENTS.md generator compares measured results against. Keeping
//! them in one table makes the provenance of every model constant
//! auditable.

use oranges_soc::chip::ChipGeneration;

/// §5.1 / Figure 1: best CPU STREAM bandwidth, GB/s (M1..M4).
pub const FIG1_CPU_BEST_GBS: [(ChipGeneration, f64); 4] = [
    (ChipGeneration::M1, 59.0),
    (ChipGeneration::M2, 78.0),
    (ChipGeneration::M3, 92.0),
    (ChipGeneration::M4, 103.0),
];

/// §5.1 / Figure 1: best GPU STREAM bandwidth, GB/s.
pub const FIG1_GPU_BEST_GBS: [(ChipGeneration, f64); 4] = [
    (ChipGeneration::M1, 60.0),
    (ChipGeneration::M2, 91.0),
    (ChipGeneration::M3, 92.0),
    (ChipGeneration::M4, 100.0),
];

/// Table 1: theoretical memory bandwidth, GB/s.
pub const THEORETICAL_GBS: [(ChipGeneration, f64); 4] = [
    (ChipGeneration::M1, 67.0),
    (ChipGeneration::M2, 100.0),
    (ChipGeneration::M3, 100.0),
    (ChipGeneration::M4, 120.0),
];

/// §5.2 / Figure 2 peaks, TFLOPS, per implementation.
pub fn fig2_peak_tflops(implementation: &str, chip: ChipGeneration) -> Option<f64> {
    use ChipGeneration::*;
    let value = match implementation {
        "CPU-Accelerate" => match chip {
            M1 => 0.90,
            M2 => 1.09,
            M3 => 1.38,
            M4 => 1.49,
        },
        "GPU-MPS" => match chip {
            M1 => 1.36,
            M2 => 2.24,
            M3 => 2.47,
            M4 => 2.90,
        },
        "GPU-Naive" => match chip {
            M1 => 0.20,
            M2 => 0.39,
            M3 => 0.45,
            M4 => 0.54,
        },
        "GPU-CUTLASS" => match chip {
            M1 => 0.15,
            M2 => 0.16,
            M3 => 0.27,
            M4 => 0.34,
        },
        _ => return None,
    };
    Some(value)
}

/// §5.3 / Figure 4 peaks, TFLOPS/W, per implementation.
pub fn fig4_peak_tflops_per_watt(implementation: &str, chip: ChipGeneration) -> Option<f64> {
    use ChipGeneration::*;
    let value = match implementation {
        "GPU-MPS" => match chip {
            M1 => 0.21,
            M2 => 0.40,
            M3 => 0.46,
            M4 => 0.33,
        },
        "CPU-Accelerate" => match chip {
            M1 => 0.25,
            M2 => 0.20,
            M3 => 0.27,
            M4 => 0.23,
        },
        _ => return None,
    };
    Some(value)
}

/// §5.3: every chip reaches at least this efficiency with GPU-MPS.
pub const FIG4_MPS_FLOOR_GFLOPS_PER_W: f64 = 200.0;

/// §5.3: CPU-Single and CPU-OMP stay below this on every chip.
pub const FIG4_PLAIN_CPU_CEILING_GFLOPS_PER_W: f64 = 1.0;

/// §5.1 HPC Perspective: GH200 reference bandwidth points, GB/s.
pub const GH200_GRACE_STREAM_GBS: f64 = 310.0;
/// GH200 HBM3 STREAM, GB/s.
pub const GH200_HOPPER_STREAM_GBS: f64 = 3700.0;
/// §5.2: GH200 cublasSgemm on CUDA cores, TFLOPS.
pub const GH200_CUBLAS_FP32_TFLOPS: f64 = 41.0;
/// §5.2: GH200 TF32 tensor cores, TFLOPS.
pub const GH200_TF32_TFLOPS: f64 = 338.0;
/// §5.3: Green500 #1, GFLOPS/W.
pub const GREEN500_TOP_GFLOPS_PER_W: f64 = 72.0;

/// A stable digest of every model constant in this module — the
/// calibration anchors all simulated results ultimately derive from.
///
/// The campaign result cache stamps this digest into its disk envelope:
/// a cache file written under one set of constants is *stale* under
/// another (the same unit key would now produce different numbers), so
/// the loader invalidates mismatched files instead of letting stale
/// entries surface later as inexplicable merge conflicts. The digest is
/// FNV-1a 64 over a canonical rendering of the tables, so it changes
/// exactly when a constant changes.
///
/// The value is a per-build constant, so it is computed once and cached
/// (result caches are constructed on hot paths).
pub fn model_constants_digest() -> String {
    static DIGEST: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    DIGEST.get_or_init(compute_model_constants_digest).clone()
}

fn compute_model_constants_digest() -> String {
    let mut text = String::new();
    let mut push = |label: &str, value: f64| {
        text.push_str(label);
        text.push('=');
        text.push_str(&format!("{value:.6}"));
        text.push(';');
    };
    for (table, label) in [
        (&FIG1_CPU_BEST_GBS, "fig1_cpu"),
        (&FIG1_GPU_BEST_GBS, "fig1_gpu"),
        (&THEORETICAL_GBS, "theoretical"),
    ] {
        for (chip, value) in table.iter() {
            push(&format!("{label}.{}", chip.name()), *value);
        }
    }
    for implementation in ["CPU-Accelerate", "GPU-MPS", "GPU-Naive", "GPU-CUTLASS"] {
        for chip in ChipGeneration::ALL {
            if let Some(value) = fig2_peak_tflops(implementation, chip) {
                push(&format!("fig2.{implementation}.{}", chip.name()), value);
            }
            if let Some(value) = fig4_peak_tflops_per_watt(implementation, chip) {
                push(&format!("fig4.{implementation}.{}", chip.name()), value);
            }
        }
    }
    push("fig4_mps_floor", FIG4_MPS_FLOOR_GFLOPS_PER_W);
    push("fig4_cpu_ceiling", FIG4_PLAIN_CPU_CEILING_GFLOPS_PER_W);
    push("gh200_grace", GH200_GRACE_STREAM_GBS);
    push("gh200_hopper", GH200_HOPPER_STREAM_GBS);
    push("gh200_cublas", GH200_CUBLAS_FP32_TFLOPS);
    push("gh200_tf32", GH200_TF32_TFLOPS);
    push("green500", GREEN500_TOP_GFLOPS_PER_W);

    oranges_harness::fnv1a_64_hex(&text)
}

/// Relative error between a measured value and the paper's.
pub fn relative_error(measured: f64, published: f64) -> f64 {
    if published == 0.0 {
        return f64::INFINITY;
    }
    (measured - published).abs() / published.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_cover_all_chips() {
        for chip in ChipGeneration::ALL {
            assert!(fig2_peak_tflops("GPU-MPS", chip).is_some());
            assert!(fig2_peak_tflops("CPU-Accelerate", chip).is_some());
            assert!(fig2_peak_tflops("GPU-Naive", chip).is_some());
            assert!(fig2_peak_tflops("GPU-CUTLASS", chip).is_some());
            assert!(fig4_peak_tflops_per_watt("GPU-MPS", chip).is_some());
        }
        assert!(fig2_peak_tflops("CPU-Single", ChipGeneration::M1).is_none());
    }

    #[test]
    fn m4_peak_is_the_headline_2_9_tflops() {
        assert_eq!(fig2_peak_tflops("GPU-MPS", ChipGeneration::M4), Some(2.90));
    }

    #[test]
    fn model_digest_is_stable_and_well_formed() {
        let digest = model_constants_digest();
        assert_eq!(digest.len(), 16);
        assert!(digest.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(digest, model_constants_digest(), "deterministic");
    }

    #[test]
    fn relative_error_math() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }
}
