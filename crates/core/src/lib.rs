//! # oranges — "Apple vs. Oranges" in Rust
//!
//! A benchmarking framework reproducing *"Apple vs. Oranges: Evaluating
//! the Apple Silicon M-Series SoCs for HPC Performance and Efficiency"*
//! (Hübner, Hu, Peng, Markidis — IPPS 2025) over a deterministic
//! simulation of the M1–M4 SoCs.
//!
//! The stack, bottom-up:
//!
//! | crate | role |
//! |---|---|
//! | `oranges-soc` | chip/device models (Tables 1 & 3), cores, caches, thermal, references |
//! | `oranges-umem` | unified memory: 16 KiB pages, storage modes, calibrated bandwidth |
//! | `oranges-amx` | AMX/SME tile coprocessor (functional + cycle model) |
//! | `oranges-metal` | Metal-shaped GPU API, shaders, MPS, dispatch timing |
//! | `oranges-accelerate` | `cblas_sgemm`/vDSP on the AMX model |
//! | `oranges-powermetrics` | the power sampler, text format, SIGINFO windows |
//! | `oranges-stream` | STREAM for CPU (thread sweep) and GPU |
//! | `oranges-gemm` | the six Table 2 GEMM implementations |
//! | `oranges-harness` | repetition protocol, stats, tables, figures, CSV/JSON, run records |
//! | `oranges-campaign` | concurrent campaign orchestration: plan, worker pool, result cache |
//!
//! This crate ties the substrate together:
//!
//! - [`platform::Platform`]: one handle per simulated device under test
//!   (and [`platform::PlatformPool`], the campaign workers' lazily-built
//!   per-chip set);
//! - [`experiments`]: a runner per paper artifact — Tables 1–3,
//!   Figures 1–4, and the HPC-reference comparisons — each also exposed
//!   as a schedulable [`experiments::Experiment`] unit;
//! - [`paper`]: the published numbers (calibration anchors and expected
//!   values for EXPERIMENTS.md);
//! - [`report`]: the paper-vs-measured report generator.
//!
//! `oranges-campaign` sits above this crate and fans whole experiment
//! grids out across a worker pool with content-keyed result caching; its
//! service mode serves specs over a Unix socket and its orchestrator
//! shards campaigns across worker processes. The data flow, end to end:
//!
//! ```text
//!  CampaignSpec ──► Plan ──► scheduler ──► ResultCache ──► CampaignReport
//!  (kinds×chips)  (units)   (worker pool,  (content-keyed,  (MetricSets in
//!       ▲                    PlatformPool   disk-persistent, plan order →
//!       │                    per worker)    mergeable)       CSV/JSON/table)
//!       │                        │
//!  socket service            Experiment::run(&mut Platform)   ◄── this crate
//!  orchestrator                  │
//!  (oranges-campaign)            ▼
//!                            MetricSet (typed value + unit + provenance)
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use oranges::platform::Platform;
//! use oranges_soc::chip::ChipGeneration;
//!
//! let mut platform = Platform::new(ChipGeneration::M4);
//! let run = platform.gemm("GPU-MPS", 256).unwrap();
//! assert!(run.gflops() > 0.0);
//! let stream = platform.stream_cpu_quick();
//! assert!(stream.best_gbs() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod paper;
pub mod platform;
pub mod report;

pub use platform::Platform;

/// Convenience prelude.
pub mod prelude {
    pub use crate::experiments;
    pub use crate::paper;
    pub use crate::platform::Platform;
    pub use crate::report;
    pub use oranges_soc::chip::ChipGeneration;
}
