//! Extension experiment: unified-memory contention.
//!
//! §2.4 motivates the single memory controller that "dynamically
//! allocates resources across different compute units". The paper never
//! runs CPU and GPU STREAM *simultaneously*; this extension does, using
//! the controller's arbitration model — the natural next question for a
//! unified-memory SoC (and a real concern for heterogeneous HPC codes
//! that stream from both sides at once).

use crate::experiments::experiment::{
    chip_mismatch, Experiment, ExperimentError, ExperimentOutput,
};
use crate::platform::Platform;
use oranges_harness::table::TextTable;
use oranges_harness::RepetitionProtocol;
use oranges_soc::chip::ChipGeneration;
use oranges_umem::bandwidth::{BandwidthModel, StreamKernelKind};
use oranges_umem::controller::Agent;
use serde::Serialize;

/// Bandwidth split when CPU and GPU stream concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ContentionPoint {
    /// Chip.
    pub chip: ChipGeneration,
    /// CPU Triad bandwidth running alone, GB/s.
    pub cpu_alone_gbs: f64,
    /// GPU Triad bandwidth running alone, GB/s.
    pub gpu_alone_gbs: f64,
    /// CPU share under contention, GB/s.
    pub cpu_contended_gbs: f64,
    /// GPU share under contention, GB/s.
    pub gpu_contended_gbs: f64,
}

impl ContentionPoint {
    /// Aggregate bandwidth under contention.
    pub fn aggregate_gbs(&self) -> f64 {
        self.cpu_contended_gbs + self.gpu_contended_gbs
    }

    /// Aggregate as a fraction of the theoretical peak.
    pub fn aggregate_fraction(&self, chip: ChipGeneration) -> f64 {
        self.aggregate_gbs() / chip.spec().memory_bandwidth_gbs
    }
}

/// Run the contention experiment across all chips.
///
/// Each agent's solo Triad bandwidth is scaled by the controller's
/// two-agent arbitration share; the aggregate shows whether the unified
/// pool is fully utilized under mixed load.
pub fn run() -> Vec<ContentionPoint> {
    ChipGeneration::ALL
        .iter()
        .map(|&chip| run_chip(chip))
        .collect()
}

/// One chip's contention split.
pub fn run_chip(chip: ChipGeneration) -> ContentionPoint {
    let model = BandwidthModel::of(chip);
    let threads = chip.spec().total_cores();
    let cpu_alone = model.stream_gbs(Agent::Cpu, StreamKernelKind::Triad, threads);
    let gpu_alone = model.stream_gbs(Agent::Gpu, StreamKernelKind::Triad, 0);
    let share = model.controller().arbitration_share(2);
    // Each agent gets its arbitration share of the controller; it
    // can never use more than it could alone.
    let theoretical = chip.spec().memory_bandwidth_gbs;
    let cpu_contended = cpu_alone.min(theoretical * share);
    let gpu_contended = gpu_alone.min(theoretical * share);
    ContentionPoint {
        chip,
        cpu_alone_gbs: cpu_alone,
        gpu_alone_gbs: gpu_alone,
        cpu_contended_gbs: cpu_contended,
        gpu_contended_gbs: gpu_contended,
    }
}

/// The contention extension as a schedulable unit: one chip's split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionExperiment {
    /// Chip under test.
    pub chip: ChipGeneration,
}

impl Experiment for ContentionExperiment {
    fn id(&self) -> &'static str {
        "contention"
    }

    fn params(&self) -> String {
        format!("chip={};kernel=Triad", self.chip.name())
    }

    fn chip(&self) -> Option<ChipGeneration> {
        Some(self.chip)
    }

    fn protocol(&self) -> RepetitionProtocol {
        RepetitionProtocol::STREAM_CPU
    }

    fn run(&self, platform: &mut Platform) -> Result<ExperimentOutput, ExperimentError> {
        if platform.chip() != self.chip {
            return Err(chip_mismatch(self.chip, platform.chip()));
        }
        let point = run_chip(self.chip);
        let set = self
            .base_set()
            .metric("cpu_alone_gbs", point.cpu_alone_gbs, "GB/s")
            .metric("gpu_alone_gbs", point.gpu_alone_gbs, "GB/s")
            .metric("cpu_contended_gbs", point.cpu_contended_gbs, "GB/s")
            .metric("gpu_contended_gbs", point.gpu_contended_gbs, "GB/s")
            .metric("aggregate_gbs", point.aggregate_gbs(), "GB/s")
            .metric(
                "aggregate_fraction",
                point.aggregate_fraction(self.chip),
                "ratio",
            );
        ExperimentOutput::from_sets(vec![set], None)
    }
}

/// Render the experiment as a table.
pub fn render(points: &[ContentionPoint]) -> String {
    let mut table = TextTable::new(vec![
        "Chip",
        "CPU alone",
        "GPU alone",
        "CPU shared",
        "GPU shared",
        "Aggregate",
        "of peak",
    ])
    .numeric();
    for p in points {
        table.row(vec![
            p.chip.name().to_string(),
            format!("{:.1}", p.cpu_alone_gbs),
            format!("{:.1}", p.gpu_alone_gbs),
            format!("{:.1}", p.cpu_contended_gbs),
            format!("{:.1}", p.gpu_contended_gbs),
            format!("{:.1}", p.aggregate_gbs()),
            format!("{:.0}%", p.aggregate_fraction(p.chip) * 100.0),
        ]);
    }
    format!(
        "Extension: CPU+GPU concurrent STREAM (Triad, GB/s)\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_degrades_each_agent_but_raises_aggregate() {
        for p in run() {
            assert!(p.cpu_contended_gbs <= p.cpu_alone_gbs, "{:?}", p);
            assert!(p.gpu_contended_gbs <= p.gpu_alone_gbs, "{:?}", p);
            // The shared pool still beats either agent alone.
            assert!(p.aggregate_gbs() > p.cpu_alone_gbs * 0.9, "{:?}", p);
            assert!(p.aggregate_gbs() > p.gpu_alone_gbs * 0.9, "{:?}", p);
        }
    }

    #[test]
    fn aggregate_never_exceeds_theoretical() {
        for p in run() {
            assert!(p.aggregate_fraction(p.chip) <= 1.0, "{:?}", p);
            // …but gets close: the controller is the shared bottleneck.
            assert!(p.aggregate_fraction(p.chip) > 0.80, "{:?}", p);
        }
    }

    #[test]
    fn render_contains_all_chips() {
        let text = render(&run());
        for chip in ChipGeneration::ALL {
            assert!(text.contains(chip.name()));
        }
        assert!(text.contains("Aggregate"));
    }
}
