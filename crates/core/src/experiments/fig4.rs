//! Figure 4 — power efficiency (GFLOPS/W), higher is better.
//!
//! Derived from the same runs as Figures 2–3: each cell's efficiency is
//! achieved-GFLOPS divided by window-averaged package watts.

use crate::experiments::experiment::{
    chip_mismatch, digest_sizes, Experiment, ExperimentError, ExperimentOutput,
};
use crate::platform::Platform;
use oranges_gemm::suite::skips_size;
use oranges_gemm::GemmError;
use oranges_harness::figure::{series_chart, Series, SeriesChartConfig};
use oranges_harness::metric::{self, MetricSet, PowerContext};
use oranges_harness::RepetitionProtocol;
use oranges_soc::chip::ChipGeneration;
use serde::Serialize;

/// Experiment configuration (same grid as Figure 3).
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Matrix sizes (paper: 2048…16384).
    pub sizes: Vec<usize>,
    /// Chips to run.
    pub chips: Vec<ChipGeneration>,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            sizes: vec![2048, 4096, 8192, 16384],
            chips: ChipGeneration::ALL.to_vec(),
        }
    }
}

/// One cell of the Figure 4 grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig4Point {
    /// Chip.
    pub chip: ChipGeneration,
    /// Implementation legend name.
    pub implementation: &'static str,
    /// Matrix size.
    pub n: usize,
    /// Efficiency, GFLOPS per watt.
    pub gflops_per_watt: f64,
    /// Power/thermal context of the measured window.
    pub power: PowerContext,
}

/// The full Figure 4 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Data {
    /// All cells.
    pub points: Vec<Fig4Point>,
}

impl Fig4Data {
    /// Look up one cell.
    pub fn cell(&self, chip: ChipGeneration, implementation: &str, n: usize) -> Option<&Fig4Point> {
        self.points
            .iter()
            .find(|p| p.chip == chip && p.implementation == implementation && p.n == n)
    }

    /// Peak efficiency of an implementation on a chip.
    pub fn peak(&self, chip: ChipGeneration, implementation: &str) -> f64 {
        self.points
            .iter()
            .filter(|p| p.chip == chip && p.implementation == implementation)
            .map(|p| p.gflops_per_watt)
            .fold(0.0, f64::max)
    }
}

/// Run one chip's grid on an existing platform (the campaign path).
/// `config.chips` is ignored; the platform's chip decides the cells.
pub fn run_chip(platform: &mut Platform, config: &Fig4Config) -> Result<Vec<Fig4Point>, GemmError> {
    let chip = platform.chip();
    let mut points = Vec::new();
    for name in platform.implementation_names() {
        for &n in &config.sizes {
            if skips_size(name, n) {
                continue;
            }
            let run = platform.gemm_modeled(name, n)?;
            points.push(Fig4Point {
                chip,
                implementation: name,
                n,
                gflops_per_watt: run.gflops_per_watt(),
                power: run.power_context(),
            });
        }
    }
    Ok(points)
}

/// Run the experiment.
pub fn run(config: &Fig4Config) -> Result<Fig4Data, GemmError> {
    let mut points = Vec::new();
    for &chip in &config.chips {
        let mut platform = Platform::new(chip);
        points.extend(run_chip(&mut platform, config)?);
    }
    Ok(Fig4Data { points })
}

/// Figure 4 as a schedulable unit: one chip's efficiency grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig4Experiment {
    /// Chip under test.
    pub chip: ChipGeneration,
    /// Matrix sizes (paper: 2048…16384).
    pub sizes: Vec<usize>,
}

impl Fig4Experiment {
    /// The paper's full per-chip grid.
    pub fn paper(chip: ChipGeneration) -> Self {
        Fig4Experiment {
            chip,
            sizes: Fig4Config::default().sizes,
        }
    }
}

impl Experiment for Fig4Experiment {
    fn id(&self) -> &'static str {
        "fig4"
    }

    fn params(&self) -> String {
        format!(
            "chip={};sizes={}",
            self.chip.name(),
            digest_sizes(&self.sizes)
        )
    }

    fn chip(&self) -> Option<ChipGeneration> {
        Some(self.chip)
    }

    fn protocol(&self) -> RepetitionProtocol {
        RepetitionProtocol::GEMM
    }

    fn run(&self, platform: &mut Platform) -> Result<ExperimentOutput, ExperimentError> {
        if platform.chip() != self.chip {
            return Err(chip_mismatch(self.chip, platform.chip()));
        }
        let config = Fig4Config {
            sizes: self.sizes.clone(),
            chips: vec![self.chip],
        };
        let points = run_chip(platform, &config)?;
        ExperimentOutput::from_sets(metric_sets(&points, &self.params()), None)
    }
}

/// Render one chip's panel (log-y efficiency, like the paper).
pub fn render_panel(data: &Fig4Data, chip: ChipGeneration) -> String {
    let mut names: Vec<&'static str> = data
        .points
        .iter()
        .filter(|p| p.chip == chip)
        .map(|p| p.implementation)
        .collect();
    names.dedup();
    let series: Vec<Series> = names
        .into_iter()
        .map(|name| Series {
            label: name.to_string(),
            points: data
                .points
                .iter()
                .filter(|p| p.chip == chip && p.implementation == name)
                .map(|p| (p.n as f64, Some(p.gflops_per_watt)))
                .collect(),
        })
        .collect();
    series_chart(
        &format!("Fig. 4 ({chip}). Power efficiency in GFLOPS per Watt, higher is better"),
        "GFLOPS/W",
        &series,
        SeriesChartConfig::default(),
    )
}

/// Convert efficiency cells to provenance-stamped [`MetricSet`]s.
pub fn metric_sets(points: &[Fig4Point], params: &str) -> Vec<MetricSet> {
    points
        .iter()
        .map(|p| {
            MetricSet::for_chip("fig4", params, p.chip.name())
                .with_implementation(p.implementation)
                .with_n(p.n as u64)
                .with_power(p.power)
                .metric("gflops_per_watt", p.gflops_per_watt, "GFLOPS/W")
        })
        .collect()
}

/// CSV of the dataset, through the generic metric emitter.
pub fn to_csv(data: &Fig4Data) -> String {
    metric::rows_to_csv(&metric::rows(&metric_sets(&data.points, "standalone")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn mps_and_accelerate_peaks_match_figure4() {
        let data = run(&Fig4Config::default()).unwrap();
        for implementation in ["GPU-MPS", "CPU-Accelerate"] {
            for chip in ChipGeneration::ALL {
                let expected =
                    paper::fig4_peak_tflops_per_watt(implementation, chip).unwrap() * 1e3;
                let got = data.peak(chip, implementation);
                assert!(
                    paper::relative_error(got, expected) < 0.08,
                    "{implementation} on {chip}: {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn all_chips_reach_200_gflops_per_watt_with_mps() {
        // §5.3: "All four chips reached the efficiency of 200 GFLOPS per
        // Watt with GPU-MPS".
        let data = run(&Fig4Config::default()).unwrap();
        for chip in ChipGeneration::ALL {
            let peak = data.peak(chip, "GPU-MPS");
            assert!(peak >= paper::FIG4_MPS_FLOOR_GFLOPS_PER_W, "{chip}: {peak}");
        }
    }

    #[test]
    fn plain_cpu_loops_stay_under_one_gflops_per_watt() {
        // §5.3: "both CPU-single and OMP achieve less than 1 GFLOPS per
        // Watt across all four chips".
        let data = run(&Fig4Config::default()).unwrap();
        for chip in ChipGeneration::ALL {
            for implementation in ["CPU-Single", "CPU-OMP"] {
                let peak = data.peak(chip, implementation);
                assert!(
                    peak < paper::FIG4_PLAIN_CPU_CEILING_GFLOPS_PER_W,
                    "{implementation} on {chip}: {peak}"
                );
            }
        }
    }

    #[test]
    fn mps_roughly_10x_the_custom_shaders() {
        // §5.3: "about 10× higher efficiency than the other two GPU-based
        // implementations" — allow a wide band, it is a log-scale claim.
        let data = run(&Fig4Config::default()).unwrap();
        for chip in ChipGeneration::ALL {
            let mps = data.peak(chip, "GPU-MPS");
            for other in ["GPU-Naive", "GPU-CUTLASS"] {
                let ratio = mps / data.peak(chip, other);
                assert!(
                    (4.0..40.0).contains(&ratio),
                    "{chip} {other}: ratio {ratio}"
                );
            }
        }
    }

    #[test]
    fn render_and_csv() {
        let config = Fig4Config {
            chips: vec![ChipGeneration::M3],
            ..Fig4Config::default()
        };
        let data = run(&config).unwrap();
        let panel = render_panel(&data, ChipGeneration::M3);
        assert!(panel.contains("GFLOPS per Watt"));
        let csv = to_csv(&data);
        assert!(csv.starts_with("experiment,chip,implementation,n,metric,type,value,unit"));
        assert!(csv.contains("fig4,M3,GPU-MPS,2048,gflops_per_watt,float,"));
        // Every efficiency number carries its measurement context.
        let sets = metric_sets(&data.points, "test");
        assert!(sets
            .iter()
            .all(|s| s.provenance.power.unwrap().package_watts > 0.0));
    }
}
