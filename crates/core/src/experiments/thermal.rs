//! Extension experiment: sustained-load thermal behaviour.
//!
//! §7 observes that "the Apple laptops with M1, and M3 SoCs have
//! relatively lower Power Dissipation compared to desktops (M2, M4),
//! which might show the impact of power strategy and cooling methods of
//! different device models". The paper's runs are short; this extension
//! integrates the thermal model over minutes of continuous GEMM to show
//! *when* the passive enclosures throttle and what the sustained clock
//! cap becomes — the mechanism behind the paper's observation.

use crate::experiments::experiment::{
    chip_mismatch, Experiment, ExperimentError, ExperimentOutput,
};
use crate::platform::Platform;
use oranges_harness::metric::PowerContext;
use oranges_harness::table::TextTable;
use oranges_harness::RepetitionProtocol;
use oranges_powermetrics::{PowerModel, WorkClass};
use oranges_soc::chip::ChipGeneration;
use oranges_soc::device::DeviceModel;
use oranges_soc::time::SimDuration;
use serde::Serialize;

/// Outcome of a sustained run on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SustainedPoint {
    /// Chip.
    pub chip: ChipGeneration,
    /// Whether the device is passively cooled (MacBook Air).
    pub passive: bool,
    /// Steady package power demanded by the workload, W.
    pub demand_watts: f64,
    /// Package temperature after the run, °C.
    pub final_temperature_c: f64,
    /// DVFS cap at the end of the run (1.0 = never throttled).
    pub final_dvfs_cap: f64,
    /// Time until the cap first dropped below 1.0 (None = never).
    pub throttle_onset: Option<SimDuration>,
    /// Total energy actually dissipated over the run (accounting for
    /// throttling), joules.
    pub energy_j: f64,
    /// Run length, seconds.
    pub window_s: f64,
}

impl SustainedPoint {
    /// The run's power/thermal provenance: end-state cap, integrated
    /// energy, and the mean effective power over the window.
    pub fn power_context(&self) -> PowerContext {
        PowerContext {
            package_watts: if self.window_s > 0.0 {
                self.energy_j / self.window_s
            } else {
                self.demand_watts
            },
            energy_j: self.energy_j,
            window_s: self.window_s,
            dvfs_cap: self.final_dvfs_cap,
        }
    }
}

/// Run `minutes` of continuous full-tilt work of `class` on every chip.
pub fn run(class: WorkClass, minutes: f64) -> Vec<SustainedPoint> {
    ChipGeneration::ALL
        .iter()
        .map(|&chip| run_chip(chip, class, minutes))
        .collect()
}

/// One chip's sustained run.
pub fn run_chip(chip: ChipGeneration, class: WorkClass, minutes: f64) -> SustainedPoint {
    let step = SimDuration::from_secs_f64(1.0);
    let steps = (minutes * 60.0) as u64;
    let device = DeviceModel::of(chip);
    let mut thermal = device.thermal_model();
    let demand = PowerModel::of(chip).active_watts(class);
    let mut throttle_onset = None;
    let mut energy_j = 0.0;
    for s in 0..steps {
        // Thermally capped power: once the cap drops, the chip
        // clocks down and burns proportionally less.
        let effective = demand * thermal.dvfs_cap();
        energy_j += effective * step.as_secs_f64();
        thermal.integrate(effective, step);
        if throttle_onset.is_none() && thermal.dvfs_cap() < 1.0 {
            throttle_onset = Some(step * (s + 1));
        }
    }
    SustainedPoint {
        chip,
        passive: device.is_laptop(),
        demand_watts: demand,
        final_temperature_c: thermal.temperature_c(),
        final_dvfs_cap: thermal.dvfs_cap(),
        throttle_onset,
        energy_j,
        window_s: steps as f64 * step.as_secs_f64(),
    }
}

/// The thermal extension as a schedulable unit: one chip, one work
/// class, `minutes` of sustained load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalExperiment {
    /// Chip under test.
    pub chip: ChipGeneration,
    /// Sustained workload class.
    pub class: WorkClass,
    /// Minutes of continuous load.
    pub minutes: f64,
}

impl ThermalExperiment {
    /// The default sustained scenario: ten minutes of the hottest paper
    /// configuration (the Cutlass-style shader).
    pub fn sustained_cutlass(chip: ChipGeneration) -> Self {
        ThermalExperiment {
            chip,
            class: WorkClass::GpuCutlass,
            minutes: 10.0,
        }
    }
}

impl Experiment for ThermalExperiment {
    fn id(&self) -> &'static str {
        "thermal"
    }

    fn params(&self) -> String {
        format!(
            "chip={};class={};minutes={}",
            self.chip.name(),
            self.class.label(),
            self.minutes
        )
    }

    fn chip(&self) -> Option<ChipGeneration> {
        Some(self.chip)
    }

    fn protocol(&self) -> RepetitionProtocol {
        RepetitionProtocol { reps: 1, warmup: 0 }
    }

    fn run(&self, platform: &mut Platform) -> Result<ExperimentOutput, ExperimentError> {
        if platform.chip() != self.chip {
            return Err(chip_mismatch(self.chip, platform.chip()));
        }
        let point = run_chip(self.chip, self.class, self.minutes);
        let mut set = self
            .base_set()
            .with_implementation(self.class.label())
            .with_power(point.power_context())
            .metric("demand_watts", point.demand_watts, "W")
            .metric("final_temperature_c", point.final_temperature_c, "C")
            .metric("final_dvfs_cap", point.final_dvfs_cap, "x")
            .metric("energy_j", point.energy_j, "J")
            .metric("throttled", point.throttle_onset.is_some(), "flag");
        if let Some(onset) = point.throttle_onset {
            set = set.metric("throttle_onset_s", onset.as_secs_f64(), "s");
        }
        ExperimentOutput::from_sets(vec![set], None)
    }
}

/// Render the experiment.
pub fn render(class: WorkClass, points: &[SustainedPoint]) -> String {
    let mut table = TextTable::new(vec![
        "Chip",
        "Cooling",
        "Demand (W)",
        "Final temp (C)",
        "DVFS cap",
        "Throttle onset",
    ])
    .numeric();
    for p in points {
        table.row(vec![
            p.chip.name().to_string(),
            if p.passive {
                "Passive".to_string()
            } else {
                "Air".to_string()
            },
            format!("{:.1}", p.demand_watts),
            format!("{:.1}", p.final_temperature_c),
            format!("{:.2}", p.final_dvfs_cap),
            match p.throttle_onset {
                Some(t) => t.to_string(),
                None => "never".to_string(),
            },
        ]);
    }
    format!(
        "Extension: sustained {} thermal behaviour\n{}",
        class.label(),
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_loads_never_throttle() {
        // Accelerate at ~4-7 W sits inside every envelope.
        for p in run(WorkClass::CpuAccelerate, 10.0) {
            assert_eq!(p.final_dvfs_cap, 1.0, "{:?}", p);
            assert!(p.throttle_onset.is_none());
        }
    }

    #[test]
    fn cutlass_throttles_the_m4_eventually_or_holds_with_active_cooling() {
        // GPU-CUTLASS on M4 demands 18.5 W < the Mac mini's 28 W
        // sustained envelope: even the hottest paper configuration holds.
        let points = run(WorkClass::GpuCutlass, 10.0);
        let m4 = points
            .iter()
            .find(|p| p.chip == ChipGeneration::M4)
            .unwrap();
        assert!(!m4.passive);
        assert_eq!(m4.final_dvfs_cap, 1.0, "{m4:?}");
        // But the passively cooled M3 (12 W demand vs 14 W sustained)
        // also holds — the paper's figures are consistent with
        // throttle-free runs.
        let m3 = points
            .iter()
            .find(|p| p.chip == ChipGeneration::M3)
            .unwrap();
        assert!(m3.passive);
        assert_eq!(m3.final_dvfs_cap, 1.0, "{m3:?}");
    }

    #[test]
    fn hypothetical_heavy_load_throttles_laptops_first() {
        // Push every chip at its *burst* power: passive enclosures must
        // throttle, active ones hold longer or cap higher.
        let step = SimDuration::from_secs_f64(1.0);
        let mut caps = Vec::new();
        for chip in ChipGeneration::ALL {
            let device = DeviceModel::of(chip);
            let mut thermal = device.thermal_model();
            let demand = device.cooling.burst_watts();
            for _ in 0..1200 {
                thermal.integrate(demand * thermal.dvfs_cap(), step);
            }
            caps.push((chip, device.is_laptop(), thermal.dvfs_cap()));
        }
        for (chip, is_laptop, cap) in &caps {
            if *is_laptop {
                assert!(
                    *cap < 1.0,
                    "{chip} (passive) must throttle at burst power: {cap}"
                );
            }
        }
    }

    #[test]
    fn render_lists_cooling() {
        let text = render(WorkClass::GpuMps, &run(WorkClass::GpuMps, 1.0));
        assert!(text.contains("Passive"));
        assert!(text.contains("Air"));
        assert!(text.contains("GPU-MPS"));
    }
}
