//! The HPC Perspective comparisons — R1–R3 in the experiment index.
//!
//! The paper frames every M-series result against the state of the art:
//! GH200 STREAM and cublasSgemm (measured by the authors), MI250X, Xeon
//! Max, A100, RTX 4090 and the Green500 leader (literature). This module
//! renders those comparisons next to our measured simulator numbers.

use crate::experiments::experiment::{Experiment, ExperimentError, ExperimentOutput};
use crate::experiments::{fig1, fig4};
use crate::platform::Platform;
use oranges_harness::metric::MetricSet;
use oranges_harness::table::TextTable;
use oranges_harness::RepetitionProtocol;
use oranges_soc::chip::ChipGeneration;
use oranges_soc::reference;

/// R1: bandwidth comparison (paper §5.1 HPC Perspective).
pub fn bandwidth_comparison(fig1_data: &fig1::Fig1Data) -> String {
    let mut table = TextTable::new(vec![
        "System",
        "Measured GB/s",
        "Theoretical GB/s",
        "Efficiency",
    ])
    .numeric();
    for chip in ChipGeneration::ALL {
        for agent in ["CPU", "GPU"] {
            let measured = fig1_data.best(chip, agent);
            let theoretical = chip.spec().memory_bandwidth_gbs;
            table.row(vec![
                format!("Apple {chip} ({agent})"),
                format!("{measured:.0}"),
                format!("{theoretical:.0}"),
                format!("{:.0}%", measured / theoretical * 100.0),
            ]);
        }
    }
    for system in reference::all() {
        for bw in &system.bandwidth {
            table.row(vec![
                system.name.to_string(),
                format!("{:.0}", bw.measured_gbs),
                format!("{:.0}", bw.theoretical_gbs),
                format!("{:.0}%", bw.efficiency() * 100.0),
            ]);
        }
    }
    format!(
        "R1. Memory bandwidth vs HPC state of the art (§5.1)\n{}",
        table.render()
    )
}

/// R2: compute comparison (paper §5.2 HPC Perspective).
pub fn compute_comparison(mps_peaks: &[(ChipGeneration, f64)]) -> String {
    let mut table =
        TextTable::new(vec!["System", "Regime", "Measured TFLOPS", "Efficiency"]).numeric();
    for (chip, tflops) in mps_peaks {
        let theoretical = chip.spec().gpu_tflops_published;
        table.row(vec![
            format!("Apple {chip} (GPU-MPS)"),
            "FP32 (MPS)".to_string(),
            format!("{tflops:.2}"),
            format!("{:.0}%", tflops / theoretical * 100.0),
        ]);
    }
    for system in reference::all() {
        for c in &system.compute {
            table.row(vec![
                system.name.to_string(),
                c.regime.to_string(),
                format!("{:.1}", c.measured_tflops),
                format!("{:.0}%", c.efficiency() * 100.0),
            ]);
        }
    }
    format!(
        "R2. FP32 GEMM vs HPC state of the art (§5.2)\n{}",
        table.render()
    )
}

/// R3: efficiency comparison (paper §5.3 + §7).
pub fn efficiency_comparison(fig4_data: &fig4::Fig4Data) -> String {
    let mut table = TextTable::new(vec!["System", "GFLOPS/W", "Notes"]).numeric();
    for chip in ChipGeneration::ALL {
        table.row(vec![
            format!("Apple {chip} (GPU-MPS)"),
            format!("{:.0}", fig4_data.peak(chip, "GPU-MPS")),
            "FP32 SGEMM, powermetrics estimate".to_string(),
        ]);
    }
    for system in reference::all() {
        if let Some(eff) = system.gflops_per_watt {
            let note = match system.power_watts {
                Some(w) => format!("{} ({w:.0} W)", system.provenance),
                None => system.provenance.to_string(),
            };
            table.row(vec![system.name.to_string(), format!("{eff:.0}"), note]);
        }
    }
    format!(
        "R3. Power efficiency vs HPC state of the art (§5.3, §7)\n{}",
        table.render()
    )
}

/// The HPC Perspective comparisons (R1–R3) as one chip-independent
/// schedulable unit. Dependency-free: it computes the Figure 1/2/4
/// inputs it needs internally rather than waiting on other units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReferencesExperiment;

impl Experiment for ReferencesExperiment {
    fn id(&self) -> &'static str {
        "references"
    }

    fn params(&self) -> String {
        "comparisons=R1,R2,R3".to_string()
    }

    fn chip(&self) -> Option<ChipGeneration> {
        None
    }

    fn protocol(&self) -> RepetitionProtocol {
        RepetitionProtocol::GEMM
    }

    fn run(&self, _platform: &mut Platform) -> Result<ExperimentOutput, ExperimentError> {
        let fig1_data = fig1::run();
        let fig4_data = fig4::run(&fig4::Fig4Config::default())?;
        let mps_peaks: Vec<(ChipGeneration, f64)> = ChipGeneration::ALL
            .iter()
            .map(|&chip| (chip, fig4_data.peak(chip, "GPU-MPS")))
            .collect();
        // R2 compares achieved TFLOPS; derive them from the same modeled
        // runs Figure 2 reports (peak over the paper's largest sizes).
        let fig2_data = crate::experiments::fig2::run(&crate::experiments::fig2::Fig2Config {
            sizes: vec![4096, 8192, 16384],
            verify_max_flops: 0,
            ..crate::experiments::fig2::Fig2Config::default()
        })?;
        let tflops_peaks: Vec<(ChipGeneration, f64)> = ChipGeneration::ALL
            .iter()
            .map(|&chip| (chip, fig2_data.peak(chip, "GPU-MPS") / 1e3))
            .collect();
        let rendered = [
            bandwidth_comparison(&fig1_data),
            compute_comparison(&tflops_peaks),
            efficiency_comparison(&fig4_data),
        ];
        // One chip-scoped set per chip, both peaks together — the
        // experiment itself is chip-independent, the measurements inside
        // it are not.
        let sets: Vec<MetricSet> = tflops_peaks
            .iter()
            .zip(&mps_peaks)
            .map(|(&(chip, tflops), &(_, eff))| {
                MetricSet::for_chip("references", &self.params(), chip.name())
                    .with_implementation("GPU-MPS")
                    .metric("mps_peak_tflops", tflops, "TFLOPS")
                    .metric("mps_peak_gflops_per_watt", eff, "GFLOPS/W")
            })
            .collect();
        ExperimentOutput::from_sets(sets, Some(rendered.join("\n\n")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig4::Fig4Config;

    #[test]
    fn r1_contains_gh200_and_all_chips() {
        let data = fig1::run();
        let text = bandwidth_comparison(&data);
        assert!(text.contains("Apple M1 (CPU)"));
        assert!(text.contains("Apple M4 (GPU)"));
        assert!(text.contains("Grace CPU"));
        assert!(text.contains("3700"));
        assert!(text.contains("MI250X"));
    }

    #[test]
    fn r2_contains_cublas_and_tensor_rows() {
        let peaks = vec![(ChipGeneration::M4, 2.9)];
        let text = compute_comparison(&peaks);
        assert!(text.contains("cublasSgemm"));
        assert!(text.contains("41.0"));
        assert!(text.contains("TF32"));
        assert!(text.contains("338.0"));
        assert!(text.contains("Xeon"));
        assert!(text.contains("Apple M4 (GPU-MPS)"));
    }

    #[test]
    fn r3_contains_green500_and_gpus() {
        let data = fig4::run(&Fig4Config {
            chips: vec![ChipGeneration::M3],
            ..Fig4Config::default()
        })
        .unwrap();
        let text = efficiency_comparison(&data);
        assert!(text.contains("Green500"));
        assert!(text.contains("72"));
        assert!(text.contains("A100"));
        assert!(text.contains("RTX 4090"));
        assert!(text.contains("Apple M3 (GPU-MPS)"));
    }
}
