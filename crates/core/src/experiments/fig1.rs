//! Figure 1 — STREAM bandwidth per chip, CPU and GPU, vs theoretical.

use crate::experiments::experiment::{
    chip_mismatch, Experiment, ExperimentError, ExperimentOutput,
};
use crate::platform::Platform;
use oranges_harness::figure::{grouped_bar_chart, Bar, BarGroup};
use oranges_harness::metric::{self, MetricSet};
use oranges_harness::RepetitionProtocol;
use oranges_soc::chip::ChipGeneration;
use oranges_stream::cpu::CpuStream;
use oranges_stream::gpu::GpuStream;
use oranges_umem::bandwidth::StreamKernelKind;
use serde::Serialize;

/// One bandwidth measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig1Point {
    /// Chip.
    pub chip: ChipGeneration,
    /// "CPU" or "GPU".
    pub agent: &'static str,
    /// Kernel name.
    pub kernel: &'static str,
    /// Best bandwidth across reps (and thread sweep for CPU), GB/s.
    pub gbs: f64,
}

/// The full Figure 1 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Data {
    /// All 32 bars (4 chips × 2 agents × 4 kernels).
    pub points: Vec<Fig1Point>,
    /// The theoretical line per chip.
    pub theoretical: Vec<(ChipGeneration, f64)>,
}

impl Fig1Data {
    /// Best bandwidth for (chip, agent).
    pub fn best(&self, chip: ChipGeneration, agent: &str) -> f64 {
        self.points
            .iter()
            .filter(|p| p.chip == chip && p.agent == agent)
            .map(|p| p.gbs)
            .fold(0.0, f64::max)
    }

    /// One bar's value.
    pub fn value(&self, chip: ChipGeneration, agent: &str, kernel: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.chip == chip && p.agent == agent && p.kernel == kernel)
            .map(|p| p.gbs)
    }
}

/// One chip's bars (8: 2 agents × 4 kernels) with the paper's
/// configuration (10 CPU reps with thread sweep, 20 GPU reps, maxima
/// reported).
pub fn run_chip(chip: ChipGeneration) -> Vec<Fig1Point> {
    let mut points = Vec::with_capacity(8);
    let cpu = CpuStream::new(chip).run();
    for result in &cpu.results {
        points.push(Fig1Point {
            chip,
            agent: "CPU",
            kernel: result.kernel.name(),
            gbs: result.best_gbs,
        });
    }
    let gpu = GpuStream::new(chip)
        .run()
        .expect("standard kernels present");
    for result in &gpu.results {
        points.push(Fig1Point {
            chip,
            agent: "GPU",
            kernel: result.kernel.name(),
            gbs: result.best_gbs,
        });
    }
    points
}

/// Run the full experiment across all chips.
pub fn run() -> Fig1Data {
    let mut points = Vec::with_capacity(32);
    let mut theoretical = Vec::with_capacity(4);
    for chip in ChipGeneration::ALL {
        theoretical.push((chip, chip.spec().memory_bandwidth_gbs));
        points.extend(run_chip(chip));
    }
    Fig1Data {
        points,
        theoretical,
    }
}

/// Render the ASCII version of Figure 1.
pub fn render(data: &Fig1Data) -> String {
    let groups: Vec<BarGroup> = ChipGeneration::ALL
        .iter()
        .map(|chip| {
            let mut bars = Vec::with_capacity(8);
            for agent in ["CPU", "GPU"] {
                for kernel in StreamKernelKind::ALL {
                    if let Some(gbs) = data.value(*chip, agent, kernel.name()) {
                        bars.push(Bar {
                            label: format!("{} ({agent})", kernel.name()),
                            value: gbs,
                        });
                    }
                }
            }
            let reference = data
                .theoretical
                .iter()
                .find(|(c, _)| c == chip)
                .map(|(_, gbs)| *gbs);
            BarGroup {
                label: chip.name().to_string(),
                bars,
                reference,
            }
        })
        .collect();
    grouped_bar_chart(
        "Fig. 1. STREAM benchmark results of each processor (GB/s, | = theoretical)",
        "GB/s",
        &groups,
        48,
    )
}

/// Convert bandwidth points to provenance-stamped [`MetricSet`]s — one
/// per bar, implementation `"Kernel (Agent)"`, metric `gbs`.
pub fn metric_sets(points: &[Fig1Point]) -> Vec<MetricSet> {
    points
        .iter()
        .map(|p| {
            MetricSet::for_chip("fig1", &format!("chip={}", p.chip.name()), p.chip.name())
                .with_implementation(&format!("{} ({})", p.kernel, p.agent))
                .metric("gbs", p.gbs, "GB/s")
        })
        .collect()
}

/// CSV of the dataset, through the generic metric emitter.
pub fn to_csv(data: &Fig1Data) -> String {
    metric::rows_to_csv(&metric::rows(&metric_sets(&data.points)))
}

/// Figure 1 as a schedulable unit: one chip's STREAM bars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig1Experiment {
    /// Chip under test.
    pub chip: ChipGeneration,
}

impl Experiment for Fig1Experiment {
    fn id(&self) -> &'static str {
        "fig1"
    }

    fn params(&self) -> String {
        format!("chip={}", self.chip.name())
    }

    fn chip(&self) -> Option<ChipGeneration> {
        Some(self.chip)
    }

    fn protocol(&self) -> RepetitionProtocol {
        RepetitionProtocol::STREAM_CPU
    }

    fn run(&self, platform: &mut Platform) -> Result<ExperimentOutput, ExperimentError> {
        if platform.chip() != self.chip {
            return Err(chip_mismatch(self.chip, platform.chip()));
        }
        ExperimentOutput::from_sets(metric_sets(&run_chip(self.chip)), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn dataset_shape() {
        let data = run();
        assert_eq!(data.points.len(), 32, "4 chips x 2 agents x 4 kernels");
        assert_eq!(data.theoretical.len(), 4);
    }

    #[test]
    fn matches_paper_anchors() {
        let data = run();
        for (chip, expected) in paper::FIG1_CPU_BEST_GBS {
            let got = data.best(chip, "CPU");
            assert!(
                paper::relative_error(got, expected) < 0.02,
                "{chip} CPU: {got}"
            );
        }
        for (chip, expected) in paper::FIG1_GPU_BEST_GBS {
            let got = data.best(chip, "GPU");
            assert!(
                paper::relative_error(got, expected) < 0.03,
                "{chip} GPU: {got}"
            );
        }
    }

    #[test]
    fn render_and_csv() {
        let data = run();
        let chart = render(&data);
        assert!(chart.contains("M1"));
        assert!(chart.contains("Triad (GPU)"));
        assert!(chart.contains("theoretical"));
        let csv = to_csv(&data);
        assert_eq!(csv.lines().count(), 33);
        assert!(csv.starts_with("experiment,chip,implementation,n,metric,type,value,unit"));
        assert!(csv.contains("fig1,M1,Triad (GPU),,gbs,float,"));
    }

    #[test]
    fn experiment_unit_emits_provenance_stamped_sets() {
        use crate::experiments::Experiment as _;
        let mut platform = crate::platform::Platform::new(ChipGeneration::M1);
        let experiment = Fig1Experiment {
            chip: ChipGeneration::M1,
        };
        let output = experiment.run(&mut platform).unwrap();
        assert_eq!(output.sets.len(), 8, "2 agents x 4 kernels");
        for set in &output.sets {
            assert_eq!(set.provenance.experiment, "fig1");
            assert_eq!(set.provenance.chip.as_deref(), Some("M1"));
            assert_eq!(set.provenance.params, experiment.params());
            assert_eq!(set.metrics.len(), 1);
            assert_eq!(set.metrics[0].unit, "GB/s");
        }
    }
}
