//! Extension experiment: mixed-precision headroom.
//!
//! §7 names this as future work: "future studies could explore the
//! impact of mixed-precision workloads on computational efficiency and
//! accuracy". The M-series GPU natively runs FP16 at 2× and INT8 at 4×
//! the FP32 rate (§2.2, Table 1 "Native Precision Support"), while FP64
//! is emulation-only (§1). This extension projects the Figure 2 GPU-MPS
//! peaks across precisions and pairs each with its accuracy cost,
//! quantified by an actual FP16-emulation error measurement on real
//! matrices.

use crate::experiments::experiment::{
    chip_mismatch, Experiment, ExperimentError, ExperimentOutput,
};
use crate::platform::Platform;
use oranges_harness::metric::MetricSet;
use oranges_harness::table::TextTable;
use oranges_harness::RepetitionProtocol;
use oranges_soc::chip::ChipGeneration;
use oranges_soc::gpu::{GpuPrecision, GpuSpec};
use serde::Serialize;

/// Projected throughput of the MPS-class kernel at one precision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PrecisionPoint {
    /// Chip.
    pub chip: ChipGeneration,
    /// Precision.
    pub precision: GpuPrecision,
    /// Projected sustained TFLOPS (FP32 MPS efficiency × precision rate).
    pub tflops: f64,
    /// Whether the precision is hardware-native.
    pub native: bool,
}

/// FP32-anchored MPS sustained efficiency (Figure 2 peak ÷ roofline).
fn mps_efficiency(chip: ChipGeneration) -> f64 {
    let fp32_peak = match chip {
        ChipGeneration::M1 => 1.36,
        ChipGeneration::M2 => 2.24,
        ChipGeneration::M3 => 2.47,
        ChipGeneration::M4 => 2.90,
    };
    fp32_peak / chip.spec().gpu_tflops_published
}

/// Project the MPS peak across the precision ladder for one chip.
pub fn run_chip(chip: ChipGeneration) -> Vec<PrecisionPoint> {
    let precisions = [
        GpuPrecision::Fp16,
        GpuPrecision::Fp32,
        GpuPrecision::Int8,
        GpuPrecision::Fp64Emulated,
    ];
    let gpu = GpuSpec::of(chip.spec());
    precisions
        .into_iter()
        .map(|precision| PrecisionPoint {
            chip,
            precision,
            tflops: gpu.gflops_at(precision) / 1e3 * mps_efficiency(chip),
            native: precision.is_native(),
        })
        .collect()
}

/// Project the MPS peak across the precision ladder for every chip.
pub fn run() -> Vec<PrecisionPoint> {
    ChipGeneration::ALL
        .iter()
        .flat_map(|&chip| run_chip(chip))
        .collect()
}

/// The mixed-precision extension as a schedulable unit: one chip's
/// precision ladder plus the FP16 accuracy measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixedPrecisionExperiment {
    /// Chip under test.
    pub chip: ChipGeneration,
}

impl Experiment for MixedPrecisionExperiment {
    fn id(&self) -> &'static str {
        "mixed_precision"
    }

    fn params(&self) -> String {
        format!("chip={};ladder=fp16,fp32,int8,fp64e", self.chip.name())
    }

    fn chip(&self) -> Option<ChipGeneration> {
        Some(self.chip)
    }

    fn protocol(&self) -> RepetitionProtocol {
        RepetitionProtocol { reps: 1, warmup: 0 }
    }

    fn run(&self, platform: &mut Platform) -> Result<ExperimentOutput, ExperimentError> {
        if platform.chip() != self.chip {
            return Err(chip_mismatch(self.chip, platform.chip()));
        }
        let mut sets: Vec<MetricSet> = run_chip(self.chip)
            .iter()
            .map(|p| {
                self.base_set()
                    .with_implementation(&format!("{:?}", p.precision))
                    .metric("projected_tflops", p.tflops, "TFLOPS")
                    .metric("native", p.native, "flag")
            })
            .collect();
        sets.push(self.base_set().metric(
            "fp16_dot_rel_err_k1024",
            fp16_dot_relative_error(1024, 42),
            "rel",
        ));
        ExperimentOutput::from_sets(sets, None)
    }
}

/// Measure the relative error of computing a dot product in simulated
/// FP16 (round-to-nearest-even via `f32 -> half bits -> f32` on every
/// operand and partial sum) versus f64, over a length-`k` product of
/// `R ∈ [0,1)` values. This is the accuracy side of the trade-off.
pub fn fp16_dot_relative_error(k: usize, seed: u64) -> f64 {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u32 << 24) as f32
    };
    let a: Vec<f32> = (0..k).map(|_| next()).collect();
    let b: Vec<f32> = (0..k).map(|_| next()).collect();

    let exact: f64 = a.iter().zip(&b).map(|(x, y)| *x as f64 * *y as f64).sum();
    let mut half_acc = 0.0f32;
    for (x, y) in a.iter().zip(&b) {
        let hx = to_fp16(*x);
        let hy = to_fp16(*y);
        half_acc = to_fp16(half_acc + hx * hy);
    }
    ((half_acc as f64 - exact) / exact.abs().max(1e-30)).abs()
}

/// Round an f32 to the nearest representable FP16 value (returned as
/// f32). Handles normals, subnormals flush-to-zero, and overflow→inf —
/// enough fidelity for error studies on `[0, 1)` data.
fn to_fp16(value: f32) -> f32 {
    if value == 0.0 || !value.is_finite() {
        return value;
    }
    let bits = value.to_bits();
    let sign = bits >> 31;
    let exp = ((bits >> 23) & 0xFF) as i32 - 127;
    if exp > 15 {
        return if sign == 1 {
            f32::NEG_INFINITY
        } else {
            f32::INFINITY
        };
    }
    if exp < -14 {
        return 0.0; // flush subnormals for simplicity
    }
    // Keep 10 mantissa bits with round-to-nearest-even.
    let mantissa = bits & 0x007F_FFFF;
    let shift = 13;
    let lsb = 1u32 << shift;
    let round_bit = lsb >> 1;
    let mut rounded = mantissa & !(lsb - 1);
    let remainder = mantissa & (lsb - 1);
    if remainder > round_bit || (remainder == round_bit && (rounded & lsb) != 0) {
        rounded = rounded.wrapping_add(lsb);
    }
    let out = (bits & 0xFF80_0000 & !(0x007F_FFFF)) | (bits & 0x8000_0000);
    let _ = out;
    let rebuilt = (sign << 31) | (((exp + 127) as u32) << 23) | (rounded & 0x007F_FFFF);
    // Mantissa rounding may carry into the exponent; f32 arithmetic does
    // that automatically if we reassemble through from_bits addition.
    if rounded > 0x007F_FFFF {
        f32::from_bits((sign << 31) | (((exp + 128) as u32) << 23))
    } else {
        f32::from_bits(rebuilt)
    }
}

/// Render the projection table with the accuracy column.
pub fn render(points: &[PrecisionPoint]) -> String {
    let mut table = TextTable::new(vec![
        "Chip",
        "Precision",
        "Projected TFLOPS",
        "Native",
        "Rel. err (k=1024 dot)",
    ])
    .numeric();
    for p in points {
        let error = match p.precision {
            GpuPrecision::Fp16 => format!("{:.1e}", fp16_dot_relative_error(1024, 42)),
            GpuPrecision::Fp32 => "~1e-7".to_string(),
            GpuPrecision::Int8 => "quantization-dependent".to_string(),
            GpuPrecision::Fp64Emulated => "~1e-16".to_string(),
        };
        table.row(vec![
            p.chip.name().to_string(),
            format!("{:?}", p.precision),
            format!("{:.2}", p.tflops),
            if p.native {
                "yes".to_string()
            } else {
                "no (emulated)".to_string()
            },
            error,
        ]);
    }
    format!(
        "Extension: mixed-precision headroom of the MPS-class kernel\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp16_doubles_and_int8_quadruples_fp32() {
        let points = run();
        for chip in ChipGeneration::ALL {
            let get = |precision| {
                points
                    .iter()
                    .find(|p| p.chip == chip && p.precision == precision)
                    .unwrap()
                    .tflops
            };
            let fp32 = get(GpuPrecision::Fp32);
            assert!((get(GpuPrecision::Fp16) / fp32 - 2.0).abs() < 1e-9);
            assert!((get(GpuPrecision::Int8) / fp32 - 4.0).abs() < 1e-9);
            assert!(get(GpuPrecision::Fp64Emulated) < fp32 / 4.0);
        }
    }

    #[test]
    fn fp32_projection_equals_figure2_peak() {
        let points = run();
        let m4 = points
            .iter()
            .find(|p| p.chip == ChipGeneration::M4 && p.precision == GpuPrecision::Fp32)
            .unwrap();
        assert!((m4.tflops - 2.90).abs() < 0.01, "{}", m4.tflops);
        assert!(m4.native);
    }

    #[test]
    fn fp16_dot_error_is_small_but_visible() {
        // Half precision on unit-interval data: error well above FP32's
        // ~1e-7 but far below 1% for k = 1024.
        let error = fp16_dot_relative_error(1024, 7);
        assert!(error > 1e-6, "{error}");
        assert!(error < 1e-2, "{error}");
        // Error grows with accumulation length.
        let long = fp16_dot_relative_error(16384, 7);
        assert!(long > error / 2.0, "long {long} vs short {error}");
    }

    #[test]
    fn fp16_conversion_basics() {
        assert_eq!(to_fp16(0.0), 0.0);
        assert_eq!(to_fp16(1.0), 1.0);
        assert_eq!(to_fp16(0.5), 0.5);
        // 1/3 is inexact in half precision: nearest is 0.33325195.
        let third = to_fp16(1.0 / 3.0);
        assert!((third - 1.0 / 3.0).abs() < 1e-3);
        assert!(third != 1.0 / 3.0);
        // Overflow saturates to infinity (FP16 max ≈ 65504).
        assert!(to_fp16(1e6).is_infinite());
        // Tiny values flush to zero.
        assert_eq!(to_fp16(1e-8), 0.0);
    }

    #[test]
    fn render_lists_all_precisions() {
        let text = render(&run());
        for needle in ["Fp16", "Fp32", "Int8", "Fp64Emulated", "no (emulated)"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
