//! One runner per paper artifact.
//!
//! | module | reproduces |
//! |---|---|
//! | [`tables`] | Table 1 (architecture), Table 2 (implementations), Table 3 (devices) |
//! | [`fig1`] | Figure 1 — STREAM bandwidth, CPU + GPU vs theoretical |
//! | [`fig2`] | Figure 2 — GFLOPS for all implementations × sizes × chips |
//! | [`fig3`] | Figure 3 — power (mW) per implementation × size × chip |
//! | [`fig4`] | Figure 4 — efficiency (GFLOPS/W), same grid as Fig. 3 |
//! | [`references`] | the HPC Perspective comparisons (GH200, A100, …) |
//! | [`contention`] | *extension*: CPU+GPU concurrent STREAM over one controller |
//! | [`thermal`] | *extension*: sustained-load throttling, passive vs active cooling |
//! | [`mixed_precision`] | *extension*: the §7 future-work item — FP16/INT8/FP64 headroom |
//!
//! Every runner also implements the [`Experiment`] trait — the
//! schedulable-unit abstraction consumed by the `oranges-campaign`
//! orchestrator. The `XxxExperiment` types in each module are the
//! per-unit parameter holders.

pub mod contention;
pub mod experiment;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod mixed_precision;
pub mod references;
pub mod tables;
pub mod thermal;

pub use experiment::{Experiment, ExperimentError, ExperimentOutput};
