//! The [`Experiment`] abstraction every runner implements.
//!
//! Introduced by the `oranges-campaign` orchestrator (which re-exports
//! it): a schedulable unit of paper reproduction. The trait is defined
//! here, next to the runners, because the nine experiment modules
//! implement it and the campaign crate sits above this one.
//!
//! An experiment names itself ([`Experiment::id`]), digests its
//! parameters into a stable cache key ([`Experiment::params`]), declares
//! its §4 repetition protocol, and runs against a [`Platform`] producing
//! an [`ExperimentOutput`]: provenance-stamped [`MetricSet`]s plus their
//! canonical JSON (value identity / caching). The simulation is
//! deterministic, so the same id + params always produce byte-identical
//! output — which is what makes content-keyed result caching sound.

use crate::platform::Platform;
use oranges_gemm::GemmError;
use oranges_harness::json::JsonValue;
use oranges_harness::metric::{self, MetricRow, MetricSet};
use oranges_harness::RepetitionProtocol;
use oranges_soc::chip::ChipGeneration;
use std::fmt;

/// Failure of one experiment unit.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// A GEMM kernel or its measurement failed.
    Gemm(GemmError),
    /// Serialization of the result failed.
    Serialization(String),
    /// Anything else.
    Other(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Gemm(e) => write!(f, "gemm: {e}"),
            ExperimentError::Serialization(msg) => write!(f, "serialization: {msg}"),
            ExperimentError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<GemmError> for ExperimentError {
    fn from(e: GemmError) -> Self {
        ExperimentError::Gemm(e)
    }
}

impl From<oranges_harness::json::JsonError> for ExperimentError {
    fn from(e: oranges_harness::json::JsonError) -> Self {
        ExperimentError::Serialization(e.to_string())
    }
}

/// What one experiment unit produces: the typed measurement records and
/// their canonical identity.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutput {
    /// Canonical JSON of the metric sets. Byte-equal across identical
    /// runs (wall-time is excluded from serialization and the
    /// deterministic simulation guarantees the rest); the campaign's
    /// value-identity checks and cache semantics rest on this.
    pub json: String,
    /// The unit's measurements: one [`MetricSet`] per grid coordinate.
    pub sets: Vec<MetricSet>,
    /// Human-readable rendering (chart or table), where the runner has
    /// one.
    pub rendered: Option<String>,
}

impl ExperimentOutput {
    /// Build from the unit's metric sets; the canonical JSON is derived
    /// here, once, so every consumer sees the same identity.
    pub fn from_sets(
        sets: Vec<MetricSet>,
        rendered: Option<String>,
    ) -> Result<Self, ExperimentError> {
        Ok(ExperimentOutput {
            json: metric::sets_to_json(&sets)?,
            sets,
            rendered,
        })
    }

    /// Flat (coordinate, metric) rows for the generic emitters.
    pub fn rows(&self) -> Vec<MetricRow> {
        metric::rows(&self.sets)
    }

    /// Rebuild an output from a parsed JSON object carrying `sets` (an
    /// array of serialized [`MetricSet`]s), an optional `rendered`
    /// string, and an optional `wall_time_s` stamp. This is the envelope
    /// shape both the disk-persistent result cache and the campaign
    /// service stream — the canonical JSON is re-derived from the parsed
    /// sets, so a rebuilt output is value-identical to the original.
    pub fn from_json_value(value: &JsonValue) -> Result<Self, ExperimentError> {
        let sets = value
            .get("sets")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ExperimentError::Serialization("output has no sets array".into()))?
            .iter()
            .map(metric::set_from_json)
            .collect::<Result<Vec<MetricSet>, _>>()
            .map_err(|e| ExperimentError::Serialization(e.to_string()))?;
        let rendered = match value.get("rendered") {
            None | Some(JsonValue::Null) => None,
            Some(JsonValue::String(s)) => Some(s.clone()),
            Some(other) => {
                return Err(ExperimentError::Serialization(format!(
                    "bad rendered field {other:?}"
                )))
            }
        };
        let mut output = ExperimentOutput::from_sets(sets, rendered)?;
        if let Some(wall) = value.get("wall_time_s").and_then(JsonValue::as_f64) {
            output.stamp_wall_time(wall);
        }
        Ok(output)
    }

    /// Stamp the unit's wall-clock time into every set's provenance.
    /// Called by the campaign scheduler after timing the run; the stamp
    /// does not perturb [`json`](ExperimentOutput::json) (wall-time is
    /// excluded from serialization by design).
    pub fn stamp_wall_time(&mut self, seconds: f64) {
        for set in &mut self.sets {
            set.provenance.wall_time_s = Some(seconds);
        }
    }

    /// The stamped per-unit wall time, if the scheduler has run this.
    pub fn wall_time_s(&self) -> Option<f64> {
        self.sets.first().and_then(|s| s.provenance.wall_time_s)
    }
}

/// A schedulable paper experiment.
///
/// `Send + Sync` because campaign workers share the plan across threads;
/// implementations are plain parameter holders, all mutable state lives
/// in the worker-owned [`Platform`].
pub trait Experiment: Send + Sync {
    /// Paper artifact id: `"fig1"` … `"fig4"`, `"tables"`,
    /// `"references"`, or an extension id.
    fn id(&self) -> &'static str;

    /// Stable, human-readable parameter digest. Together with [`id`]
    /// (and the chip) it forms the content key the result cache
    /// deduplicates on, so it must capture *every* input that affects
    /// the output.
    ///
    /// [`id`]: Experiment::id
    fn params(&self) -> String;

    /// The chip this unit is scoped to, or `None` for chip-independent
    /// units (tables, cross-system references). The scheduler hands the
    /// unit a platform of exactly this chip.
    fn chip(&self) -> Option<ChipGeneration>;

    /// The §4 repetition protocol the unit runs under.
    fn protocol(&self) -> RepetitionProtocol;

    /// Run the unit against `platform` (guaranteed by the scheduler to
    /// match [`chip`], when chip-scoped).
    ///
    /// [`chip`]: Experiment::chip
    fn run(&self, platform: &mut Platform) -> Result<ExperimentOutput, ExperimentError>;

    /// A [`MetricSet`] seeded with this unit's provenance (id, chip,
    /// params digest) — the starting point for every measurement the
    /// unit emits, so no runner hand-assembles provenance.
    fn base_set(&self) -> MetricSet {
        match self.chip() {
            Some(chip) => MetricSet::for_chip(self.id(), &self.params(), chip.name()),
            None => MetricSet::new(self.id(), &self.params()),
        }
    }
}

/// Format a size list for parameter digests. Lossless — the digest is a
/// cache key, so two different sweeps must never collide (a min-max-count
/// summary would alias e.g. `[2048, 4096, 8192]` and `[2048, 6144, 8192]`).
pub fn digest_sizes(sizes: &[usize]) -> String {
    if sizes.is_empty() {
        return "none".to_string();
    }
    sizes
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// The error returned when a chip-scoped experiment is handed a platform
/// of a different chip (the scheduler never does this; direct callers
/// might).
pub fn chip_mismatch(expected: ChipGeneration, got: ChipGeneration) -> ExperimentError {
    ExperimentError::Other(format!(
        "experiment is scoped to {expected} but was given a {got} platform"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_digests_are_stable_and_lossless() {
        assert_eq!(digest_sizes(&[32, 64, 128]), "32,64,128");
        assert_eq!(digest_sizes(&[]), "none");
        assert_eq!(digest_sizes(&[2048]), "2048");
        // Same bounds and count, different interior: distinct keys.
        assert_ne!(
            digest_sizes(&[2048, 4096, 8192]),
            digest_sizes(&[2048, 6144, 8192])
        );
    }

    #[test]
    fn output_rebuilds_from_its_json_envelope() {
        let mut original = ExperimentOutput::from_sets(
            vec![MetricSet::for_chip("fig1", "chip=M1", "M1").metric("gbs", 58.6, "GB/s")],
            Some("chart".to_string()),
        )
        .unwrap();
        original.stamp_wall_time(0.125);
        // The envelope shape the cache and service both use.
        let envelope = format!(
            "{{\"wall_time_s\":0.125,\"rendered\":\"chart\",\"sets\":{}}}",
            original.json
        );
        let parsed = oranges_harness::json::parse(&envelope).unwrap();
        let rebuilt = ExperimentOutput::from_json_value(&parsed).unwrap();
        assert_eq!(rebuilt.json, original.json, "value identity survives");
        assert_eq!(rebuilt.sets, original.sets);
        assert_eq!(rebuilt.rendered.as_deref(), Some("chart"));
        assert_eq!(rebuilt.wall_time_s(), Some(0.125));

        let missing = oranges_harness::json::parse("{\"rendered\":null}").unwrap();
        assert!(ExperimentOutput::from_json_value(&missing).is_err());
    }

    #[test]
    fn errors_display_their_source() {
        let e = ExperimentError::from(GemmError::Dimension("bad".into()));
        assert!(e.to_string().contains("bad"));
        assert!(ExperimentError::Other("boom".into())
            .to_string()
            .contains("boom"));
    }
}
