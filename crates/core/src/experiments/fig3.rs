//! Figure 3 — power dissipation (mW) per implementation and matrix size.
//!
//! §4: "The power measurement occurs during the run in which CPU/GPU
//! performance is measured" — each cell wraps the same modeled run Figure 2
//! times in the powermetrics protocol and reads the sampled window back.
//! The figure's x-axis covers n ∈ {2048 … 16384}.

use crate::experiments::experiment::{
    chip_mismatch, digest_sizes, Experiment, ExperimentError, ExperimentOutput,
};
use crate::platform::Platform;
use oranges_gemm::suite::skips_size;
use oranges_gemm::GemmError;
use oranges_harness::experiment::RepetitionProtocol;
use oranges_harness::figure::{series_chart, Series, SeriesChartConfig};
use oranges_harness::metric::{self, MetricSet, PowerContext};
use oranges_soc::chip::ChipGeneration;
use serde::Serialize;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Matrix sizes (the paper's Figure 3 shows 2048…16384).
    pub sizes: Vec<usize>,
    /// Repetition protocol (power piggybacks the five GEMM reps).
    pub protocol: RepetitionProtocol,
    /// Chips to run.
    pub chips: Vec<ChipGeneration>,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            sizes: vec![2048, 4096, 8192, 16384],
            protocol: RepetitionProtocol::GEMM,
            chips: ChipGeneration::ALL.to_vec(),
        }
    }
}

/// One cell of the Figure 3 grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig3Point {
    /// Chip.
    pub chip: ChipGeneration,
    /// Implementation legend name.
    pub implementation: &'static str,
    /// Matrix size.
    pub n: usize,
    /// Package power over the run window, mW (mean over reps).
    pub power_mw: f64,
    /// Window duration of one run, seconds.
    pub window_s: f64,
    /// Energy of one run, joules.
    pub energy_j: f64,
}

/// The full Figure 3 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Data {
    /// All cells.
    pub points: Vec<Fig3Point>,
}

impl Fig3Data {
    /// Look up one cell.
    pub fn cell(&self, chip: ChipGeneration, implementation: &str, n: usize) -> Option<&Fig3Point> {
        self.points
            .iter()
            .find(|p| p.chip == chip && p.implementation == implementation && p.n == n)
    }

    /// The hottest cell of the whole grid.
    pub fn hottest(&self) -> Option<&Fig3Point> {
        self.points
            .iter()
            .max_by(|a, b| a.power_mw.partial_cmp(&b.power_mw).expect("finite"))
    }
}

/// Run one chip's grid on an existing platform (the campaign path).
/// `config.chips` is ignored; the platform's chip decides the cells.
pub fn run_chip(platform: &mut Platform, config: &Fig3Config) -> Result<Vec<Fig3Point>, GemmError> {
    let chip = platform.chip();
    let mut points = Vec::new();
    for name in platform.implementation_names() {
        for &n in &config.sizes {
            if skips_size(name, n) {
                continue;
            }
            let samples = config.protocol.try_run(|_| {
                platform.gemm_modeled(name, n).map(|r| {
                    (
                        r.power.package_watts() * 1e3,
                        r.power.window.as_secs_f64(),
                        r.power.energy_j,
                    )
                })
            })?;
            let count = samples.len() as f64;
            let power_mw = samples.iter().map(|s| s.0).sum::<f64>() / count;
            let window_s = samples.iter().map(|s| s.1).sum::<f64>() / count;
            let energy_j = samples.iter().map(|s| s.2).sum::<f64>() / count;
            points.push(Fig3Point {
                chip,
                implementation: name,
                n,
                power_mw,
                window_s,
                energy_j,
            });
        }
    }
    Ok(points)
}

/// Run the experiment.
pub fn run(config: &Fig3Config) -> Result<Fig3Data, GemmError> {
    let mut points = Vec::new();
    for &chip in &config.chips {
        let mut platform = Platform::new(chip);
        points.extend(run_chip(&mut platform, config)?);
    }
    Ok(Fig3Data { points })
}

/// Figure 3 as a schedulable unit: one chip's power grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig3Experiment {
    /// Chip under test.
    pub chip: ChipGeneration,
    /// Matrix sizes (paper: 2048…16384).
    pub sizes: Vec<usize>,
}

impl Fig3Experiment {
    /// The paper's full per-chip grid.
    pub fn paper(chip: ChipGeneration) -> Self {
        Fig3Experiment {
            chip,
            sizes: Fig3Config::default().sizes,
        }
    }
}

impl Experiment for Fig3Experiment {
    fn id(&self) -> &'static str {
        "fig3"
    }

    fn params(&self) -> String {
        format!(
            "chip={};sizes={}",
            self.chip.name(),
            digest_sizes(&self.sizes)
        )
    }

    fn chip(&self) -> Option<ChipGeneration> {
        Some(self.chip)
    }

    fn protocol(&self) -> RepetitionProtocol {
        RepetitionProtocol::GEMM
    }

    fn run(&self, platform: &mut Platform) -> Result<ExperimentOutput, ExperimentError> {
        if platform.chip() != self.chip {
            return Err(chip_mismatch(self.chip, platform.chip()));
        }
        let config = Fig3Config {
            sizes: self.sizes.clone(),
            protocol: Experiment::protocol(self),
            chips: vec![self.chip],
        };
        let points = run_chip(platform, &config)?;
        ExperimentOutput::from_sets(metric_sets(&points, &self.params()), None)
    }
}

/// Render one chip's panel (linear power axis, like the paper).
pub fn render_panel(data: &Fig3Data, chip: ChipGeneration) -> String {
    let mut names: Vec<&'static str> = data
        .points
        .iter()
        .filter(|p| p.chip == chip)
        .map(|p| p.implementation)
        .collect();
    names.dedup();
    let series: Vec<Series> = names
        .into_iter()
        .map(|name| Series {
            label: name.to_string(),
            points: data
                .points
                .iter()
                .filter(|p| p.chip == chip && p.implementation == name)
                .map(|p| (p.n as f64, Some(p.power_mw)))
                .collect(),
        })
        .collect();
    series_chart(
        &format!("Fig. 3 ({chip}). Power utilization of each implementation varying matrix size"),
        "mW",
        &series,
        SeriesChartConfig {
            log_y: false,
            ..SeriesChartConfig::default()
        },
    )
}

/// Convert power cells to provenance-stamped [`MetricSet`]s; the cell's
/// window/energy become its [`PowerContext`].
pub fn metric_sets(points: &[Fig3Point], params: &str) -> Vec<MetricSet> {
    points
        .iter()
        .map(|p| {
            MetricSet::for_chip("fig3", params, p.chip.name())
                .with_implementation(p.implementation)
                .with_n(p.n as u64)
                .with_power(PowerContext {
                    package_watts: p.power_mw / 1e3,
                    energy_j: p.energy_j,
                    window_s: p.window_s,
                    dvfs_cap: 1.0,
                })
                .metric("power_mw", p.power_mw, "mW")
                .metric("energy_j", p.energy_j, "J")
        })
        .collect()
}

/// CSV of the dataset, through the generic metric emitter.
pub fn to_csv(data: &Fig3Data) -> String {
    metric::rows_to_csv(&metric::rows(&metric_sets(&data.points, "standalone")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Fig3Config {
        Fig3Config {
            chips: vec![ChipGeneration::M1, ChipGeneration::M4],
            ..Fig3Config::default()
        }
    }

    #[test]
    fn m4_cutlass_is_the_hottest_cell() {
        // §5.3: "M4 exhibited the highest power consumption using the
        // Cutlass-style shader" — close to 20 W.
        let data = run(&Fig3Config::default()).unwrap();
        let hottest = data.hottest().unwrap();
        assert_eq!(hottest.chip, ChipGeneration::M4);
        assert_eq!(hottest.implementation, "GPU-CUTLASS");
        assert!(
            (15_000.0..=21_000.0).contains(&hottest.power_mw),
            "{}",
            hottest.power_mw
        );
    }

    #[test]
    fn power_range_matches_paper_band() {
        // §1: "Power consumption varies from a few Watts to 10-20 Watts".
        let data = run(&Fig3Config::default()).unwrap();
        for p in &data.points {
            assert!(p.power_mw < 21_000.0, "{p:?}");
        }
        // Large runs burn at least ~2 W somewhere.
        let max = data.hottest().unwrap().power_mw;
        assert!(max > 10_000.0);
    }

    #[test]
    fn gpu_power_collapses_at_small_sizes() {
        // §5.3: "CPU implementations in single and OMP for small problems
        // consume significantly higher power than GPU-based
        // implementations" — overhead leaves the GPU idle.
        let config = Fig3Config {
            sizes: vec![64],
            chips: vec![ChipGeneration::M2],
            ..Fig3Config::default()
        };
        let data = run(&config).unwrap();
        let cpu = data
            .cell(ChipGeneration::M2, "CPU-Single", 64)
            .unwrap()
            .power_mw;
        let gpu = data
            .cell(ChipGeneration::M2, "GPU-MPS", 64)
            .unwrap()
            .power_mw;
        assert!(cpu > 3.0 * gpu, "CPU {cpu} mW vs GPU {gpu} mW");
    }

    #[test]
    fn skip_rules_and_csv() {
        let data = run(&small_config()).unwrap();
        assert!(data.cell(ChipGeneration::M1, "CPU-Single", 8192).is_none());
        let csv = to_csv(&data);
        assert!(csv.starts_with("experiment,chip,implementation,n,metric,type,value,unit"));
        assert!(csv.contains("fig3,M4,GPU-CUTLASS,16384,power_mw,float,"));
        let panel = render_panel(&data, ChipGeneration::M4);
        assert!(panel.contains("GPU-CUTLASS"));
    }

    #[test]
    fn sets_carry_the_window_as_power_context() {
        let data = run(&small_config()).unwrap();
        let sets = metric_sets(&data.points, "test");
        for (set, point) in sets.iter().zip(&data.points) {
            let power = set.provenance.power.expect("fig3 always measures power");
            assert!((power.package_watts - point.power_mw / 1e3).abs() < 1e-12);
            assert_eq!(power.window_s, point.window_s);
            assert_eq!(set.value("power_mw"), Some(point.power_mw));
        }
    }
}
