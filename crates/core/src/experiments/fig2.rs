//! Figure 2 — GFLOPS for every implementation, size and chip.
//!
//! §4's protocol: sizes 32…16384 (powers of two), five repetitions each,
//! CPU-Single and CPU-OMP skipping 8192/16384. Functional verification
//! runs once per cell up to a configurable FLOP ceiling (the paper's
//! harness verifies numerics at small scale for the same reason: full
//! verification of an 8.8 TFLOP product is itself an 8.8 TFLOP job).

use crate::experiments::experiment::{
    chip_mismatch, digest_sizes, Experiment, ExperimentError, ExperimentOutput,
};
use crate::platform::Platform;
use oranges_gemm::suite::{paper_sizes, skips_size};
use oranges_gemm::{gemm_flops, verify_sampled, GemmError, Matrix};
use oranges_harness::experiment::RepetitionProtocol;
use oranges_harness::figure::{series_chart, Series, SeriesChartConfig};
use oranges_harness::metric::{self, MetricSet, PowerContext};
use oranges_harness::stats::Summary;
use oranges_soc::chip::ChipGeneration;
use serde::Serialize;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// Matrix sizes to sweep.
    pub sizes: Vec<usize>,
    /// Repetition protocol (paper: 5 reps).
    pub protocol: RepetitionProtocol,
    /// Verify numerics functionally for cells at or below this many FLOPs.
    pub verify_max_flops: u64,
    /// Chips to run (default all four).
    pub chips: Vec<ChipGeneration>,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config {
            sizes: paper_sizes(),
            protocol: RepetitionProtocol::GEMM,
            verify_max_flops: gemm_flops(256),
            chips: ChipGeneration::ALL.to_vec(),
        }
    }
}

impl Fig2Config {
    /// A reduced grid for tests: three sizes, one verification cell.
    pub fn smoke() -> Self {
        Fig2Config {
            sizes: vec![64, 256, 1024],
            protocol: RepetitionProtocol::GEMM,
            verify_max_flops: gemm_flops(64),
            chips: vec![ChipGeneration::M1, ChipGeneration::M4],
        }
    }
}

/// One cell of the Figure 2 grid.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Point {
    /// Chip.
    pub chip: ChipGeneration,
    /// Implementation legend name.
    pub implementation: &'static str,
    /// Matrix size.
    pub n: usize,
    /// Mean GFLOPS over the repetitions.
    pub gflops: f64,
    /// Repetition statistics (of GFLOPS).
    pub stats: Summary,
    /// Whether this cell's numerics were functionally verified.
    pub verified: Option<bool>,
    /// Power/thermal context of the measured window (mean over reps).
    pub power: PowerContext,
}

/// The full Figure 2 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Data {
    /// All grid cells, in (chip, implementation, size) order.
    pub points: Vec<Fig2Point>,
}

impl Fig2Data {
    /// Look up one cell.
    pub fn cell(&self, chip: ChipGeneration, implementation: &str, n: usize) -> Option<&Fig2Point> {
        self.points
            .iter()
            .find(|p| p.chip == chip && p.implementation == implementation && p.n == n)
    }

    /// Peak GFLOPS of an implementation on a chip across sizes.
    pub fn peak(&self, chip: ChipGeneration, implementation: &str) -> f64 {
        self.points
            .iter()
            .filter(|p| p.chip == chip && p.implementation == implementation)
            .map(|p| p.gflops)
            .fold(0.0, f64::max)
    }
}

/// Run one chip's grid on an existing platform (the campaign path; the
/// platform's chip decides the cells). `config.chips` is ignored here.
pub fn run_chip(platform: &mut Platform, config: &Fig2Config) -> Result<Vec<Fig2Point>, GemmError> {
    let chip = platform.chip();
    let mut points = Vec::new();
    let names = platform.implementation_names();
    for name in names {
        for &n in &config.sizes {
            if skips_size(name, n) {
                continue;
            }
            // Optional one-shot functional verification.
            let flops = gemm_flops(n as u64);
            let verified = if flops <= config.verify_max_flops {
                Some(verify_cell(platform, name, n)?)
            } else {
                None
            };
            // The five timed repetitions (model path — deterministic),
            // with power piggybacked on the same windows.
            let runs = config
                .protocol
                .try_run(|_| platform.gemm_modeled(name, n))?;
            let samples: Vec<f64> = runs.iter().map(|r| r.gflops()).collect();
            let stats = Summary::of(&samples).expect("non-empty repetitions");
            let count = runs.len() as f64;
            let mean = |f: &dyn Fn(&PowerContext) -> f64| {
                runs.iter().map(|r| f(&r.power_context())).sum::<f64>() / count
            };
            points.push(Fig2Point {
                chip,
                implementation: name,
                n,
                gflops: stats.mean,
                stats,
                verified,
                power: PowerContext {
                    package_watts: mean(&|p| p.package_watts),
                    energy_j: mean(&|p| p.energy_j),
                    window_s: mean(&|p| p.window_s),
                    dvfs_cap: 1.0,
                },
            });
        }
    }
    Ok(points)
}

/// Run the experiment.
pub fn run(config: &Fig2Config) -> Result<Fig2Data, GemmError> {
    let mut points = Vec::new();
    for &chip in &config.chips {
        let mut platform = Platform::new(chip);
        points.extend(run_chip(&mut platform, config)?);
    }
    Ok(Fig2Data { points })
}

fn verify_cell(platform: &mut Platform, name: &'static str, n: usize) -> Result<bool, GemmError> {
    let space = platform.address_space().clone();
    let a = Matrix::random(&space, n, 1)?;
    let b = Matrix::random(&space, n, 2)?;
    let mut c = vec![0.0f32; n * n];
    let mut suite = oranges_gemm::suite::suite_for(platform.chip());
    let implementation = suite
        .iter_mut()
        .find(|i| i.name() == name)
        .expect("implementation exists");
    let outcome = implementation.run(n, a.as_slice(), b.as_slice(), &mut c)?;
    if !outcome.functional {
        return Ok(false);
    }
    let verdict = verify_sampled(n, a.as_slice(), b.as_slice(), &c, 64, 7, 1e-5);
    Ok(verdict.passed)
}

/// Render one chip's panel of Figure 2 (log-y GFLOPS vs size).
pub fn render_panel(data: &Fig2Data, chip: ChipGeneration) -> String {
    let mut series = Vec::new();
    let implementations: Vec<&'static str> = {
        let mut names: Vec<&'static str> = data
            .points
            .iter()
            .filter(|p| p.chip == chip)
            .map(|p| p.implementation)
            .collect();
        names.dedup();
        names
    };
    for name in implementations {
        let points: Vec<(f64, Option<f64>)> = data
            .points
            .iter()
            .filter(|p| p.chip == chip && p.implementation == name)
            .map(|p| (p.n as f64, Some(p.gflops)))
            .collect();
        series.push(Series {
            label: name.to_string(),
            points,
        });
    }
    series_chart(
        &format!("Fig. 2 ({chip}). GFLOPS for all implementations and matrix sizes"),
        "GFLOPS",
        &series,
        SeriesChartConfig::default(),
    )
}

/// Convert grid cells to provenance-stamped [`MetricSet`]s. `params` is
/// the producing configuration's digest (campaign units pass their cache
/// key; standalone callers a descriptive label).
pub fn metric_sets(points: &[Fig2Point], params: &str) -> Vec<MetricSet> {
    points
        .iter()
        .map(|p| {
            let mut set = MetricSet::for_chip("fig2", params, p.chip.name())
                .with_implementation(p.implementation)
                .with_n(p.n as u64)
                .with_power(p.power)
                .metric("gflops", p.gflops, "GFLOPS");
            if let Some(verified) = p.verified {
                set = set.metric("verified", verified, "flag");
            }
            set
        })
        .collect()
}

/// CSV of the dataset, through the generic metric emitter.
pub fn to_csv(data: &Fig2Data) -> String {
    metric::rows_to_csv(&metric::rows(&metric_sets(&data.points, "standalone")))
}

/// Figure 2 as a schedulable unit: one chip's GFLOPS grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig2Experiment {
    /// Chip under test.
    pub chip: ChipGeneration,
    /// Matrix sizes to sweep.
    pub sizes: Vec<usize>,
    /// Verification ceiling in FLOPs.
    pub verify_max_flops: u64,
}

impl Fig2Experiment {
    /// The paper's full per-chip grid.
    pub fn paper(chip: ChipGeneration) -> Self {
        let defaults = Fig2Config::default();
        Fig2Experiment {
            chip,
            sizes: defaults.sizes,
            verify_max_flops: defaults.verify_max_flops,
        }
    }

    fn config(&self) -> Fig2Config {
        Fig2Config {
            sizes: self.sizes.clone(),
            protocol: Experiment::protocol(self),
            verify_max_flops: self.verify_max_flops,
            chips: vec![self.chip],
        }
    }
}

impl Experiment for Fig2Experiment {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn params(&self) -> String {
        format!(
            "chip={};sizes={};verify_max_flops={}",
            self.chip.name(),
            digest_sizes(&self.sizes),
            self.verify_max_flops
        )
    }

    fn chip(&self) -> Option<ChipGeneration> {
        Some(self.chip)
    }

    fn protocol(&self) -> RepetitionProtocol {
        RepetitionProtocol::GEMM
    }

    fn run(&self, platform: &mut Platform) -> Result<ExperimentOutput, ExperimentError> {
        if platform.chip() != self.chip {
            return Err(chip_mismatch(self.chip, platform.chip()));
        }
        let points = run_chip(platform, &self.config())?;
        ExperimentOutput::from_sets(metric_sets(&points, &self.params()), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn smoke_grid_runs_and_verifies() {
        let data = run(&Fig2Config::smoke()).unwrap();
        // 2 chips × (6 impls × 3 sizes) = 36 cells.
        assert_eq!(data.points.len(), 36);
        // n=64 cells are verified.
        let verified: Vec<&Fig2Point> = data
            .points
            .iter()
            .filter(|p| p.verified.is_some())
            .collect();
        assert!(!verified.is_empty());
        assert!(
            verified.iter().all(|p| p.verified == Some(true)),
            "all verifications pass"
        );
    }

    #[test]
    fn skip_rules_applied() {
        let config = Fig2Config {
            sizes: vec![4096, 8192, 16384],
            chips: vec![ChipGeneration::M1],
            ..Fig2Config::default()
        };
        let data = run(&config).unwrap();
        assert!(data.cell(ChipGeneration::M1, "CPU-Single", 8192).is_none());
        assert!(data.cell(ChipGeneration::M1, "CPU-OMP", 16384).is_none());
        assert!(data.cell(ChipGeneration::M1, "GPU-MPS", 16384).is_some());
    }

    #[test]
    fn peaks_match_figure2_anchors() {
        let config = Fig2Config {
            sizes: vec![4096, 8192, 16384],
            verify_max_flops: 0,
            ..Fig2Config::default()
        };
        let data = run(&config).unwrap();
        for implementation in ["GPU-MPS", "CPU-Accelerate", "GPU-Naive", "GPU-CUTLASS"] {
            for chip in ChipGeneration::ALL {
                let expected = paper::fig2_peak_tflops(implementation, chip).unwrap() * 1e3;
                let got = data.peak(chip, implementation);
                assert!(
                    paper::relative_error(got, expected) < 0.05,
                    "{implementation} on {chip}: {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn render_and_csv() {
        let data = run(&Fig2Config::smoke()).unwrap();
        let panel = render_panel(&data, ChipGeneration::M1);
        assert!(panel.contains("GPU-MPS"));
        assert!(panel.contains("CPU-Single"));
        let csv = to_csv(&data);
        assert!(csv.starts_with("experiment,chip,implementation,n,metric,type,value,unit"));
        // 36 cells, each a gflops row; n=64 cells add a verified row.
        let verified_cells = data.points.iter().filter(|p| p.verified.is_some()).count();
        assert_eq!(csv.lines().count(), 1 + 36 + verified_cells);
        assert!(csv.contains("fig2,M1,GPU-MPS,1024,gflops,float,"));
    }

    #[test]
    fn cells_carry_power_context() {
        let data = run(&Fig2Config::smoke()).unwrap();
        for p in &data.points {
            assert!(p.power.package_watts > 0.0, "{p:?}");
            assert!(p.power.window_s > 0.0 && p.power.energy_j > 0.0, "{p:?}");
        }
        let sets = metric_sets(&data.points, "smoke");
        assert!(sets.iter().all(|s| s.provenance.power.is_some()));
    }
}
