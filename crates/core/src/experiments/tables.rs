//! Tables 1–3, rendered from the model databases.

use crate::experiments::experiment::{Experiment, ExperimentError, ExperimentOutput};
use crate::platform::Platform;
use oranges_gemm::suite::TABLE2;
use oranges_harness::table::{Align, TextTable};
use oranges_harness::RepetitionProtocol;
use oranges_soc::chip::{ChipGeneration, ChipSpec};
use oranges_soc::device::DeviceModel;

/// Render Table 1 ("Comparison of Baseline Apple Silicon M Series
/// Architecture").
pub fn table1() -> String {
    let specs = ChipSpec::all();
    let mut table = TextTable::new(vec!["Feature", "M1", "M2", "M3", "M4"]).numeric();
    let row = |label: &str, f: &dyn Fn(&ChipSpec) -> String| -> Vec<String> {
        let mut cells = vec![label.to_string()];
        cells.extend(specs.iter().map(|s| f(s)));
        cells
    };
    table.row(row("Process Technology (nm)", &|s| {
        s.process.table_label().to_string()
    }));
    table.row(row("CPU Architecture", &|s| s.isa.name().to_string()));
    table.row(row("Performance/Efficiency Cores", &|s| {
        format!("{}/{}", s.p_cores, s.e_cores)
    }));
    table.row(row("Clock Frequency (GHz)", &|s| {
        format!("{:.2} (P)/{:.2} (E)", s.p_clock_ghz, s.e_clock_ghz)
    }));
    table.row(row("Vector Unit (name/size)", &|s| {
        format!("NEON/{}", s.vector_bits)
    }));
    table.row(row("L1 Cache (KB)", &|s| {
        format!("{} (P)/{} (E)", s.l1_p_kib, s.l1_e_kib)
    }));
    table.row(row("L2 Cache (MB)", &|s| {
        format!("{} (P)/{} (E)", s.l2_p_mib, s.l2_e_mib)
    }));
    table.row(row("AMX Characteristics", &|s| s.amx.table_label()));
    table.row(row("GPU Cores", &|s| {
        format!("{}-{}", s.gpu_cores_min, s.gpu_cores_max)
    }));
    table.row(row("GPU Clock Frequency (GHz)", &|s| {
        format!("{:.2}", s.gpu_clock_ghz)
    }));
    table.row(row("Theoretical FP32 (TFLOPS)", &|s| {
        if (s.gpu_tflops_from_alus() - s.gpu_tflops_published).abs() > 0.1 {
            format!("{:.2}", s.gpu_tflops_published)
        } else {
            format!(
                "{:.2}-{:.2}",
                s.gpu_tflops_min_config(),
                s.gpu_tflops_published
            )
        }
    }));
    table.row(row("Neural Engine Units (Core)", &|s| {
        s.neural_engine_cores.to_string()
    }));
    table.row(row("Memory Technology", &|s| s.memory.name().to_string()));
    table.row(row("Max Unified Memory (GB)", &|s| {
        s.memory_options
            .capacities_gb
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("-")
    }));
    table.row(row("Memory Bandwidth (GB/s)", &|s| {
        format!("{:.0}", s.memory_bandwidth_gbs)
    }));
    format!(
        "Table 1. Comparison of Baseline Apple Silicon M Series Architecture.\n{}",
        table.render()
    )
}

/// Render Table 2 ("Overview of matrix multiplication implementations").
pub fn table2() -> String {
    let mut table = TextTable::new(vec!["Implementation", "Framework", "Hardware"]);
    for info in TABLE2 {
        table.row(vec![
            info.implementation,
            info.framework,
            info.hardware.label(),
        ]);
    }
    format!(
        "Table 2. Overview of matrix multiplication implementations.\n{}",
        table.render()
    )
}

/// Render Table 3 ("Basic information of devices used").
pub fn table3() -> String {
    let devices = DeviceModel::all();
    let mut table = TextTable::new(vec!["Feature", "M1", "M2", "M3", "M4"])
        .align(0, Align::Left)
        .numeric();
    let row = |label: &str, f: &dyn Fn(&DeviceModel) -> String| -> Vec<String> {
        let mut cells = vec![label.to_string()];
        cells.extend(devices.iter().map(f));
        cells
    };
    table.row(row("Device", &|d| d.form_factor.name().to_string()));
    table.row(row("Release", &|d| d.release_year.to_string()));
    table.row(row("Memory", &|d| format!("{}GB", d.memory_gb)));
    table.row(row("Cooling", &|d| d.cooling.label().to_string()));
    table.row(row("MacOS", &|d| d.macos_version.to_string()));
    format!(
        "Table 3. Basic information of devices used.\n{}",
        table.render()
    )
}

/// Tables 1–3 as one chip-independent schedulable unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TablesExperiment;

impl Experiment for TablesExperiment {
    fn id(&self) -> &'static str {
        "tables"
    }

    fn params(&self) -> String {
        "tables=1,2,3".to_string()
    }

    fn chip(&self) -> Option<ChipGeneration> {
        None
    }

    fn protocol(&self) -> RepetitionProtocol {
        RepetitionProtocol { reps: 1, warmup: 0 }
    }

    fn run(&self, _platform: &mut Platform) -> Result<ExperimentOutput, ExperimentError> {
        let rendered = [table1(), table2(), table3()];
        let mut set = self.base_set();
        for (i, text) in rendered.iter().enumerate() {
            set = set.metric(
                &format!("table{}_lines", i + 1),
                text.lines().count() as i64,
                "lines",
            );
        }
        ExperimentOutput::from_sets(vec![set], Some(rendered.join("\n\n")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_every_row_of_the_paper() {
        let text = table1();
        for needle in [
            "Process Technology",
            "ARMv8.5-A",
            "ARMv9.2-A",
            "4/6",
            "NEON/128",
            "FP16,32,64/BF16 (SME)",
            "LPDDR4X",
            "LPDDR5X",
            "120",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }

    #[test]
    fn table2_matches_paper() {
        let text = table2();
        for needle in [
            "Naive algorithm",
            "BLAS/vDSP",
            "Cutlass-style tiled shader",
            "Accelerate",
            "Metal",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn table3_matches_paper() {
        let text = table3();
        for needle in [
            "MacBook Air",
            "Mac mini",
            "2020",
            "Passive",
            "Air",
            "14.7.2",
            "15.2",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn m4_published_tflops_shown_verbatim() {
        // The M4 row shows the published 4.26 (not the ALU-derived value).
        assert!(table1().contains("4.26"));
    }

    #[test]
    fn chips_in_release_order() {
        let text = table1();
        let m1_pos = text.find("M1").unwrap();
        let m4_pos = text.find("M4").unwrap();
        assert!(m1_pos < m4_pos);
        let _ = oranges_soc::chip::ChipGeneration::ALL;
    }
}
