//! Equivalence proofs: every unrolled kernel against its scalar twin.
//!
//! Bitwise for everything elementwise (stream passes, fused iteration,
//! elem ops), for the SGEMM microkernel (one in-order accumulator per
//! output element), and for the cache-blocked macrokernel (KC panels
//! ascend and re-seed from stored f32 partials); error-bounded for the
//! reordered reductions, using the standard summation bound
//! `|err| <= c · n · eps · Σ|terms|`. Deterministic sweeps cover the
//! awkward lengths (0, 1, lane−1, lane+1, primes) and sizes straddling
//! every MC/KC/NC panel boundary; proptests cover the space in between.

use oranges_kernels::block::{sgemm_f32_blocked, sgemm_f32_blocked_with, BlockSizes, CacheParams};
use oranges_kernels::{elem, gemm, reduce, stream};
use proptest::collection::vec;
use proptest::prelude::*;

fn series_f32(n: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(11);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 8) as f32 / (1u32 << 24) as f32 - 0.5
        })
        .collect()
}

fn series_f64(n: usize, seed: u32) -> Vec<f64> {
    series_f32(n, seed).into_iter().map(f64::from).collect()
}

/// Lengths around the unroll width (8), around the microkernel tile, and
/// prime sizes that never divide evenly.
const AWKWARD: [usize; 13] = [0, 1, 2, 7, 8, 9, 13, 15, 16, 17, 31, 97, 257];

fn assert_reduction_close_f32(fast: f32, slow: f32, terms: impl Iterator<Item = f64>, n: usize) {
    let sum_abs: f64 = terms.map(f64::abs).sum();
    let tol = 4.0 * (n as f64 + 8.0) * f32::EPSILON as f64 * sum_abs + 1e-30;
    assert!(
        (f64::from(fast) - f64::from(slow)).abs() <= tol,
        "fast {fast} vs scalar {slow} beyond summation bound {tol} (n={n})"
    );
}

fn assert_reduction_close_f64(fast: f64, slow: f64, terms: impl Iterator<Item = f64>, n: usize) {
    let sum_abs: f64 = terms.map(f64::abs).sum();
    let tol = 4.0 * (n as f64 + 8.0) * f64::EPSILON * sum_abs + 1e-300;
    assert!(
        (fast - slow).abs() <= tol,
        "fast {fast} vs scalar {slow} beyond summation bound {tol} (n={n})"
    );
}

#[test]
fn reductions_match_twins_on_awkward_lengths() {
    for n in AWKWARD {
        let a32 = series_f32(n, 1);
        let b32 = series_f32(n, 2);
        let a64 = series_f64(n, 3);
        let b64 = series_f64(n, 4);

        assert_reduction_close_f32(
            reduce::dot_f32(&a32, &b32),
            reduce::dot_f32_scalar(&a32, &b32),
            a32.iter()
                .zip(&b32)
                .map(|(x, y)| f64::from(*x) * f64::from(*y)),
            n,
        );
        assert_reduction_close_f64(
            reduce::dot_f64(&a64, &b64),
            reduce::dot_f64_scalar(&a64, &b64),
            a64.iter().zip(&b64).map(|(x, y)| x * y),
            n,
        );
        assert_reduction_close_f32(
            reduce::sum_f32(&a32),
            reduce::sum_f32_scalar(&a32),
            a32.iter().map(|&x| f64::from(x)),
            n,
        );
        assert_reduction_close_f64(
            reduce::sum_f64(&a64),
            reduce::sum_f64_scalar(&a64),
            a64.iter().copied(),
            n,
        );
        assert_eq!(
            reduce::max_f32(&a32),
            reduce::max_f32_scalar(&a32),
            "max n={n}"
        );
        assert_reduction_close_f64(
            reduce::dot_f32_to_f64(&a32, &b32),
            reduce::dot_f32_to_f64_scalar(&a32, &b32),
            a32.iter()
                .zip(&b32)
                .map(|(x, y)| f64::from(*x) * f64::from(*y)),
            n,
        );
    }
}

#[test]
fn strided_dot_matches_twin_on_awkward_lengths_and_strides() {
    for n in AWKWARD {
        for stride in [1usize, 2, 3, 7] {
            let a = series_f32(n, 5);
            let col_len = if n == 0 { 0 } else { (n - 1) * stride + 1 };
            let b = series_f32(col_len, 6);
            assert_reduction_close_f64(
                reduce::dot_f32_to_f64_strided(&a, &b, stride),
                reduce::dot_f32_to_f64_strided_scalar(&a, &b, stride),
                a.iter()
                    .enumerate()
                    .map(|(i, &x)| f64::from(x) * f64::from(b[i * stride])),
                n,
            );
        }
    }
}

#[test]
fn stream_and_elem_kernels_match_twins_bitwise_on_awkward_lengths() {
    for n in AWKWARD {
        let a = series_f64(n, 7);
        let b = series_f64(n, 8);
        let mut fast = vec![0.0f64; n];
        let mut slow = vec![0.0f64; n];

        stream::copy_f64(&a, &mut fast);
        stream::copy_f64_scalar(&a, &mut slow);
        assert_eq!(fast, slow, "copy n={n}");
        stream::scale_f64(3.0, &a, &mut fast);
        stream::scale_f64_scalar(3.0, &a, &mut slow);
        assert_eq!(fast, slow, "scale n={n}");
        stream::add_f64(&a, &b, &mut fast);
        stream::add_f64_scalar(&a, &b, &mut slow);
        assert_eq!(fast, slow, "add n={n}");
        stream::triad_f64(3.0, &a, &b, &mut fast);
        stream::triad_f64_scalar(3.0, &a, &b, &mut slow);
        assert_eq!(fast, slow, "triad n={n}");

        let a32 = series_f32(n, 9);
        let b32 = series_f32(n, 10);
        let mut fast32 = vec![0.0f32; n];
        let mut slow32 = vec![0.0f32; n];
        elem::scale_f32(&a32, 1.25, &mut fast32);
        elem::scale_f32_scalar(&a32, 1.25, &mut slow32);
        assert_eq!(fast32, slow32, "scale_f32 n={n}");
        elem::add_f32(&a32, &b32, &mut fast32);
        elem::add_f32_scalar(&a32, &b32, &mut slow32);
        assert_eq!(fast32, slow32, "add_f32 n={n}");
        elem::axpy_f32(0.75, &a32, &mut fast32);
        elem::axpy_f32_scalar(0.75, &a32, &mut slow32);
        assert_eq!(fast32, slow32, "axpy_f32 n={n}");
    }
}

#[test]
fn sgemm_matches_twin_bitwise_on_awkward_shapes() {
    // Around the MR=4 / NR=8 tile edges and at primes.
    for &(m, n, k) in &[
        (1usize, 1usize, 1usize),
        (3, 7, 5),
        (4, 8, 16),
        (5, 9, 17),
        (7, 15, 3),
        (13, 11, 13),
        (16, 16, 16),
        (17, 17, 17),
        (2, 31, 1),
    ] {
        let a = series_f32(m * k, 11);
        let b = series_f32(k * n, 12);
        let mut fast = vec![f32::NAN; m * n];
        let mut slow = vec![f32::NAN; m * n];
        gemm::sgemm_f32(m, n, k, &a, k, &b, n, &mut fast, n);
        gemm::sgemm_f32_scalar(m, n, k, &a, k, &b, n, &mut slow, n);
        assert_eq!(fast, slow, "m={m} n={n} k={k}");
    }
}

/// Small explicit blocks so modest matrices cross every panel loop:
/// MC = 8 (2 tile rows), KC = 12 (3 k-unroll groups), NC = 16 (2 tile
/// columns).
const TEST_BLOCKS: BlockSizes = BlockSizes {
    mc: 8,
    kc: 12,
    nc: 16,
};

#[test]
fn blocked_sgemm_matches_twin_bitwise_at_panel_boundaries() {
    // m/n/k at MC/NC/KC ± 1, exact multiples, primes, and k = 0.
    let mut shapes = Vec::new();
    for m in [7usize, 8, 9, 16, 17, 23] {
        for n in [15usize, 16, 17, 32, 31] {
            for k in [11usize, 12, 13, 24, 37, 0] {
                shapes.push((m, n, k));
            }
        }
    }
    shapes.extend_from_slice(&[(1, 1, 1), (3, 5, 7), (29, 31, 37)]);
    for (m, n, k) in shapes {
        let a = series_f32(m * k, 21);
        let b = series_f32(k * n, 22);
        let mut fast = vec![f32::NAN; m * n];
        let mut slow = vec![f32::NAN; m * n];
        sgemm_f32_blocked_with(m, n, k, &a, k.max(1), &b, n, &mut fast, n, &TEST_BLOCKS);
        gemm::sgemm_f32_scalar(m, n, k, &a, k.max(1), &b, n, &mut slow, n);
        assert_eq!(fast, slow, "m={m} n={n} k={k}");
    }
}

#[test]
fn blocked_sgemm_matches_twin_bitwise_with_odd_leading_dimensions() {
    let (m, n, k) = (9usize, 17usize, 13usize);
    let (lda, ldb, ldc) = (k + 3, n + 5, n + 7); // odd, non-packed strides
    let a = series_f32(m * lda, 23);
    let b = series_f32(k * ldb, 24);
    let mut fast = vec![-3.0f32; m * ldc];
    let mut slow = vec![-3.0f32; m * ldc];
    sgemm_f32_blocked_with(m, n, k, &a, lda, &b, ldb, &mut fast, ldc, &TEST_BLOCKS);
    gemm::sgemm_f32_scalar(m, n, k, &a, lda, &b, ldb, &mut slow, ldc);
    assert_eq!(fast, slow);
    // Storage beyond each row's n columns is untouched.
    for r in 0..m {
        assert_eq!(
            &fast[r * ldc + n..(r + 1) * ldc],
            &slow[r * ldc + n..(r + 1) * ldc]
        );
        assert!(fast[r * ldc + n..(r + 1) * ldc].iter().all(|&v| v == -3.0));
    }
}

#[test]
fn blocked_sgemm_handles_degenerate_blocks_larger_than_the_matrix() {
    // MC > m, NC > n, KC > k: a single partial block in every loop.
    let sizes = BlockSizes {
        mc: 64,
        kc: 64,
        nc: 64,
    };
    for (m, n, k) in [(3usize, 5usize, 7usize), (1, 9, 2), (13, 1, 1)] {
        let a = series_f32(m * k, 25);
        let b = series_f32(k * n, 26);
        let mut fast = vec![f32::NAN; m * n];
        let mut slow = vec![f32::NAN; m * n];
        sgemm_f32_blocked_with(m, n, k, &a, k, &b, n, &mut fast, n, &sizes);
        gemm::sgemm_f32_scalar(m, n, k, &a, k, &b, n, &mut slow, n);
        assert_eq!(fast, slow, "m={m} n={n} k={k}");
    }
}

#[test]
fn blocked_sgemm_matches_twin_with_host_default_geometry() {
    // The production parameter path (larger-than-matrix blocks collapse
    // to one panel each) and a size big enough to split KC at least once
    // under the test geometry.
    let params = CacheParams::host_default();
    for (m, n, k) in [(33usize, 29usize, 41usize), (64, 64, 64)] {
        let a = series_f32(m * k, 27);
        let b = series_f32(k * n, 28);
        let mut fast = vec![f32::NAN; m * n];
        let mut slow = vec![f32::NAN; m * n];
        sgemm_f32_blocked(m, n, k, &a, k, &b, n, &mut fast, n, &params);
        gemm::sgemm_f32_scalar(m, n, k, &a, k, &b, n, &mut slow, n);
        assert_eq!(fast, slow, "m={m} n={n} k={k}");
    }
}

#[test]
fn blocked_sgemm_agrees_with_unblocked_microkernel_bitwise() {
    // Transitivity check made explicit: both paths equal the scalar twin,
    // so they must equal each other.
    let (m, n, k) = (23usize, 31usize, 29usize);
    let a = series_f32(m * k, 29);
    let b = series_f32(k * n, 30);
    let mut blocked = vec![f32::NAN; m * n];
    let mut micro = vec![f32::NAN; m * n];
    sgemm_f32_blocked_with(m, n, k, &a, k, &b, n, &mut blocked, n, &TEST_BLOCKS);
    gemm::sgemm_f32(m, n, k, &a, k, &b, n, &mut micro, n);
    assert_eq!(blocked, micro);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_dot_f32_within_summation_bound(
        a in vec(any::<f32>(), 0..300),
        b in vec(any::<f32>(), 0..300),
    ) {
        let n = a.len().min(b.len());
        let fast = reduce::dot_f32(&a, &b);
        let slow = reduce::dot_f32_scalar(&a, &b);
        let sum_abs: f64 = a.iter().zip(&b)
            .map(|(x, y)| (f64::from(*x) * f64::from(*y)).abs())
            .sum();
        let tol = 4.0 * (n as f64 + 8.0) * f32::EPSILON as f64 * sum_abs + 1e-30;
        prop_assert!((f64::from(fast) - f64::from(slow)).abs() <= tol,
            "fast {fast} vs {slow}, tol {tol}");
    }

    #[test]
    fn prop_sum_f64_within_summation_bound(a in vec(any::<f64>(), 0..300)) {
        let fast = reduce::sum_f64(&a);
        let slow = reduce::sum_f64_scalar(&a);
        let sum_abs: f64 = a.iter().map(|x| x.abs()).sum();
        let tol = 4.0 * (a.len() as f64 + 8.0) * f64::EPSILON * sum_abs + 1e-300;
        prop_assert!((fast - slow).abs() <= tol, "fast {fast} vs {slow}, tol {tol}");
    }

    #[test]
    fn prop_max_f32_matches_twin_exactly(a in vec(any::<f32>(), 0..300)) {
        prop_assert_eq!(reduce::max_f32(&a), reduce::max_f32_scalar(&a));
    }

    #[test]
    fn prop_fused_iteration_is_bitwise_the_four_passes(
        seed in vec(any::<f64>(), 0..600),
        iterations in 1u32..4,
    ) {
        let n = seed.len();
        let (mut a1, mut a2) = (seed.clone(), seed.clone());
        let (mut b1, mut b2) = (vec![2.0; n], vec![2.0; n]);
        let (mut c1, mut c2) = (vec![0.0; n], vec![0.0; n]);
        for _ in 0..iterations {
            stream::fused_iteration_f64(&mut a1, &mut b1, &mut c1, 3.0);
            stream::fused_iteration_f64_scalar(&mut a2, &mut b2, &mut c2, 3.0);
        }
        prop_assert_eq!(a1, a2);
        prop_assert_eq!(b1, b2);
        prop_assert_eq!(c1, c2);
    }

    #[test]
    fn prop_axpy_is_bitwise_scalar(
        x in vec(any::<f32>(), 0..200),
        s in -10.0f32..10.0,
    ) {
        let mut fast = vec![1.5f32; x.len()];
        let mut slow = vec![1.5f32; x.len()];
        elem::axpy_f32(s, &x, &mut fast);
        elem::axpy_f32_scalar(s, &x, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn prop_sgemm_is_bitwise_scalar(
        m in 0usize..24,
        n in 0usize..24,
        k in 0usize..24,
        seed in 0u32..1000,
    ) {
        let a = series_f32(m * k, seed);
        let b = series_f32(k * n, seed.wrapping_add(1));
        let mut fast = vec![f32::NAN; m * n];
        let mut slow = vec![f32::NAN; m * n];
        gemm::sgemm_f32(m, n, k, &a, k.max(1), &b, n, &mut fast, n);
        gemm::sgemm_f32_scalar(m, n, k, &a, k.max(1), &b, n, &mut slow, n);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn prop_blocked_sgemm_is_bitwise_scalar(
        m in 0usize..40,
        n in 0usize..40,
        k in 0usize..40,
        mc in 1usize..12,
        kc in 1usize..16,
        nc in 1usize..20,
        seed in 0u32..1000,
    ) {
        // Arbitrary (even tile-misaligned) block sizes must stay bitwise.
        let sizes = BlockSizes { mc, kc, nc };
        let a = series_f32(m * k, seed);
        let b = series_f32(k * n, seed.wrapping_add(1));
        let mut fast = vec![f32::NAN; m * n];
        let mut slow = vec![f32::NAN; m * n];
        sgemm_f32_blocked_with(m, n, k, &a, k.max(1), &b, n, &mut fast, n, &sizes);
        gemm::sgemm_f32_scalar(m, n, k, &a, k.max(1), &b, n, &mut slow, n);
        prop_assert_eq!(fast, slow);
    }
}
