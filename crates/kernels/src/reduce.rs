//! Multi-accumulator reductions.
//!
//! A naive `acc += x[i] * y[i]` loop serializes on the FP add: every
//! iteration waits the full add latency (~3–4 cycles) before the next can
//! issue, and LLVM may not reassociate strict IEEE arithmetic, so the
//! loop runs at a fraction of the machine's FP throughput. Splitting the
//! reduction across 4–8 *independent* accumulators breaks that chain —
//! the adds pipeline, and the blocked body vectorizes.
//!
//! Reordering a float sum changes the rounding, so these kernels are
//! **ULP-bounded** (not bitwise) against their scalar twins; the combine
//! order is fixed (pairwise tree over the accumulators, then the scalar
//! tail) so results are deterministic for a given input.

/// Accumulator lanes used by the unrolled reductions.
pub const ACC_LANES: usize = 8;

#[inline]
fn tree8_f32(acc: [f32; ACC_LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

#[inline]
fn tree8_f64(acc: [f64; ACC_LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Dot product over the common prefix of `a` and `b`, 8 accumulators.
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f32; ACC_LANES];
    let mut ac = a.chunks_exact(ACC_LANES);
    let mut bc = b.chunks_exact(ACC_LANES);
    for (x, y) in (&mut ac).zip(&mut bc) {
        for lane in 0..ACC_LANES {
            acc[lane] += x[lane] * y[lane];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        tail += x * y;
    }
    tree8_f32(acc) + tail
}

/// Scalar twin of [`dot_f32`]: one sequential accumulator.
pub fn dot_f32_scalar(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let mut acc = 0.0f32;
    for i in 0..n {
        acc += a[i] * b[i];
    }
    acc
}

/// Dot product over the common prefix of `a` and `b`, 8 accumulators.
pub fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; ACC_LANES];
    let mut ac = a.chunks_exact(ACC_LANES);
    let mut bc = b.chunks_exact(ACC_LANES);
    for (x, y) in (&mut ac).zip(&mut bc) {
        for lane in 0..ACC_LANES {
            acc[lane] += x[lane] * y[lane];
        }
    }
    let mut tail = 0.0f64;
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        tail += x * y;
    }
    tree8_f64(acc) + tail
}

/// Scalar twin of [`dot_f64`].
pub fn dot_f64_scalar(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += a[i] * b[i];
    }
    acc
}

/// Sum of `a`, 8 accumulators.
pub fn sum_f32(a: &[f32]) -> f32 {
    let mut acc = [0.0f32; ACC_LANES];
    let mut chunks = a.chunks_exact(ACC_LANES);
    for x in &mut chunks {
        for lane in 0..ACC_LANES {
            acc[lane] += x[lane];
        }
    }
    let mut tail = 0.0f32;
    for x in chunks.remainder() {
        tail += x;
    }
    tree8_f32(acc) + tail
}

/// Scalar twin of [`sum_f32`].
pub fn sum_f32_scalar(a: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for &x in a {
        acc += x;
    }
    acc
}

/// Sum of `a`, 8 accumulators.
pub fn sum_f64(a: &[f64]) -> f64 {
    let mut acc = [0.0f64; ACC_LANES];
    let mut chunks = a.chunks_exact(ACC_LANES);
    for x in &mut chunks {
        for lane in 0..ACC_LANES {
            acc[lane] += x[lane];
        }
    }
    let mut tail = 0.0f64;
    for x in chunks.remainder() {
        tail += x;
    }
    tree8_f64(acc) + tail
}

/// Scalar twin of [`sum_f64`].
pub fn sum_f64_scalar(a: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for &x in a {
        acc += x;
    }
    acc
}

/// Maximum element, 8 lanes (identity `-inf` on empty input, NaN-ignoring
/// like [`f32::max`]).
///
/// The lane fold is the branch-free select `if x > acc { x } else
/// { acc }` rather than [`f32::max`]: the latter lowers to `llvm.maxnum`,
/// whose NaN-propagation rules cost a branchy fixup sequence per element
/// on x86, which is what regressed this kernel below its scalar twin.
/// The select form compiles to a plain packed-max/blend. NaN inputs are
/// still ignored (`NaN > acc` is false and the accumulator starts at
/// `-inf`, so it can never become NaN).
///
/// Max is order-insensitive, so this is value-equal to its scalar twin.
pub fn max_f32(a: &[f32]) -> f32 {
    let mut acc = [f32::NEG_INFINITY; ACC_LANES];
    let mut chunks = a.chunks_exact(ACC_LANES);
    for x in &mut chunks {
        for lane in 0..ACC_LANES {
            acc[lane] = if x[lane] > acc[lane] {
                x[lane]
            } else {
                acc[lane]
            };
        }
    }
    let mut m = ((acc[0].max(acc[1])).max(acc[2].max(acc[3])))
        .max((acc[4].max(acc[5])).max(acc[6].max(acc[7])));
    for &x in chunks.remainder() {
        m = m.max(x);
    }
    m
}

/// Scalar twin of [`max_f32`].
pub fn max_f32_scalar(a: &[f32]) -> f32 {
    a.iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

/// f64-widening dot product of f32 inputs (each product computed exactly
/// in f64 — the precision the GEMM verifier needs), 8 accumulators.
pub fn dot_f32_to_f64(a: &[f32], b: &[f32]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; ACC_LANES];
    let mut ac = a.chunks_exact(ACC_LANES);
    let mut bc = b.chunks_exact(ACC_LANES);
    for (x, y) in (&mut ac).zip(&mut bc) {
        for lane in 0..ACC_LANES {
            acc[lane] += x[lane] as f64 * y[lane] as f64;
        }
    }
    let mut tail = 0.0f64;
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        tail += *x as f64 * *y as f64;
    }
    tree8_f64(acc) + tail
}

/// Scalar twin of [`dot_f32_to_f64`].
pub fn dot_f32_to_f64_scalar(a: &[f32], b: &[f32]) -> f64 {
    let n = a.len().min(b.len());
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += a[i] as f64 * b[i] as f64;
    }
    acc
}

/// f64-widening dot of a contiguous row `a` against a strided column
/// `b[i * stride]` (the row-major column access of sampled GEMM
/// verification), 4 accumulators.
///
/// Uses all of `a`; `b` must hold at least `(a.len() - 1) * stride + 1`
/// elements (`stride >= 1`).
pub fn dot_f32_to_f64_strided(a: &[f32], b: &[f32], stride: usize) -> f64 {
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    assert!(stride >= 1, "stride must be at least 1");
    assert!(
        b.len() > (n - 1) * stride,
        "b holds {} elements, needs {}",
        b.len(),
        (n - 1) * stride + 1
    );
    let mut acc = [0.0f64; 4];
    let mut i = 0;
    while i + 4 <= n {
        acc[0] += a[i] as f64 * b[i * stride] as f64;
        acc[1] += a[i + 1] as f64 * b[(i + 1) * stride] as f64;
        acc[2] += a[i + 2] as f64 * b[(i + 2) * stride] as f64;
        acc[3] += a[i + 3] as f64 * b[(i + 3) * stride] as f64;
        i += 4;
    }
    let mut tail = 0.0f64;
    while i < n {
        tail += a[i] as f64 * b[i * stride] as f64;
        i += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Scalar twin of [`dot_f32_to_f64_strided`].
pub fn dot_f32_to_f64_strided_scalar(a: &[f32], b: &[f32], stride: usize) -> f64 {
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    assert!(stride >= 1, "stride must be at least 1");
    assert!(
        b.len() > (n - 1) * stride,
        "b holds {} elements, needs {}",
        b.len(),
        (n - 1) * stride + 1
    );
    let mut acc = 0.0f64;
    for (i, &x) in a.iter().enumerate() {
        acc += x as f64 * b[i * stride] as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ulp::ulp_distance_f64;

    fn series_f32(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 7 + 3) % 23) as f32 / 23.0 - 0.4)
            .collect()
    }

    #[test]
    fn dot_exact_on_small_integers() {
        // Fully inside the tail path: order matches the scalar twin.
        assert_eq!(dot_f32(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot_f64(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn dot_truncates_to_common_prefix() {
        assert_eq!(dot_f32(&[1.0, 2.0, 3.0], &[10.0]), 10.0);
        assert_eq!(dot_f32_scalar(&[1.0, 2.0, 3.0], &[10.0]), 10.0);
    }

    #[test]
    fn empty_inputs_reduce_to_identities() {
        assert_eq!(dot_f32(&[], &[]), 0.0);
        assert_eq!(sum_f64(&[]), 0.0);
        assert_eq!(max_f32(&[]), f32::NEG_INFINITY);
        assert_eq!(dot_f32_to_f64_strided(&[], &[], 3), 0.0);
    }

    #[test]
    fn max_matches_scalar_exactly() {
        for n in [0, 1, 7, 8, 9, 64, 97] {
            let a = series_f32(n);
            assert_eq!(max_f32(&a), max_f32_scalar(&a), "n={n}");
        }
    }

    #[test]
    fn max_ignores_nans_like_its_twin() {
        let mut a = series_f32(41);
        a[0] = f32::NAN;
        a[9] = f32::NAN;
        a[40] = f32::NAN;
        let m = max_f32(&a);
        assert!(!m.is_nan());
        assert_eq!(m, max_f32_scalar(&a));
        // All-NaN input degrades to the empty identity, as f32::max does.
        let nans = vec![f32::NAN; 17];
        assert_eq!(max_f32(&nans), f32::NEG_INFINITY);
        assert_eq!(max_f32_scalar(&nans), f32::NEG_INFINITY);
    }

    #[test]
    fn strided_dot_matches_contiguous_at_stride_one() {
        let a = series_f32(37);
        let b = series_f32(37);
        let strided = dot_f32_to_f64_strided(&a, &b, 1);
        let contiguous = dot_f32_to_f64_scalar(&a, &b);
        assert!(ulp_distance_f64(strided, contiguous) < 8);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn strided_dot_rejects_short_columns() {
        dot_f32_to_f64_strided(&[1.0, 2.0], &[1.0, 2.0], 4);
    }
}
