//! f32 elementwise kernels for the vDSP-shaped API and the AMX lane loop.
//!
//! All operate on the common prefix of their slices (vDSP's truncation
//! semantics) and are **bitwise**-equal to their scalar twins: elementwise
//! ops are unrolled, never reordered, and never contracted into FMAs.

/// `out[i] = a[i] * s`.
pub fn scale_f32(a: &[f32], s: f32, out: &mut [f32]) {
    let n = a.len().min(out.len());
    let (a, out) = (&a[..n], &mut out[..n]);
    let mut ac = a.chunks_exact(8);
    let mut oc = out.chunks_exact_mut(8);
    for (x, o) in (&mut ac).zip(&mut oc) {
        for lane in 0..8 {
            o[lane] = x[lane] * s;
        }
    }
    for (x, o) in ac.remainder().iter().zip(oc.into_remainder()) {
        *o = x * s;
    }
}

/// Scalar twin of [`scale_f32`].
pub fn scale_f32_scalar(a: &[f32], s: f32, out: &mut [f32]) {
    let n = a.len().min(out.len());
    for i in 0..n {
        out[i] = a[i] * s;
    }
}

/// `out[i] = a[i] + b[i]`.
pub fn add_f32(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = a.len().min(b.len()).min(out.len());
    let (a, b, out) = (&a[..n], &b[..n], &mut out[..n]);
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    let mut oc = out.chunks_exact_mut(8);
    for ((x, y), o) in (&mut ac).zip(&mut bc).zip(&mut oc) {
        for lane in 0..8 {
            o[lane] = x[lane] + y[lane];
        }
    }
    for ((x, y), o) in ac
        .remainder()
        .iter()
        .zip(bc.remainder())
        .zip(oc.into_remainder())
    {
        *o = x + y;
    }
}

/// Scalar twin of [`add_f32`].
pub fn add_f32_scalar(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = a.len().min(b.len()).min(out.len());
    for i in 0..n {
        out[i] = a[i] + b[i];
    }
}

/// `out[i] += s * x[i]` — the AMX outer-product lane operation (one
/// multiply then one add per element; deliberately *not* `mul_add`, which
/// would change rounding).
pub fn axpy_f32(s: f32, x: &[f32], out: &mut [f32]) {
    let n = x.len().min(out.len());
    let (x, out) = (&x[..n], &mut out[..n]);
    let mut xc = x.chunks_exact(8);
    let mut oc = out.chunks_exact_mut(8);
    for (xv, o) in (&mut xc).zip(&mut oc) {
        for lane in 0..8 {
            o[lane] += s * xv[lane];
        }
    }
    for (xv, o) in xc.remainder().iter().zip(oc.into_remainder()) {
        *o += s * xv;
    }
}

/// Scalar twin of [`axpy_f32`].
pub fn axpy_f32_scalar(s: f32, x: &[f32], out: &mut [f32]) {
    let n = x.len().min(out.len());
    for i in 0..n {
        out[i] += s * x[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize, seed: u32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as u32 * 13 + seed * 5 + 2) % 89) as f32 / 89.0 - 0.4)
            .collect()
    }

    #[test]
    fn elementwise_kernels_match_scalar_twins_bitwise() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 61] {
            let a = series(n, 1);
            let b = series(n, 2);
            let mut fast = vec![0.0f32; n];
            let mut slow = vec![0.0f32; n];

            scale_f32(&a, 1.75, &mut fast);
            scale_f32_scalar(&a, 1.75, &mut slow);
            assert_eq!(fast, slow, "scale n={n}");

            add_f32(&a, &b, &mut fast);
            add_f32_scalar(&a, &b, &mut slow);
            assert_eq!(fast, slow, "add n={n}");

            let mut fast_acc = series(n, 3);
            let mut slow_acc = fast_acc.clone();
            axpy_f32(0.6, &a, &mut fast_acc);
            axpy_f32_scalar(0.6, &a, &mut slow_acc);
            assert_eq!(fast_acc, slow_acc, "axpy n={n}");
        }
    }

    #[test]
    fn truncation_leaves_the_excess_untouched() {
        let mut out = [7.0f32; 4];
        scale_f32(&[2.0, 3.0], 2.0, &mut out);
        assert_eq!(out, [4.0, 6.0, 7.0, 7.0]);
        let mut out = [1.0f32; 2];
        add_f32(&[1.0, 2.0, 3.0], &[1.0], &mut out);
        assert_eq!(out, [2.0, 1.0]);
    }
}
