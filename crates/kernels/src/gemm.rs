//! Register-tiled SGEMM microkernel over packed panels.
//!
//! `C := A · B` (row-major, leading dimensions) computed `MR×NR` output
//! tiles at a time. A and B are repacked once into panel-contiguous
//! buffers — A panels store `MR` rows k-major (so the microkernel reads
//! one contiguous `MR`-vector per k step), B panels store `NR` columns
//! row-major — which turns the inner loop into two sequential streams and
//! a `MR×NR = 32`-accumulator register tile. The 32 independent
//! accumulator chains supply the instruction-level parallelism (a naive
//! j-inner loop has one), the packed reads vectorize, and the k loop is
//! unrolled 4×.
//!
//! **Bitwise equivalence:** each output element keeps exactly one
//! accumulator, accumulated in ascending-k order — the same IEEE
//! operations in the same order as the scalar triple loop — so results
//! are bitwise-identical to [`sgemm_f32_scalar`] (edge padding multiplies
//! into lanes that are never written back). That is what lets consumers
//! swap this kernel into verified paths without perturbing campaign
//! value-identity.

/// Microkernel tile rows.
pub const MR: usize = 4;
/// Microkernel tile columns.
pub const NR: usize = 8;
/// k-loop unroll factor.
const KU: usize = 4;

/// `c := a · b` for row-major `m×k` · `k×n` with leading dimensions
/// `lda/ldb/ldc` (`lda >= k`, `ldb >= n`, `ldc >= n`). `c`'s `m×n`
/// region is overwritten; elements beyond each leading dimension are
/// untouched.
// BLAS-shaped signature: the argument list is the interface.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_f32(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(lda >= k && ldb >= n && ldc >= n, "leading dimensions");
    if k > 0 {
        assert!(a.len() >= (m - 1) * lda + k, "a too short");
        assert!(b.len() >= (k - 1) * ldb + n, "b too short");
    }
    assert!(c.len() >= (m - 1) * ldc + n, "c too short");

    let m_panels = m.div_ceil(MR);
    let n_panels = n.div_ceil(NR);

    // Pack A: panel ip holds rows ip*MR.. as [p*MR + r], zero-padded rows.
    let mut a_pack = vec![0.0f32; m_panels * MR * k];
    // Pack B: panel jp holds columns jp*NR.. as [p*NR + j], zero-padded.
    let mut b_pack = vec![0.0f32; n_panels * NR * k];
    if k > 0 {
        for ip in 0..m_panels {
            let panel = &mut a_pack[ip * MR * k..(ip + 1) * MR * k];
            for r in 0..MR.min(m - ip * MR) {
                let row = &a[(ip * MR + r) * lda..(ip * MR + r) * lda + k];
                for (p, &v) in row.iter().enumerate() {
                    panel[p * MR + r] = v;
                }
            }
        }
        for jp in 0..n_panels {
            let width = NR.min(n - jp * NR);
            let panel = &mut b_pack[jp * NR * k..(jp + 1) * NR * k];
            for p in 0..k {
                let row = &b[p * ldb + jp * NR..p * ldb + jp * NR + width];
                panel[p * NR..p * NR + width].copy_from_slice(row);
            }
        }
    }

    for ip in 0..m_panels {
        let ap = &a_pack[ip * MR * k..(ip + 1) * MR * k];
        for jp in 0..n_panels {
            let bp = &b_pack[jp * NR * k..(jp + 1) * NR * k];
            let mut acc = [[0.0f32; NR]; MR];

            // k-unrolled microkernel over the packed streams.
            let mut apc = ap.chunks_exact(KU * MR);
            let mut bpc = bp.chunks_exact(KU * NR);
            for (ab, bb) in (&mut apc).zip(&mut bpc) {
                for u in 0..KU {
                    let av = &ab[u * MR..(u + 1) * MR];
                    let bv = &bb[u * NR..(u + 1) * NR];
                    for (r, row) in acc.iter_mut().enumerate() {
                        let ar = av[r];
                        for (ci, slot) in row.iter_mut().enumerate() {
                            *slot += ar * bv[ci];
                        }
                    }
                }
            }
            for (av, bv) in apc
                .remainder()
                .chunks_exact(MR)
                .zip(bpc.remainder().chunks_exact(NR))
            {
                for (r, row) in acc.iter_mut().enumerate() {
                    let ar = av[r];
                    for (ci, slot) in row.iter_mut().enumerate() {
                        *slot += ar * bv[ci];
                    }
                }
            }

            // Write back the valid region only.
            let (i0, j0) = (ip * MR, jp * NR);
            for r in 0..MR.min(m - i0) {
                let out = &mut c[(i0 + r) * ldc + j0..(i0 + r) * ldc + j0 + NR.min(n - j0)];
                out.copy_from_slice(&acc[r][..out.len()]);
            }
        }
    }
}

/// Scalar twin of [`sgemm_f32`]: the literal triple loop, one sequential
/// accumulator per output element.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_f32_scalar(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * lda + p] * b[p * ldb + j];
            }
            c[i * ldc + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_matrix(rows: usize, cols: usize, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..rows * cols)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1u32 << 24) as f32 - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_scalar_bitwise_on_awkward_shapes() {
        for (m, n, k) in [
            (1, 1, 1),
            (4, 8, 4),
            (3, 7, 5),
            (5, 9, 4),
            (16, 16, 16),
            (17, 13, 11),
            (8, 8, 0),
            (1, 23, 31),
            (29, 1, 3),
        ] {
            let a = det_matrix(m, k, 1);
            let b = det_matrix(k, n, 2);
            let mut fast = vec![f32::NAN; m * n];
            let mut slow = vec![f32::NAN; m * n];
            sgemm_f32(m, n, k, &a, k.max(1), &b, n, &mut fast, n);
            sgemm_f32_scalar(m, n, k, &a, k.max(1), &b, n, &mut slow, n);
            assert_eq!(fast, slow, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn respects_leading_dimensions() {
        // Multiply a 2x3 · 3x2 submatrix embedded in wider storage.
        let lda = 5;
        let ldb = 4;
        let ldc = 6;
        let mut a = vec![9.0f32; 2 * lda];
        let mut b = vec![9.0f32; 3 * ldb];
        // a = [1 2 3; 4 5 6], b = [1 0; 0 1; 1 1]
        a[0] = 1.0;
        a[1] = 2.0;
        a[2] = 3.0;
        a[lda] = 4.0;
        a[lda + 1] = 5.0;
        a[lda + 2] = 6.0;
        b[0] = 1.0;
        b[1] = 0.0;
        b[ldb] = 0.0;
        b[ldb + 1] = 1.0;
        b[2 * ldb] = 1.0;
        b[2 * ldb + 1] = 1.0;
        let mut c = vec![-1.0f32; 2 * ldc];
        sgemm_f32(2, 2, 3, &a, lda, &b, ldb, &mut c, ldc);
        assert_eq!(&c[..2], &[4.0, 5.0]);
        assert_eq!(&c[ldc..ldc + 2], &[10.0, 11.0]);
        // Storage beyond the written region is untouched.
        assert_eq!(c[2], -1.0);
        assert_eq!(c[ldc + 2], -1.0);
    }

    #[test]
    fn zero_k_writes_zeros() {
        let mut c = vec![5.0f32; 4];
        sgemm_f32(2, 2, 0, &[], 1, &[], 2, &mut c, 2);
        assert_eq!(c, vec![0.0; 4]);
    }

    #[test]
    fn empty_output_is_a_no_op() {
        let mut c: Vec<f32> = Vec::new();
        sgemm_f32(0, 4, 2, &[], 2, &[0.0; 8], 4, &mut c, 4);
        sgemm_f32(4, 0, 2, &[0.0; 8], 2, &[], 0, &mut c, 0);
    }

    #[test]
    #[should_panic(expected = "a too short")]
    fn short_a_panics() {
        let mut c = vec![0.0f32; 4];
        sgemm_f32(2, 2, 3, &[0.0; 5], 3, &[0.0; 6], 2, &mut c, 2);
    }
}
