//! Portable SIMD-style microkernels for the workspace's host hot loops.
//!
//! Every experiment figure ultimately rests on kernel throughput — STREAM
//! bandwidth (Fig. 1) and GEMM FLOPS (Fig. 2) — so the host-side loops
//! that *run* those kernels are the measured product. This crate collects
//! them in one place, written in the standard single-core style that lets
//! LLVM emit wide code and keeps the FP pipelines full:
//!
//! - [`reduce`] — dot / sum / max with **4–8 independent accumulators**,
//!   breaking the FP dependency chain a naive `acc += …` loop serializes
//!   on (an FP add every ~4 cycles instead of every cycle's worth of
//!   throughput);
//! - [`stream`] — the four STREAM array passes plus a **fused
//!   full-iteration** that performs Copy → Scale → Add → Triad in one
//!   memory sweep (legal because all four passes are elementwise on the
//!   same index: 4 words of traffic per element instead of 10);
//! - [`elem`] — f32 elementwise ops (`scale`, `add`, `axpy`) for the
//!   vDSP-shaped API and the AMX outer-product lane loop;
//! - [`gemm`] — an `MR×NR` register-tiled SGEMM microkernel over packed
//!   panels with a k-unrolled inner loop;
//! - [`block`] — the Goto/BLIS cache-blocked macrokernel above that tile:
//!   NC/KC/MC panel loops with [`block::CacheParams`]-derived block sizes,
//!   packing once per panel and seeding tile accumulators from C so the
//!   KC split stays bitwise-faithful to the scalar loop.
//!
//! # Equivalence contract
//!
//! Every kernel has a scalar reference twin (`*_scalar`) defining its
//! semantics, and a test proving the pair agrees:
//!
//! | kernel family | twin relation |
//! |---|---|
//! | `stream::*`, `elem::*` | **bitwise** — elementwise ops are not reordered |
//! | `gemm::sgemm_f32` | **bitwise** — one accumulator per output element, k-order preserved (the tile itself supplies the ILP) |
//! | `block::sgemm_f32_blocked` | **bitwise** — KC panels ascend and re-seed from stored f32 partials (store/load is exact), so the element-wise op sequence equals the scalar loop |
//! | `reduce::*` (dot/sum) | **ULP-bounded** — multi-accumulator reductions reorder the sum |
//! | `reduce::max_f32` | value-equal — max is order-insensitive |
//! | `ulp::diff_stats_f32` | exact — fused diff/threshold/count pass matches its three separate sweeps |
//!
//! The bitwise rows are what let consumers swap these kernels in without
//! perturbing campaign value-identity fingerprints; the ULP rows feed
//! tolerance-checked paths only (sampled GEMM verification).

#![forbid(unsafe_code)]

pub mod block;
pub mod elem;
pub mod gemm;
pub mod reduce;
pub mod stream;
pub mod ulp;

pub use block::{sgemm_f32_blocked, sgemm_f32_blocked_with, BlockSizes, CacheParams};
pub use gemm::{sgemm_f32, sgemm_f32_scalar};
pub use reduce::{dot_f32, dot_f64, max_f32, sum_f32, sum_f64};
pub use stream::fused_iteration_f64;
pub use ulp::{diff_stats_f32, ulp_distance_f32, ulp_distance_f64, DiffStats};
