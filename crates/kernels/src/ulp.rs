//! ULP (units-in-the-last-place) distance between floats, for bounding
//! the rounding drift a reordered reduction is allowed.
//!
//! Finite floats of the same sign map onto consecutive integers under
//! their bit patterns; mapping negative values through the sign-magnitude
//! flip makes the whole finite line monotone, so the ULP distance is an
//! integer difference. NaNs (and comparisons that would cross infinity)
//! return the maximum distance — never "close".

fn ordered_f32(x: f32) -> i64 {
    let bits = x.to_bits() as i32;
    let ordered = if bits < 0 { i32::MIN - bits } else { bits };
    ordered as i64
}

fn ordered_f64(x: f64) -> i128 {
    let bits = x.to_bits() as i64;
    let ordered = if bits < 0 { i64::MIN - bits } else { bits };
    ordered as i128
}

/// ULP distance between two f32 values (`u64::MAX` if either is NaN).
pub fn ulp_distance_f32(x: f32, y: f32) -> u64 {
    if x.is_nan() || y.is_nan() {
        return u64::MAX;
    }
    (ordered_f32(x) - ordered_f32(y)).unsigned_abs()
}

/// ULP distance between two f64 values (`u128::MAX` if either is NaN).
pub fn ulp_distance_f64(x: f64, y: f64) -> u128 {
    if x.is_nan() || y.is_nan() {
        return u128::MAX;
    }
    (ordered_f64(x) - ordered_f64(y)).unsigned_abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_are_zero_apart() {
        assert_eq!(ulp_distance_f32(1.5, 1.5), 0);
        assert_eq!(ulp_distance_f64(-2.25, -2.25), 0);
    }

    #[test]
    fn signed_zeros_are_zero_apart() {
        assert_eq!(ulp_distance_f32(0.0, -0.0), 0);
        assert_eq!(ulp_distance_f64(0.0, -0.0), 0);
    }

    #[test]
    fn adjacent_representable_values_are_one_apart() {
        let x = 1.0f32;
        let next = f32::from_bits(x.to_bits() + 1);
        assert_eq!(ulp_distance_f32(x, next), 1);
        let y = -1.0f64;
        let next = f64::from_bits(y.to_bits() + 1); // next representable
        assert_eq!(ulp_distance_f64(y, next), 1);
    }

    #[test]
    fn crossing_zero_counts_both_sides() {
        let tiny = f32::from_bits(1); // smallest positive subnormal
        assert_eq!(ulp_distance_f32(tiny, -tiny), 2);
    }

    #[test]
    fn nan_is_never_close() {
        assert_eq!(ulp_distance_f32(f32::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_distance_f64(1.0, f64::NAN), u128::MAX);
    }
}
