//! ULP (units-in-the-last-place) distance between floats, for bounding
//! the rounding drift a reordered reduction is allowed.
//!
//! Finite floats of the same sign map onto consecutive integers under
//! their bit patterns; mapping negative values through the sign-magnitude
//! flip makes the whole finite line monotone, so the ULP distance is an
//! integer difference. NaNs (and comparisons that would cross infinity)
//! return the maximum distance — never "close".

fn ordered_f32(x: f32) -> i64 {
    let bits = x.to_bits() as i32;
    let ordered = if bits < 0 { i32::MIN - bits } else { bits };
    ordered as i64
}

fn ordered_f64(x: f64) -> i128 {
    let bits = x.to_bits() as i64;
    let ordered = if bits < 0 { i64::MIN - bits } else { bits };
    ordered as i128
}

/// ULP distance between two f32 values (`u64::MAX` if either is NaN).
pub fn ulp_distance_f32(x: f32, y: f32) -> u64 {
    if x.is_nan() || y.is_nan() {
        return u64::MAX;
    }
    (ordered_f32(x) - ordered_f32(y)).unsigned_abs()
}

/// ULP distance between two f64 values (`u128::MAX` if either is NaN).
pub fn ulp_distance_f64(x: f64, y: f64) -> u128 {
    if x.is_nan() || y.is_nan() {
        return u128::MAX;
    }
    (ordered_f64(x) - ordered_f64(y)).unsigned_abs()
}

/// Result of one fused [`diff_stats_f32`] sweep over a pair of arrays.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiffStats {
    /// Largest absolute difference, as bits of the f32 (so the struct
    /// stays `Eq`); [`DiffStats::max_abs`] recovers the float. NaN pairs
    /// force `f32::INFINITY`.
    max_abs_bits: u32,
    /// Largest elementwise ULP distance (`u64::MAX` when a pair has a
    /// NaN on one side only).
    pub max_ulp: u64,
    /// Elements whose absolute difference exceeded the threshold
    /// (NaN-on-one-side pairs always count).
    pub mismatches: usize,
    /// Elements compared (the common prefix length).
    pub compared: usize,
}

impl DiffStats {
    /// Largest absolute difference seen.
    pub fn max_abs(&self) -> f32 {
        f32::from_bits(self.max_abs_bits)
    }
}

/// Fused verification sweep: one pass over the common prefix of `got`
/// and `want` computing the max absolute difference, max ULP distance,
/// and the count of elements exceeding `abs_tol` — replacing the
/// separate diff → threshold → count sweeps (three reads of each array)
/// with a single read of each.
///
/// Pairs where both sides are NaN count as equal (distance 0); a NaN on
/// one side only is an unconditional mismatch at maximum distance.
pub fn diff_stats_f32(got: &[f32], want: &[f32], abs_tol: f32) -> DiffStats {
    let compared = got.len().min(want.len());
    let mut stats = DiffStats {
        compared,
        ..DiffStats::default()
    };
    let mut max_abs = 0.0f32;
    for (&g, &w) in got[..compared].iter().zip(&want[..compared]) {
        if g.is_nan() || w.is_nan() {
            if g.is_nan() != w.is_nan() {
                max_abs = f32::INFINITY;
                stats.max_ulp = u64::MAX;
                stats.mismatches += 1;
            }
            continue;
        }
        let diff = (g - w).abs();
        max_abs = if diff > max_abs { diff } else { max_abs };
        let ulp = ulp_distance_f32(g, w);
        stats.max_ulp = stats.max_ulp.max(ulp);
        if diff > abs_tol {
            stats.mismatches += 1;
        }
    }
    stats.max_abs_bits = max_abs.to_bits();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_are_zero_apart() {
        assert_eq!(ulp_distance_f32(1.5, 1.5), 0);
        assert_eq!(ulp_distance_f64(-2.25, -2.25), 0);
    }

    #[test]
    fn signed_zeros_are_zero_apart() {
        assert_eq!(ulp_distance_f32(0.0, -0.0), 0);
        assert_eq!(ulp_distance_f64(0.0, -0.0), 0);
    }

    #[test]
    fn adjacent_representable_values_are_one_apart() {
        let x = 1.0f32;
        let next = f32::from_bits(x.to_bits() + 1);
        assert_eq!(ulp_distance_f32(x, next), 1);
        let y = -1.0f64;
        let next = f64::from_bits(y.to_bits() + 1); // next representable
        assert_eq!(ulp_distance_f64(y, next), 1);
    }

    #[test]
    fn crossing_zero_counts_both_sides() {
        let tiny = f32::from_bits(1); // smallest positive subnormal
        assert_eq!(ulp_distance_f32(tiny, -tiny), 2);
    }

    #[test]
    fn nan_is_never_close() {
        assert_eq!(ulp_distance_f32(f32::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_distance_f64(1.0, f64::NAN), u128::MAX);
    }

    #[test]
    fn diff_stats_matches_separate_sweeps() {
        let got: Vec<f32> = (0..97).map(|i| (i as f32).sin()).collect();
        let want: Vec<f32> = got
            .iter()
            .enumerate()
            .map(|(i, &x)| if i % 7 == 0 { x + 1e-3 } else { x })
            .collect();
        let tol = 1e-4f32;
        let fused = diff_stats_f32(&got, &want, tol);
        // The three sweeps it replaces.
        let max_abs = got
            .iter()
            .zip(&want)
            .map(|(g, w)| (g - w).abs())
            .fold(0.0f32, f32::max);
        let max_ulp = got
            .iter()
            .zip(&want)
            .map(|(&g, &w)| ulp_distance_f32(g, w))
            .max()
            .unwrap();
        let mismatches = got
            .iter()
            .zip(&want)
            .filter(|(g, w)| (*g - *w).abs() > tol)
            .count();
        assert_eq!(fused.max_abs(), max_abs);
        assert_eq!(fused.max_ulp, max_ulp);
        assert_eq!(fused.mismatches, mismatches);
        assert_eq!(fused.compared, 97);
    }

    #[test]
    fn diff_stats_handles_nan_sides() {
        let stats = diff_stats_f32(&[f32::NAN, f32::NAN, 1.0], &[f32::NAN, 1.0, 1.0], 0.0);
        assert_eq!(stats.mismatches, 1); // NaN-vs-NaN is equal, NaN-vs-1.0 is not
        assert_eq!(stats.max_ulp, u64::MAX);
        assert!(stats.max_abs().is_infinite());
        assert_eq!(diff_stats_f32(&[], &[1.0], 0.0).compared, 0);
    }
}
