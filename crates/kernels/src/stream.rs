//! STREAM array kernels (f64): the four passes and a fused single-sweep
//! full iteration.
//!
//! stream.c's iteration is Copy → Scale → Add → Triad, four passes over
//! three arrays (10 words of memory traffic per element). Every pass is
//! elementwise *on the same index* — `c[i] = a[i]`, `b[i] = q·c[i]`,
//! `c[i] = a[i] + b[i]`, `a[i] = b[i] + q·c[i]` — so the whole iteration
//! can legally fuse into one sweep that reads `a[i]` once and writes
//! `a[i]`, `b[i]`, `c[i]`: 4 words of traffic instead of 10, with
//! **bitwise-identical** results (the same IEEE operations in the same
//! per-element order, and no element ever reads another element's slot).
//!
//! All kernels operate on the common prefix of their slices and are
//! bitwise-equal to their scalar twins (no reductions, nothing reordered).

/// STREAM Copy: `dst[i] = src[i]`.
pub fn copy_f64(src: &[f64], dst: &mut [f64]) {
    let n = src.len().min(dst.len());
    dst[..n].copy_from_slice(&src[..n]);
}

/// Scalar twin of [`copy_f64`].
// The twin must stay the literal naive loop it documents.
#[allow(clippy::manual_memcpy)]
pub fn copy_f64_scalar(src: &[f64], dst: &mut [f64]) {
    let n = src.len().min(dst.len());
    for i in 0..n {
        dst[i] = src[i];
    }
}

/// STREAM Scale: `dst[i] = q * src[i]`.
pub fn scale_f64(q: f64, src: &[f64], dst: &mut [f64]) {
    let n = src.len().min(dst.len());
    let (src, dst) = (&src[..n], &mut dst[..n]);
    let mut sc = src.chunks_exact(8);
    let mut dc = dst.chunks_exact_mut(8);
    for (s, d) in (&mut sc).zip(&mut dc) {
        for lane in 0..8 {
            d[lane] = q * s[lane];
        }
    }
    for (s, d) in sc.remainder().iter().zip(dc.into_remainder()) {
        *d = q * s;
    }
}

/// Scalar twin of [`scale_f64`].
pub fn scale_f64_scalar(q: f64, src: &[f64], dst: &mut [f64]) {
    let n = src.len().min(dst.len());
    for i in 0..n {
        dst[i] = q * src[i];
    }
}

/// STREAM Add: `dst[i] = a[i] + b[i]`.
pub fn add_f64(a: &[f64], b: &[f64], dst: &mut [f64]) {
    let n = a.len().min(b.len()).min(dst.len());
    let (a, b, dst) = (&a[..n], &b[..n], &mut dst[..n]);
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    let mut dc = dst.chunks_exact_mut(8);
    for ((x, y), d) in (&mut ac).zip(&mut bc).zip(&mut dc) {
        for lane in 0..8 {
            d[lane] = x[lane] + y[lane];
        }
    }
    for ((x, y), d) in ac
        .remainder()
        .iter()
        .zip(bc.remainder())
        .zip(dc.into_remainder())
    {
        *d = x + y;
    }
}

/// Scalar twin of [`add_f64`].
pub fn add_f64_scalar(a: &[f64], b: &[f64], dst: &mut [f64]) {
    let n = a.len().min(b.len()).min(dst.len());
    for i in 0..n {
        dst[i] = a[i] + b[i];
    }
}

/// STREAM Triad: `dst[i] = b[i] + q * c[i]`.
pub fn triad_f64(q: f64, b: &[f64], c: &[f64], dst: &mut [f64]) {
    let n = b.len().min(c.len()).min(dst.len());
    let (b, c, dst) = (&b[..n], &c[..n], &mut dst[..n]);
    let mut bc = b.chunks_exact(8);
    let mut cc = c.chunks_exact(8);
    let mut dc = dst.chunks_exact_mut(8);
    for ((x, y), d) in (&mut bc).zip(&mut cc).zip(&mut dc) {
        for lane in 0..8 {
            d[lane] = x[lane] + q * y[lane];
        }
    }
    for ((x, y), d) in bc
        .remainder()
        .iter()
        .zip(cc.remainder())
        .zip(dc.into_remainder())
    {
        *d = x + q * y;
    }
}

/// Scalar twin of [`triad_f64`].
pub fn triad_f64_scalar(q: f64, b: &[f64], c: &[f64], dst: &mut [f64]) {
    let n = b.len().min(c.len()).min(dst.len());
    for i in 0..n {
        dst[i] = b[i] + q * c[i];
    }
}

/// One full STREAM iteration — Copy, Scale, Add, Triad — fused into a
/// single memory sweep. Bitwise-identical to running the four pass
/// kernels in sequence (see the module docs for the legality argument).
pub fn fused_iteration_f64(a: &mut [f64], b: &mut [f64], c: &mut [f64], q: f64) {
    let n = a.len().min(b.len()).min(c.len());
    let (a, b, c) = (&mut a[..n], &mut b[..n], &mut c[..n]);
    let mut ac = a.chunks_exact_mut(4);
    let mut bc = b.chunks_exact_mut(4);
    let mut cc = c.chunks_exact_mut(4);
    for ((av, bv), cv) in (&mut ac).zip(&mut bc).zip(&mut cc) {
        for lane in 0..4 {
            let ai = av[lane];
            let copy = ai; // c[i] = a[i]
            let scale = q * copy; // b[i] = q * c[i]
            let add = ai + scale; // c[i] = a[i] + b[i]
            av[lane] = scale + q * add; // a[i] = b[i] + q * c[i]
            bv[lane] = scale;
            cv[lane] = add;
        }
    }
    for ((ai, bi), ci) in ac
        .into_remainder()
        .iter_mut()
        .zip(bc.into_remainder())
        .zip(cc.into_remainder())
    {
        let copy = *ai;
        let scale = q * copy;
        let add = *ai + scale;
        *ai = scale + q * add;
        *bi = scale;
        *ci = add;
    }
}

/// Scalar twin of [`fused_iteration_f64`]: the literal four passes.
pub fn fused_iteration_f64_scalar(a: &mut [f64], b: &mut [f64], c: &mut [f64], q: f64) {
    copy_f64_scalar(a, c);
    scale_f64_scalar(q, c, b);
    let n = a.len().min(b.len()).min(c.len());
    for i in 0..n {
        c[i] = a[i] + b[i];
    }
    for i in 0..n {
        a[i] = b[i] + q * c[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as u64 * 31 + seed * 7 + 5) % 101) as f64 / 101.0 - 0.3)
            .collect()
    }

    #[test]
    fn passes_match_scalar_twins_bitwise() {
        for n in [0usize, 1, 3, 7, 8, 9, 13, 97] {
            let src = series(n, 1);
            let b = series(n, 2);
            let mut fast = vec![0.0; n];
            let mut slow = vec![0.0; n];

            copy_f64(&src, &mut fast);
            copy_f64_scalar(&src, &mut slow);
            assert_eq!(fast, slow, "copy n={n}");

            scale_f64(3.0, &src, &mut fast);
            scale_f64_scalar(3.0, &src, &mut slow);
            assert_eq!(fast, slow, "scale n={n}");

            add_f64(&src, &b, &mut fast);
            add_f64_scalar(&src, &b, &mut slow);
            assert_eq!(fast, slow, "add n={n}");

            triad_f64(3.0, &src, &b, &mut fast);
            triad_f64_scalar(3.0, &src, &b, &mut slow);
            assert_eq!(fast, slow, "triad n={n}");
        }
    }

    #[test]
    fn fused_iteration_equals_four_passes_bitwise() {
        for n in [0usize, 1, 3, 4, 5, 31, 256, 977] {
            let (mut a1, mut b1, mut c1) = (series(n, 1), series(n, 2), series(n, 3));
            let (mut a2, mut b2, mut c2) = (a1.clone(), b1.clone(), c1.clone());
            for _ in 0..3 {
                fused_iteration_f64(&mut a1, &mut b1, &mut c1, 3.0);
                fused_iteration_f64_scalar(&mut a2, &mut b2, &mut c2, 3.0);
            }
            assert_eq!(a1, a2, "a n={n}");
            assert_eq!(b1, b2, "b n={n}");
            assert_eq!(c1, c2, "c n={n}");
        }
    }

    #[test]
    fn stream_recurrence_holds_after_fused_iteration() {
        let mut a = vec![1.0; 100];
        let mut b = vec![2.0; 100];
        let mut c = vec![0.0; 100];
        fused_iteration_f64(&mut a, &mut b, &mut c, 3.0);
        // c = 1; b = 3; c = 1 + 3 = 4; a = 3 + 12 = 15.
        assert!(c.iter().all(|&v| v == 4.0));
        assert!(b.iter().all(|&v| v == 3.0));
        assert!(a.iter().all(|&v| v == 15.0));
    }
}
