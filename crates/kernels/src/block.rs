//! Cache-blocked SGEMM macrokernel: Goto/BLIS panel loops over the 4×8
//! register tile.
//!
//! [`crate::gemm::sgemm_f32`] packs *all* of A and B up front and then
//! sweeps every B panel per A row-panel — at large `n` the B pack no
//! longer fits in L2 and the sweep streams it from the next cache level
//! on every row of tiles. This module adds the classic three-loop
//! macrokernel above the same `MR×NR` register tile:
//!
//! - **NC** over B columns — bounds the packed B panel (`KC×NC`);
//! - **KC** over the reduction dim, **ascending** — bounds the panels'
//!   k-extent so an `NR`-column B sliver plus an `MR`-row A sliver stay
//!   L1-resident through the inner loop;
//! - **MC** over A rows — bounds the packed A block (`MC×KC`) to fit L2.
//!
//! A is packed into `MR`-row k-major panels and B into `NR`-column
//! row-major panels once per block, then the microkernel runs over
//! resident panels. Block sizes come from [`CacheParams`] (defaults tuned
//! for the CI-class host; the `soc`/`amx` layers plug in per-chip
//! geometry) or an explicit [`BlockSizes`] override.
//!
//! # Bitwise equivalence
//!
//! Splitting k into KC panels normally *changes* the rounding: library
//! GEMMs accumulate each panel into a register tile and add panel sums
//! out of order. Here every output element keeps exactly one running
//! value: the first KC panel starts its tile accumulator at zero, every
//! later panel **seeds the accumulator from the f32 partial already
//! stored in C** (an f32 store/load round-trip is exact), accumulates its
//! k-range in ascending order, and stores back. The element therefore
//! sees the identical IEEE operation sequence as the scalar triple loop —
//! [`sgemm_f32_blocked`] is **bitwise identical** to
//! [`crate::gemm::sgemm_f32_scalar`], which is what lets every verified
//! backend adopt it without perturbing campaign value-identity. Packed
//! edge padding multiplies zeros into tile lanes that are never written
//! back, exactly like the unblocked microkernel.
//!
//! The inner tile here is the same 4×8 accumulator grid as
//! [`crate::gemm::sgemm_f32`], but reads its panels through fixed-size
//! `&[f32; MR]`/`&[f32; NR]` views — a shape LLVM turns into packed
//! vector code (the slice-iterator form in the unblocked path compiles to
//! scalar FP). Per-lane IEEE semantics are unchanged (Rust never
//! contracts `mul`+`add` into FMA), so vectorization does not affect the
//! bitwise contract.

use crate::gemm::{MR, NR};

/// k-loop unroll factor of the blocked microkernel.
const KU: usize = 4;

/// Per-core cache geometry the block-size model consumes.
///
/// Only the two levels that shape the Goto schedule are modeled: the B
/// sliver + A sliver working set must sit in L1d, and the packed A block
/// in L2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheParams {
    /// Per-core L1 data cache capacity in bytes.
    pub l1d_bytes: usize,
    /// Per-core (or per-cluster share of) L2 capacity in bytes.
    pub l2_bytes: usize,
}

impl CacheParams {
    /// Cache model for explicit geometry (the `soc`/`amx` layers feed
    /// per-chip `ChipSpec` L1/L2 numbers through this).
    pub const fn new(l1d_bytes: usize, l2_bytes: usize) -> Self {
        Self {
            l1d_bytes,
            l2_bytes,
        }
    }

    /// Defaults for the CI-class x86 host the bench trajectory runs on
    /// (48 KiB L1d, 2 MiB private L2 — measured on the reference runner).
    pub const fn host_default() -> Self {
        Self::new(48 * 1024, 2 * 1024 * 1024)
    }

    /// Derive concrete panel-loop block sizes from this geometry.
    pub fn block_sizes(&self) -> BlockSizes {
        BlockSizes::for_cache(self)
    }
}

/// Concrete NC/KC/MC panel-loop bounds.
///
/// Any positive values are legal (the macrokernel handles partial blocks
/// and degenerate `mc > m` shapes); [`BlockSizes::for_cache`] derives
/// cache-fitting defaults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockSizes {
    /// A-block rows per MC iteration.
    pub mc: usize,
    /// Reduction-dim extent per KC panel.
    pub kc: usize,
    /// B-panel columns per NC iteration.
    pub nc: usize,
}

impl BlockSizes {
    /// Fit the Goto working sets to `params`:
    ///
    /// - `kc` so the L1-resident slivers (`NR·kc` of B + `MR·kc` of A)
    ///   fill about half of L1d;
    /// - `mc` so the packed `mc×kc` A block fills about half of L2;
    /// - `nc` so the packed `kc×nc` B panel stays within one L2's worth
    ///   of footprint in the level behind it.
    pub fn for_cache(params: &CacheParams) -> Self {
        let word = core::mem::size_of::<f32>();
        let kc = (params.l1d_bytes / 2 / (word * (MR + NR))).clamp(KU, 1024);
        let kc = kc - kc % KU;
        let mc = (params.l2_bytes / 2 / (word * kc)).max(MR);
        let mc = mc - mc % MR;
        let nc = (params.l2_bytes / (word * kc)).clamp(NR, 4096);
        let nc = nc - nc % NR;
        Self { mc, kc, nc }
    }
}

/// Blocked `c := a · b` for row-major `m×k` · `k×n` with leading
/// dimensions, block sizes derived from `params`. Same slice contract as
/// [`crate::gemm::sgemm_f32`]; bitwise-identical results.
// BLAS-shaped signature: the argument list is the interface.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_f32_blocked(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    params: &CacheParams,
) {
    sgemm_f32_blocked_with(m, n, k, a, lda, b, ldb, c, ldc, &params.block_sizes());
}

/// [`sgemm_f32_blocked`] with explicit panel-loop bounds (the form the
/// equivalence suite uses to park block boundaries on awkward sizes).
#[allow(clippy::too_many_arguments)]
pub fn sgemm_f32_blocked_with(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    sizes: &BlockSizes,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(lda >= k && ldb >= n && ldc >= n, "leading dimensions");
    if k > 0 {
        assert!(a.len() >= (m - 1) * lda + k, "a too short");
        assert!(b.len() >= (k - 1) * ldb + n, "b too short");
    }
    assert!(c.len() >= (m - 1) * ldc + n, "c too short");
    assert!(sizes.mc > 0 && sizes.kc > 0 && sizes.nc > 0, "block sizes");

    if k == 0 {
        // Same contract as the scalar loop: k = 0 writes zeros.
        for row in c.chunks_mut(ldc).take(m) {
            row[..n].fill(0.0);
        }
        return;
    }

    let mc = sizes.mc.min(m.next_multiple_of(MR));
    let kc = sizes.kc.min(k);
    let nc = sizes.nc.min(n.next_multiple_of(NR));

    // Pack buffers are sized for full blocks and reused across panels;
    // the pack routines fully overwrite the region a block uses.
    let mut a_pack = vec![0.0f32; mc.next_multiple_of(MR) * kc];
    let mut b_pack = vec![0.0f32; kc * nc.next_multiple_of(NR)];

    let mut jc = 0;
    while jc < n {
        let ncb = nc.min(n - jc);
        let n_panels = ncb.div_ceil(NR);
        // KC panels in ascending-k order: each seeds from C's stored
        // partial, so every element accumulates k strictly ascending.
        let mut pc = 0;
        while pc < k {
            let kcb = kc.min(k - pc);
            pack_b(&mut b_pack, b, ldb, pc, jc, kcb, ncb);
            let first_panel = pc == 0;
            let mut ic = 0;
            while ic < m {
                let mcb = mc.min(m - ic);
                let m_panels = mcb.div_ceil(MR);
                pack_a(&mut a_pack, a, lda, ic, pc, mcb, kcb);
                for ip in 0..m_panels {
                    let rows = MR.min(mcb - ip * MR);
                    let ap = &a_pack[ip * MR * kcb..(ip + 1) * MR * kcb];
                    for jp in 0..n_panels {
                        let cols = NR.min(ncb - jp * NR);
                        let bp = &b_pack[jp * NR * kcb..(jp + 1) * NR * kcb];
                        let c0 = (ic + ip * MR) * ldc + jc + jp * NR;

                        let mut acc = [[0.0f32; NR]; MR];
                        if !first_panel {
                            for (r, row) in acc.iter_mut().enumerate().take(rows) {
                                row[..cols].copy_from_slice(&c[c0 + r * ldc..c0 + r * ldc + cols]);
                            }
                        }
                        microkernel_4x8(&mut acc, ap, bp, kcb);
                        for (r, row) in acc.iter().enumerate().take(rows) {
                            c[c0 + r * ldc..c0 + r * ldc + cols].copy_from_slice(&row[..cols]);
                        }
                    }
                }
                ic += mcb;
            }
            pc += kcb;
        }
        jc += ncb;
    }
}

/// Pack the `mcb×kcb` A block at `(ic, pc)` into `MR`-row k-major panels
/// (`panel[p*MR + r]`), zero-padding partial row groups.
fn pack_a(a_pack: &mut [f32], a: &[f32], lda: usize, ic: usize, pc: usize, mcb: usize, kcb: usize) {
    for ip in 0..mcb.div_ceil(MR) {
        let rows = MR.min(mcb - ip * MR);
        let panel = &mut a_pack[ip * MR * kcb..(ip + 1) * MR * kcb];
        if rows < MR {
            panel.fill(0.0);
        }
        for r in 0..rows {
            let src = &a[(ic + ip * MR + r) * lda + pc..][..kcb];
            for (p, &v) in src.iter().enumerate() {
                panel[p * MR + r] = v;
            }
        }
    }
}

/// Pack the `kcb×ncb` B block at `(pc, jc)` into `NR`-column row-major
/// panels (`panel[p*NR + j]`), zero-padding partial column groups.
fn pack_b(b_pack: &mut [f32], b: &[f32], ldb: usize, pc: usize, jc: usize, kcb: usize, ncb: usize) {
    for jp in 0..ncb.div_ceil(NR) {
        let cols = NR.min(ncb - jp * NR);
        let panel = &mut b_pack[jp * NR * kcb..(jp + 1) * NR * kcb];
        for p in 0..kcb {
            let src = &b[(pc + p) * ldb + jc + jp * NR..][..cols];
            let dst = &mut panel[p * NR..(p + 1) * NR];
            dst[..cols].copy_from_slice(src);
            dst[cols..].fill(0.0);
        }
    }
}

/// The 4×8 register tile over one A panel / B panel pair: `kc` ascending
/// k steps of `acc[r][j] += ap[p*MR+r] * bp[p*NR+j]` on the caller's
/// accumulators.
///
/// Same operation order as [`crate::gemm::sgemm_f32`]'s tile loop, but
/// the panel reads go through fixed-size array views so LLVM emits
/// packed vector FP for the 32 independent accumulator chains.
#[inline]
fn microkernel_4x8(acc: &mut [[f32; NR]; MR], ap: &[f32], bp: &[f32], kc: usize) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let mut p = 0;
    while p + KU <= kc {
        for u in 0..KU {
            let av: &[f32; MR] = ap[(p + u) * MR..][..MR].try_into().unwrap();
            let bv: &[f32; NR] = bp[(p + u) * NR..][..NR].try_into().unwrap();
            for (r, row) in acc.iter_mut().enumerate() {
                let ar = av[r];
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot += ar * bv[j];
                }
            }
        }
        p += KU;
    }
    while p < kc {
        let av: &[f32; MR] = ap[p * MR..][..MR].try_into().unwrap();
        let bv: &[f32; NR] = bp[p * NR..][..NR].try_into().unwrap();
        for (r, row) in acc.iter_mut().enumerate() {
            let ar = av[r];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot += ar * bv[j];
            }
        }
        p += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::sgemm_f32_scalar;

    fn det_matrix(rows: usize, cols: usize, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..rows * cols)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1u32 << 24) as f32 - 0.5
            })
            .collect()
    }

    #[test]
    fn derived_block_sizes_fit_the_model() {
        let sizes = CacheParams::host_default().block_sizes();
        // Slivers in half of L1d, A block in half of L2.
        assert!(4 * (MR + NR) * sizes.kc <= 48 * 1024 / 2 + 4 * (MR + NR) * KU);
        assert!(4 * sizes.mc * sizes.kc <= 2 * 1024 * 1024 / 2);
        assert_eq!(sizes.mc % MR, 0);
        assert_eq!(sizes.nc % NR, 0);
        assert_eq!(sizes.kc % KU, 0);
    }

    #[test]
    fn tiny_cache_still_yields_positive_blocks() {
        let sizes = CacheParams::new(256, 1024).block_sizes();
        assert!(sizes.mc >= MR && sizes.kc >= 1 && sizes.nc >= NR);
    }

    #[test]
    fn matches_scalar_bitwise_across_panel_boundaries() {
        // Small explicit blocks so a modest matrix crosses every loop.
        let sizes = BlockSizes {
            mc: 8,
            kc: 12,
            nc: 16,
        };
        for (m, n, k) in [
            (1, 1, 1),
            (8, 16, 12),
            (9, 17, 13),
            (7, 15, 11),
            (24, 32, 36),
            (23, 31, 37),
        ] {
            let a = det_matrix(m, k, 1);
            let b = det_matrix(k, n, 2);
            let mut fast = vec![f32::NAN; m * n];
            let mut slow = vec![f32::NAN; m * n];
            sgemm_f32_blocked_with(m, n, k, &a, k, &b, n, &mut fast, n, &sizes);
            sgemm_f32_scalar(m, n, k, &a, k, &b, n, &mut slow, n);
            assert_eq!(fast, slow, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn zero_k_writes_zeros() {
        let mut c = vec![5.0f32; 4];
        sgemm_f32_blocked(
            2,
            2,
            0,
            &[],
            1,
            &[],
            2,
            &mut c,
            2,
            &CacheParams::host_default(),
        );
        assert_eq!(c, vec![0.0; 4]);
    }

    #[test]
    fn respects_leading_dimensions_and_untouched_storage() {
        let (lda, ldb, ldc) = (7, 5, 9);
        let a = det_matrix(3, lda, 3);
        let b = det_matrix(4, ldb, 4);
        let mut fast = vec![-2.0f32; 3 * ldc];
        let mut slow = vec![-2.0f32; 3 * ldc];
        let sizes = BlockSizes {
            mc: 4,
            kc: 2,
            nc: 8,
        };
        sgemm_f32_blocked_with(3, 5, 4, &a, lda, &b, ldb, &mut fast, ldc, &sizes);
        sgemm_f32_scalar(3, 5, 4, &a, lda, &b, ldb, &mut slow, ldc);
        assert_eq!(fast, slow);
        // Storage beyond each row's n columns is untouched.
        assert_eq!(fast[5], -2.0);
        assert_eq!(fast[ldc + 5], -2.0);
    }

    #[test]
    #[should_panic(expected = "a too short")]
    fn short_a_panics() {
        let mut c = vec![0.0f32; 4];
        sgemm_f32_blocked(
            2,
            2,
            3,
            &[0.0; 5],
            3,
            &[0.0; 6],
            2,
            &mut c,
            2,
            &CacheParams::host_default(),
        );
    }
}
