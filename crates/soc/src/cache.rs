//! CPU cache hierarchy model.
//!
//! STREAM and GEMM behave differently depending on whether the working set
//! fits in L1, L2, the system-level cache (SLC), or spills to DRAM. The
//! benchmarks use this model two ways: STREAM sizes its arrays to defeat the
//! hierarchy (four times the largest level, per McCalpin's rule), and the
//! GEMM timing model uses the residency level to pick an effective-bandwidth
//! tier for small matrices.

use crate::chip::ChipSpec;
use serde::{Deserialize, Serialize};

/// One level of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CacheLevel {
    /// Human name ("L1d (P)", "L2 (P)", "SLC", …).
    pub name: &'static str,
    /// Capacity in bytes visible to one workload.
    pub capacity_bytes: u64,
    /// Load-use latency in CPU cycles (architectural estimates for the
    /// Firestorm-class cores; used for reporting, not the roofline).
    pub latency_cycles: u32,
}

/// Which level a working set resides in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Residency {
    /// Fits in per-core L1 data cache.
    L1,
    /// Fits in the cluster-shared L2.
    L2,
    /// Fits in the system-level cache.
    Slc,
    /// Spills to DRAM — the regime STREAM measures.
    Dram,
}

/// The cache hierarchy of one chip as seen by a P-cluster workload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CacheHierarchy {
    /// L1 data (single P core).
    pub l1: CacheLevel,
    /// Cluster L2 (shared across P cores).
    pub l2: CacheLevel,
    /// System-level cache (shared across the whole SoC).
    pub slc: CacheLevel,
}

impl CacheHierarchy {
    /// Build from a chip spec.
    pub fn of(spec: &ChipSpec) -> Self {
        CacheHierarchy {
            l1: CacheLevel {
                name: "L1d (P)",
                capacity_bytes: spec.l1_p_kib as u64 * 1024,
                latency_cycles: 3,
            },
            l2: CacheLevel {
                name: "L2 (P)",
                capacity_bytes: spec.l2_p_mib as u64 * 1024 * 1024,
                latency_cycles: 18,
            },
            slc: CacheLevel {
                name: "SLC",
                capacity_bytes: spec.slc_mib as u64 * 1024 * 1024,
                latency_cycles: 40,
            },
        }
    }

    /// Where a working set of `bytes` lives.
    pub fn residency(&self, bytes: u64) -> Residency {
        if bytes <= self.l1.capacity_bytes {
            Residency::L1
        } else if bytes <= self.l2.capacity_bytes {
            Residency::L2
        } else if bytes <= self.l2.capacity_bytes + self.slc.capacity_bytes {
            Residency::Slc
        } else {
            Residency::Dram
        }
    }

    /// Bandwidth amplification available when the working set is
    /// cache-resident, relative to DRAM bandwidth. Caches on Apple's big
    /// cores deliver several times DRAM bandwidth; the exact factors are
    /// architectural estimates that only shape the small-`n` end of GEMM.
    pub fn bandwidth_multiplier(&self, residency: Residency) -> f64 {
        match residency {
            Residency::L1 => 8.0,
            Residency::L2 => 4.0,
            Residency::Slc => 1.8,
            Residency::Dram => 1.0,
        }
    }

    /// Minimum STREAM array length (in f64 elements) that defeats the
    /// hierarchy: each of the three arrays must be ≥ 4× the biggest level
    /// (McCalpin's sizing rule applied to the outermost cache).
    pub fn stream_min_elements(&self) -> usize {
        let biggest = self
            .l2
            .capacity_bytes
            .max(self.slc.capacity_bytes)
            .max(self.l1.capacity_bytes);
        ((biggest * 4) / std::mem::size_of::<f64>() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipGeneration;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::of(ChipGeneration::M1.spec())
    }

    #[test]
    fn capacities_match_table1() {
        let h = hierarchy();
        assert_eq!(h.l1.capacity_bytes, 128 * 1024);
        assert_eq!(h.l2.capacity_bytes, 12 * 1024 * 1024);
        assert_eq!(h.slc.capacity_bytes, 8 * 1024 * 1024);
    }

    #[test]
    fn residency_tiers_are_ordered() {
        let h = hierarchy();
        assert_eq!(h.residency(64 * 1024), Residency::L1);
        assert_eq!(h.residency(1024 * 1024), Residency::L2);
        assert_eq!(h.residency(14 * 1024 * 1024), Residency::Slc);
        assert_eq!(h.residency(64 * 1024 * 1024), Residency::Dram);
    }

    #[test]
    fn residency_boundaries_are_inclusive() {
        let h = hierarchy();
        assert_eq!(h.residency(h.l1.capacity_bytes), Residency::L1);
        assert_eq!(h.residency(h.l1.capacity_bytes + 1), Residency::L2);
        assert_eq!(h.residency(h.l2.capacity_bytes), Residency::L2);
        assert_eq!(h.residency(h.l2.capacity_bytes + 1), Residency::Slc);
    }

    #[test]
    fn bandwidth_multiplier_decays_outward() {
        let h = hierarchy();
        let tiers = [
            Residency::L1,
            Residency::L2,
            Residency::Slc,
            Residency::Dram,
        ];
        let mults: Vec<f64> = tiers.iter().map(|t| h.bandwidth_multiplier(*t)).collect();
        for pair in mults.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert_eq!(mults[3], 1.0);
    }

    #[test]
    fn stream_sizing_defeats_every_cache() {
        for gen in ChipGeneration::ALL {
            let h = CacheHierarchy::of(gen.spec());
            let elements = h.stream_min_elements();
            let bytes = elements as u64 * 8;
            assert_eq!(h.residency(bytes), Residency::Dram, "{gen}");
            // And it is 4x the largest level.
            assert!(bytes >= 4 * h.l2.capacity_bytes);
        }
    }

    #[test]
    fn latencies_increase_outward() {
        let h = hierarchy();
        assert!(h.l1.latency_cycles < h.l2.latency_cycles);
        assert!(h.l2.latency_cycles < h.slc.latency_cycles);
    }
}
