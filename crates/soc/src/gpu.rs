//! GPU configuration model (§2.2).
//!
//! The M-series GPUs are tile-based deferred renderers used here purely as
//! compute devices: cores × 128 FP32 ALUs, one FMA per ALU per clock.
//! Native precisions are FP32/FP16/INT8 — no FP64 (paper §1, §7) — which the
//! model enforces: requesting FP64 yields an emulation cost factor instead
//! of native throughput.

use crate::chip::{ChipSpec, GPU_ALUS_PER_CORE};
use serde::{Deserialize, Serialize};

/// Numeric precision on the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuPrecision {
    /// Native single precision.
    Fp32,
    /// Native half precision (2× FP32 rate on M-series shader cores).
    Fp16,
    /// Native 8-bit integer dot paths.
    Int8,
    /// Software-emulated double precision (paper §1: "can be emulated").
    Fp64Emulated,
}

impl GpuPrecision {
    /// Throughput multiplier relative to FP32.
    pub const fn throughput_factor(&self) -> f64 {
        match self {
            GpuPrecision::Fp32 => 1.0,
            GpuPrecision::Fp16 => 2.0,
            GpuPrecision::Int8 => 4.0,
            // Double-single style emulation costs ~1/8 of FP32 throughput.
            GpuPrecision::Fp64Emulated => 0.125,
        }
    }

    /// Whether the hardware executes this precision natively.
    pub const fn is_native(&self) -> bool {
        !matches!(self, GpuPrecision::Fp64Emulated)
    }
}

/// GPU execution configuration for one chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Number of GPU cores in the tested configuration.
    pub cores: u32,
    /// FP32 ALUs per core.
    pub alus_per_core: u32,
    /// Nominal clock, GHz.
    pub clock_ghz: f64,
    /// SIMD-group width (threads per SIMD group, Apple: 32).
    pub simd_width: u32,
    /// Max threads per threadgroup (Metal: 1024).
    pub max_threads_per_threadgroup: u32,
    /// Threadgroup (tile) memory per core, KiB (Metal: 32 KiB).
    pub threadgroup_memory_kib: u32,
    /// Published theoretical FP32 TFLOPS (Table 1) — used as the roofline.
    pub tflops_published: f64,
}

impl GpuSpec {
    /// The max-core configuration of a chip (what the paper tests).
    pub fn of(spec: &ChipSpec) -> Self {
        GpuSpec {
            cores: spec.gpu_cores_max,
            alus_per_core: GPU_ALUS_PER_CORE,
            clock_ghz: spec.gpu_clock_ghz,
            simd_width: 32,
            max_threads_per_threadgroup: 1024,
            threadgroup_memory_kib: 32,
            tflops_published: spec.gpu_tflops_published,
        }
    }

    /// Theoretical FP32 GFLOPS from the ALU model at nominal clock.
    pub fn gflops_nominal(&self) -> f64 {
        self.cores as f64 * self.alus_per_core as f64 * 2.0 * self.clock_ghz
    }

    /// Roofline GFLOPS used by the timing model: the published figure
    /// (which for M4 includes the boost clock).
    pub fn gflops_roofline(&self) -> f64 {
        self.tflops_published * 1e3
    }

    /// GFLOPS at a given precision.
    pub fn gflops_at(&self, precision: GpuPrecision) -> f64 {
        self.gflops_roofline() * precision.throughput_factor()
    }

    /// Total concurrent hardware threads (ALUs) on the device.
    pub fn total_alus(&self) -> u64 {
        self.cores as u64 * self.alus_per_core as u64
    }

    /// Occupancy fraction for a dispatch of `total_threads` work-items:
    /// small dispatches cannot fill the machine.
    pub fn occupancy(&self, total_threads: u64) -> f64 {
        if total_threads == 0 {
            return 0.0;
        }
        // The device needs several waves per ALU to hide latency; about
        // 4 waves reaches full throughput.
        let full = self.total_alus() * 4;
        ((total_threads as f64) / (full as f64)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipGeneration;

    #[test]
    fn of_uses_max_core_configuration() {
        let g = GpuSpec::of(ChipGeneration::M1.spec());
        assert_eq!(g.cores, 8);
        assert_eq!(g.alus_per_core, 128);
        let g4 = GpuSpec::of(ChipGeneration::M4.spec());
        assert_eq!(g4.cores, 10);
    }

    #[test]
    fn nominal_gflops_matches_published_for_m1_to_m3() {
        for gen in [ChipGeneration::M1, ChipGeneration::M2, ChipGeneration::M3] {
            let g = GpuSpec::of(gen.spec());
            let rel = (g.gflops_nominal() - g.gflops_roofline()).abs() / g.gflops_roofline();
            assert!(rel < 0.015, "{gen}: {rel}");
        }
    }

    #[test]
    fn m4_roofline_exceeds_nominal() {
        let g = GpuSpec::of(ChipGeneration::M4.spec());
        assert!(g.gflops_roofline() > g.gflops_nominal());
    }

    #[test]
    fn precision_factors() {
        let g = GpuSpec::of(ChipGeneration::M2.spec());
        assert_eq!(g.gflops_at(GpuPrecision::Fp16), g.gflops_roofline() * 2.0);
        assert_eq!(g.gflops_at(GpuPrecision::Int8), g.gflops_roofline() * 4.0);
        assert!(g.gflops_at(GpuPrecision::Fp64Emulated) < g.gflops_roofline() / 4.0);
        assert!(!GpuPrecision::Fp64Emulated.is_native());
        assert!(GpuPrecision::Fp32.is_native());
    }

    #[test]
    fn occupancy_saturates() {
        let g = GpuSpec::of(ChipGeneration::M1.spec());
        assert_eq!(g.occupancy(0), 0.0);
        let small = g.occupancy(256);
        let large = g.occupancy(10_000_000);
        assert!(small > 0.0 && small < 0.1);
        assert_eq!(large, 1.0);
        // Monotone.
        let mut last = 0.0;
        for threads in [1u64, 64, 1024, 16384, 262144, 4_194_304] {
            let o = g.occupancy(threads);
            assert!(o >= last);
            last = o;
        }
    }

    #[test]
    fn metal_limits_are_exposed() {
        let g = GpuSpec::of(ChipGeneration::M3.spec());
        assert_eq!(g.simd_width, 32);
        assert_eq!(g.max_threads_per_threadgroup, 1024);
        assert_eq!(g.threadgroup_memory_kib, 32);
    }
}
