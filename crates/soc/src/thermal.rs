//! Thermal envelope model.
//!
//! Table 3 shows the devices under test split between passively cooled
//! MacBook Airs (M1, M3) and actively cooled Mac minis (M2, M4), and §7
//! observes "Apple laptops with M1 and M3 SoCs have relatively lower Power
//! Dissipation compared to desktops (M2, M4), which might show the impact
//! of power strategy and cooling methods". The model is a first-order
//! lumped-capacitance system: package temperature integrates power in and
//! cooling out; crossing the throttle threshold lowers the DVFS cap.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// How a device sheds heat (Table 3 "Cooling").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoolingKind {
    /// Passive (fanless MacBook Air).
    Passive,
    /// Active air (Mac mini fan).
    ActiveAir,
}

impl CoolingKind {
    /// Sustained package power the solution can remove indefinitely, W.
    pub const fn sustained_watts(&self) -> f64 {
        match self {
            CoolingKind::Passive => 14.0,
            CoolingKind::ActiveAir => 28.0,
        }
    }

    /// Short-burst package power allowed before heat soak, W.
    pub const fn burst_watts(&self) -> f64 {
        match self {
            CoolingKind::Passive => 22.0,
            CoolingKind::ActiveAir => 40.0,
        }
    }

    /// Table 3 label.
    pub const fn label(&self) -> &'static str {
        match self {
            CoolingKind::Passive => "Passive",
            CoolingKind::ActiveAir => "Air",
        }
    }
}

/// First-order thermal state of a package.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    cooling: CoolingKind,
    /// Thermal capacitance, J/°C (package + heat spreader).
    capacitance_j_per_c: f64,
    /// Ambient temperature, °C.
    ambient_c: f64,
    /// Junction temperature at which throttling begins, °C.
    throttle_c: f64,
    /// Current modeled package temperature, °C.
    temperature_c: f64,
}

impl ThermalModel {
    /// New model at ambient for a cooling solution.
    pub fn new(cooling: CoolingKind) -> Self {
        ThermalModel {
            cooling,
            capacitance_j_per_c: match cooling {
                CoolingKind::Passive => 60.0,
                CoolingKind::ActiveAir => 90.0,
            },
            ambient_c: 22.0,
            throttle_c: 95.0,
            temperature_c: 22.0,
        }
    }

    /// The cooling solution.
    pub fn cooling(&self) -> CoolingKind {
        self.cooling
    }

    /// Current modeled package temperature.
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Integrate `power_w` dissipated over `dt`.
    ///
    /// Heat removal scales with the temperature delta to ambient, pinned so
    /// that at the throttle temperature the solution removes exactly its
    /// sustained wattage.
    pub fn integrate(&mut self, power_w: f64, dt: SimDuration) {
        let secs = dt.as_secs_f64();
        if secs <= 0.0 {
            return;
        }
        let delta_t = (self.temperature_c - self.ambient_c).max(0.0);
        // Pin the heat-removal curve so that dissipating exactly the
        // sustained wattage reaches equilibrium at 85% of the ambient→
        // throttle range, i.e. comfortably below the throttle point.
        let full_delta = 0.85 * (self.throttle_c - self.ambient_c);
        let removed_w = self.cooling.sustained_watts() * (delta_t / full_delta);
        let net_w = power_w.max(0.0) - removed_w;
        self.temperature_c += net_w * secs / self.capacitance_j_per_c;
        self.temperature_c = self.temperature_c.clamp(self.ambient_c, 130.0);
    }

    /// DVFS cap implied by the current temperature: 1.0 while cool,
    /// shrinking linearly once the package is within 5 °C of throttle.
    pub fn dvfs_cap(&self) -> f64 {
        let margin = self.throttle_c - self.temperature_c;
        if margin >= 5.0 {
            1.0
        } else if margin <= 0.0 {
            // Hard throttle floor: roughly the sustained/burst power ratio.
            self.cooling.sustained_watts() / self.cooling.burst_watts()
        } else {
            let floor = self.cooling.sustained_watts() / self.cooling.burst_watts();
            floor + (1.0 - floor) * (margin / 5.0)
        }
    }

    /// Steady-state power this package can dissipate without throttling.
    pub fn sustained_watts(&self) -> f64 {
        self.cooling.sustained_watts()
    }

    /// Reset to ambient (the paper reboots and idles between runs).
    pub fn reset(&mut self) {
        self.temperature_c = self.ambient_c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_envelope_is_smaller() {
        assert!(CoolingKind::Passive.sustained_watts() < CoolingKind::ActiveAir.sustained_watts());
        assert!(CoolingKind::Passive.burst_watts() < CoolingKind::ActiveAir.burst_watts());
        assert_eq!(CoolingKind::Passive.label(), "Passive");
        assert_eq!(CoolingKind::ActiveAir.label(), "Air");
    }

    #[test]
    fn integrating_power_heats_the_package() {
        let mut t = ThermalModel::new(CoolingKind::Passive);
        let start = t.temperature_c();
        t.integrate(20.0, SimDuration::from_secs_f64(10.0));
        assert!(t.temperature_c() > start);
    }

    #[test]
    fn sustained_power_never_reaches_throttle() {
        let mut t = ThermalModel::new(CoolingKind::Passive);
        // Run at exactly the sustained wattage for a long time.
        for _ in 0..10_000 {
            t.integrate(
                CoolingKind::Passive.sustained_watts(),
                SimDuration::from_secs_f64(1.0),
            );
        }
        assert!(
            t.dvfs_cap() > 0.9,
            "cap {} at {:.1}C",
            t.dvfs_cap(),
            t.temperature_c()
        );
    }

    #[test]
    fn burst_power_eventually_throttles_passive() {
        let mut t = ThermalModel::new(CoolingKind::Passive);
        for _ in 0..10_000 {
            t.integrate(
                CoolingKind::Passive.burst_watts(),
                SimDuration::from_secs_f64(1.0),
            );
        }
        assert!(
            t.dvfs_cap() < 1.0,
            "cap {} at {:.1}C",
            t.dvfs_cap(),
            t.temperature_c()
        );
    }

    #[test]
    fn active_cooling_outlasts_passive_at_same_power() {
        let mut passive = ThermalModel::new(CoolingKind::Passive);
        let mut active = ThermalModel::new(CoolingKind::ActiveAir);
        for _ in 0..2_000 {
            passive.integrate(20.0, SimDuration::from_secs_f64(1.0));
            active.integrate(20.0, SimDuration::from_secs_f64(1.0));
        }
        assert!(active.temperature_c() < passive.temperature_c());
        assert!(active.dvfs_cap() >= passive.dvfs_cap());
    }

    #[test]
    fn reset_returns_to_ambient() {
        let mut t = ThermalModel::new(CoolingKind::ActiveAir);
        t.integrate(35.0, SimDuration::from_secs_f64(100.0));
        assert!(t.temperature_c() > 22.0);
        t.reset();
        assert_eq!(t.temperature_c(), 22.0);
        assert_eq!(t.dvfs_cap(), 1.0);
    }

    #[test]
    fn zero_duration_is_a_no_op() {
        let mut t = ThermalModel::new(CoolingKind::Passive);
        let before = t.temperature_c();
        t.integrate(100.0, SimDuration::ZERO);
        assert_eq!(t.temperature_c(), before);
    }

    #[test]
    fn temperature_is_clamped() {
        let mut t = ThermalModel::new(CoolingKind::Passive);
        t.integrate(10_000.0, SimDuration::from_secs_f64(1_000.0));
        assert!(t.temperature_c() <= 130.0);
        t.integrate(-10_000.0, SimDuration::from_secs_f64(1_000.0));
        assert!(t.temperature_c() >= 22.0);
    }
}
