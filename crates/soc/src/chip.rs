//! Chip generation database — the paper's Table 1.
//!
//! Every field of Table 1 ("Comparison of Baseline Apple Silicon M Series
//! Architecture") is represented, plus the derived quantities the benchmarks
//! need (per-engine theoretical FLOPS, AMX peak, byte-exact cache capacities).

use crate::error::SocError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four M-series generations the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ChipGeneration {
    /// Apple M1 (2020, Firestorm/Icestorm).
    M1,
    /// Apple M2 (2022, Avalanche/Blizzard).
    M2,
    /// Apple M3 (2023, Everest/Sawtooth-class cores).
    M3,
    /// Apple M4 (2024, first ARMv9.2-A M-series with SME).
    M4,
}

impl ChipGeneration {
    /// All generations in release order — the x-axis of every paper figure.
    pub const ALL: [ChipGeneration; 4] = [
        ChipGeneration::M1,
        ChipGeneration::M2,
        ChipGeneration::M3,
        ChipGeneration::M4,
    ];

    /// Marketing name ("M1" … "M4").
    pub const fn name(&self) -> &'static str {
        match self {
            ChipGeneration::M1 => "M1",
            ChipGeneration::M2 => "M2",
            ChipGeneration::M3 => "M3",
            ChipGeneration::M4 => "M4",
        }
    }

    /// Parse a marketing name (case-insensitive).
    pub fn parse(name: &str) -> Result<Self, SocError> {
        match name.trim().to_ascii_uppercase().as_str() {
            "M1" => Ok(ChipGeneration::M1),
            "M2" => Ok(ChipGeneration::M2),
            "M3" => Ok(ChipGeneration::M3),
            "M4" => Ok(ChipGeneration::M4),
            other => Err(SocError::UnknownChip(other.to_string())),
        }
    }

    /// Full Table 1 specification for this generation.
    pub fn spec(&self) -> &'static ChipSpec {
        ChipSpec::of(*self)
    }
}

impl fmt::Display for ChipGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Process technology node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessNode {
    /// TSMC N5 (5 nm) — M1.
    N5,
    /// TSMC N5P (5 nm refined, marketed "5/4") — M2.
    N5P,
    /// TSMC N3B (3 nm) — M3.
    N3B,
    /// TSMC N3E (3 nm) — M4.
    N3E,
}

impl ProcessNode {
    /// Nominal feature size in nanometres (Table 1 row "Process Technology").
    pub const fn nanometres(&self) -> u8 {
        match self {
            ProcessNode::N5 | ProcessNode::N5P => 5,
            ProcessNode::N3B | ProcessNode::N3E => 3,
        }
    }

    /// The string as printed in Table 1.
    pub const fn table_label(&self) -> &'static str {
        match self {
            ProcessNode::N5 => "5",
            ProcessNode::N5P => "5/4",
            ProcessNode::N3B => "3",
            ProcessNode::N3E => "3",
        }
    }
}

/// ARM ISA revision (Table 1 row "CPU Architecture").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ArmIsa {
    /// ARMv8.5-A — M1.
    V8_5A,
    /// ARMv8.6-A — M2, M3.
    V8_6A,
    /// ARMv9.2-A — M4 (brings standardized SME).
    V9_2A,
}

impl ArmIsa {
    /// Canonical name, e.g. `"ARMv8.5-A"`.
    pub const fn name(&self) -> &'static str {
        match self {
            ArmIsa::V8_5A => "ARMv8.5-A",
            ArmIsa::V8_6A => "ARMv8.6-A",
            ArmIsa::V9_2A => "ARMv9.2-A",
        }
    }

    /// Whether this revision includes the Scalable Matrix Extension.
    pub const fn has_sme(&self) -> bool {
        matches!(self, ArmIsa::V9_2A)
    }
}

/// Memory technology generation (Table 1 row "Memory Technology").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryTechnology {
    /// LPDDR4X — M1 (67 GB/s class).
    Lpddr4x,
    /// LPDDR5 — M2, M3 (100 GB/s class).
    Lpddr5,
    /// LPDDR5X — M4 (120 GB/s class).
    Lpddr5x,
}

impl MemoryTechnology {
    /// Canonical name.
    pub const fn name(&self) -> &'static str {
        match self {
            MemoryTechnology::Lpddr4x => "LPDDR4X",
            MemoryTechnology::Lpddr5 => "LPDDR5",
            MemoryTechnology::Lpddr5x => "LPDDR5X",
        }
    }

    /// Per-pin data rate in mega-transfers per second, base-model config.
    pub const fn transfer_rate_mts(&self) -> u32 {
        match self {
            MemoryTechnology::Lpddr4x => 4_266,
            MemoryTechnology::Lpddr5 => 6_400,
            MemoryTechnology::Lpddr5x => 7_500,
        }
    }
}

/// AMX / SME coprocessor capabilities (Table 1 row "AMX Characteristics").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmxCapabilities {
    /// FP16 tile arithmetic.
    pub fp16: bool,
    /// FP32 tile arithmetic.
    pub fp32: bool,
    /// FP64 tile arithmetic.
    pub fp64: bool,
    /// BF16 tile arithmetic (M2 onwards).
    pub bf16: bool,
    /// Standardized ARM SME interface (M4 onwards; paper §2.1 and \[17\]).
    pub sme: bool,
}

impl AmxCapabilities {
    /// The label as printed in Table 1, e.g. `"FP16,32,64/BF16"`.
    pub fn table_label(&self) -> String {
        let mut label = String::from("FP16,32,64");
        if self.bf16 {
            label.push_str("/BF16");
        }
        if self.sme {
            label.push_str(" (SME)");
        }
        label
    }
}

/// Unified-memory capacity options (Table 1 row "Max Unified Memory").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MemoryOptions {
    /// Available capacities in GiB for the base chip.
    pub capacities_gb: &'static [u32],
}

impl MemoryOptions {
    /// Largest configurable capacity.
    pub fn max_gb(&self) -> u32 {
        self.capacities_gb.iter().copied().max().unwrap_or(0)
    }
}

/// One row-set of Table 1: the complete baseline-chip specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChipSpec {
    /// Which generation this spec describes.
    pub generation: ChipGeneration,
    /// Process node.
    pub process: ProcessNode,
    /// ARM ISA revision.
    pub isa: ArmIsa,
    /// Performance ("big") core count.
    pub p_cores: u32,
    /// Efficiency ("LITTLE") core count.
    pub e_cores: u32,
    /// Performance-core max clock in GHz.
    pub p_clock_ghz: f64,
    /// Efficiency-core max clock in GHz.
    pub e_clock_ghz: f64,
    /// SIMD vector width in bits (NEON: 128 for all four generations).
    pub vector_bits: u32,
    /// L1 data cache per performance core, KiB.
    pub l1_p_kib: u32,
    /// L1 data cache per efficiency core, KiB.
    pub l1_e_kib: u32,
    /// Shared L2 for the performance cluster, MiB.
    pub l2_p_mib: u32,
    /// Shared L2 for the efficiency cluster, MiB.
    pub l2_e_mib: u32,
    /// System-level cache, MiB (not in Table 1; architectural estimate used
    /// by the cache model: 8 MiB on M1/M2, 8 MiB M3, 12 MiB M4-class).
    pub slc_mib: u32,
    /// AMX/SME capabilities.
    pub amx: AmxCapabilities,
    /// GPU core count range for the baseline chip (min binned, max full).
    pub gpu_cores_min: u32,
    /// Full (maximum) GPU core count of the baseline chip — the paper tests
    /// the max configuration (§4: "maximum number of CPU and GPU cores of
    /// the base models").
    pub gpu_cores_max: u32,
    /// GPU clock in GHz (Table 1).
    pub gpu_clock_ghz: f64,
    /// GPU FP32 theoretical TFLOPS as published in Table 1 (max config).
    ///
    /// For M1–M3 this equals `cores × 128 ALUs × 2 flops × clock` to within
    /// 1%. The published M4 figure (4.26) implies a boost clock of ~1.66 GHz
    /// rather than the nominal 1.47; we keep the published value as ground
    /// truth and expose both (see [`ChipSpec::gpu_tflops_from_alus`]).
    pub gpu_tflops_published: f64,
    /// Neural Engine core count (16 across all four generations).
    pub neural_engine_cores: u32,
    /// Memory technology.
    pub memory: MemoryTechnology,
    /// Unified-memory capacity options.
    pub memory_options: MemoryOptions,
    /// Theoretical memory bandwidth, GB/s (Table 1).
    pub memory_bandwidth_gbs: f64,
    /// Performance-core microarchitecture name.
    pub p_core_name: &'static str,
    /// Efficiency-core microarchitecture name.
    pub e_core_name: &'static str,
}

/// Scalar FP32 FLOPs per cycle of one NEON FMA pipe (4 lanes × 2 flops).
pub const NEON_F32_FLOPS_PER_PIPE_CYCLE: u32 = 8;

/// Number of 128-bit FP/NEON execution pipes on a performance core.
///
/// Apple's big cores (Firestorm onwards) issue four FP/SIMD micro-ops per
/// cycle; efficiency cores issue two.
pub const P_CORE_NEON_PIPES: u32 = 4;
/// FP/NEON pipes on an efficiency core.
pub const E_CORE_NEON_PIPES: u32 = 2;

/// FP32 MACs per AMX instruction: a 16×16 outer product of two 64-byte
/// operand registers (16 f32 each), i.e. 256 MACs = 512 FLOPs per issue.
pub const AMX_F32_FLOPS_PER_ISSUE: u32 = 512;

/// GPU shader ALUs per GPU core (Apple G13/G14/G15/G16 family: 128 FP32
/// lanes per core, each capable of one FMA per cycle).
pub const GPU_ALUS_PER_CORE: u32 = 128;

static M1: ChipSpec = ChipSpec {
    generation: ChipGeneration::M1,
    process: ProcessNode::N5,
    isa: ArmIsa::V8_5A,
    p_cores: 4,
    e_cores: 4,
    p_clock_ghz: 3.2,
    e_clock_ghz: 2.06,
    vector_bits: 128,
    l1_p_kib: 128,
    l1_e_kib: 64,
    l2_p_mib: 12,
    l2_e_mib: 4,
    slc_mib: 8,
    amx: AmxCapabilities {
        fp16: true,
        fp32: true,
        fp64: true,
        bf16: false,
        sme: false,
    },
    gpu_cores_min: 7,
    gpu_cores_max: 8,
    gpu_clock_ghz: 1.27,
    gpu_tflops_published: 2.61,
    neural_engine_cores: 16,
    memory: MemoryTechnology::Lpddr4x,
    memory_options: MemoryOptions {
        capacities_gb: &[8, 16],
    },
    memory_bandwidth_gbs: 67.0,
    p_core_name: "Firestorm",
    e_core_name: "Icestorm",
};

static M2: ChipSpec = ChipSpec {
    generation: ChipGeneration::M2,
    process: ProcessNode::N5P,
    isa: ArmIsa::V8_6A,
    p_cores: 4,
    e_cores: 4,
    p_clock_ghz: 3.5,
    e_clock_ghz: 2.42,
    vector_bits: 128,
    l1_p_kib: 128,
    l1_e_kib: 64,
    l2_p_mib: 16,
    l2_e_mib: 4,
    slc_mib: 8,
    amx: AmxCapabilities {
        fp16: true,
        fp32: true,
        fp64: true,
        bf16: true,
        sme: false,
    },
    gpu_cores_min: 8,
    gpu_cores_max: 10,
    gpu_clock_ghz: 1.39,
    gpu_tflops_published: 3.57,
    neural_engine_cores: 16,
    memory: MemoryTechnology::Lpddr5,
    memory_options: MemoryOptions {
        capacities_gb: &[8, 16, 24],
    },
    memory_bandwidth_gbs: 100.0,
    p_core_name: "Avalanche",
    e_core_name: "Blizzard",
};

static M3: ChipSpec = ChipSpec {
    generation: ChipGeneration::M3,
    process: ProcessNode::N3B,
    isa: ArmIsa::V8_6A,
    p_cores: 4,
    e_cores: 4,
    p_clock_ghz: 4.05,
    e_clock_ghz: 2.75,
    vector_bits: 128,
    l1_p_kib: 128,
    l1_e_kib: 64,
    l2_p_mib: 16,
    l2_e_mib: 4,
    slc_mib: 8,
    amx: AmxCapabilities {
        fp16: true,
        fp32: true,
        fp64: true,
        bf16: true,
        sme: false,
    },
    gpu_cores_min: 8,
    gpu_cores_max: 10,
    gpu_clock_ghz: 1.38,
    gpu_tflops_published: 3.53,
    neural_engine_cores: 16,
    memory: MemoryTechnology::Lpddr5,
    memory_options: MemoryOptions {
        capacities_gb: &[8, 16, 24],
    },
    memory_bandwidth_gbs: 100.0,
    p_core_name: "Everest",
    e_core_name: "Sawtooth",
};

static M4: ChipSpec = ChipSpec {
    generation: ChipGeneration::M4,
    process: ProcessNode::N3E,
    isa: ArmIsa::V9_2A,
    p_cores: 4,
    e_cores: 6,
    p_clock_ghz: 4.4,
    e_clock_ghz: 2.85,
    vector_bits: 128,
    l1_p_kib: 128,
    l1_e_kib: 64,
    l2_p_mib: 16,
    l2_e_mib: 4,
    slc_mib: 12,
    amx: AmxCapabilities {
        fp16: true,
        fp32: true,
        fp64: true,
        bf16: true,
        sme: true,
    },
    gpu_cores_min: 8,
    gpu_cores_max: 10,
    gpu_clock_ghz: 1.47,
    gpu_tflops_published: 4.26,
    neural_engine_cores: 16,
    memory: MemoryTechnology::Lpddr5x,
    memory_options: MemoryOptions {
        capacities_gb: &[16, 24, 32],
    },
    memory_bandwidth_gbs: 120.0,
    p_core_name: "M4 P-core",
    e_core_name: "M4 E-core",
};

impl ChipSpec {
    /// Look up the Table 1 spec of a generation.
    pub fn of(generation: ChipGeneration) -> &'static ChipSpec {
        match generation {
            ChipGeneration::M1 => &M1,
            ChipGeneration::M2 => &M2,
            ChipGeneration::M3 => &M3,
            ChipGeneration::M4 => &M4,
        }
    }

    /// All four specs in release order.
    pub fn all() -> [&'static ChipSpec; 4] {
        [&M1, &M2, &M3, &M4]
    }

    /// Total CPU core count (P + E).
    pub const fn total_cores(&self) -> u32 {
        self.p_cores + self.e_cores
    }

    /// Theoretical FP32 GFLOPS of the NEON units across the whole CPU
    /// (both clusters at max clock).
    pub fn cpu_neon_gflops(&self) -> f64 {
        let p = self.p_cores as f64
            * self.p_clock_ghz
            * (P_CORE_NEON_PIPES * NEON_F32_FLOPS_PER_PIPE_CYCLE) as f64;
        let e = self.e_cores as f64
            * self.e_clock_ghz
            * (E_CORE_NEON_PIPES * NEON_F32_FLOPS_PER_PIPE_CYCLE) as f64;
        p + e
    }

    /// Theoretical FP32 GFLOPS of the AMX/SME unit.
    ///
    /// One AMX block issues a 16×16 FP32 outer product per P-cluster clock:
    /// `512 flops × p_clock`. This matches the ~0.9–1.5 TFLOPS the paper
    /// measures through Accelerate at 55–66% efficiency, and the ~2 TFLOPS
    /// SME figure of Remke & Breuer \[17\] for M4-class hardware.
    pub fn amx_gflops(&self) -> f64 {
        AMX_F32_FLOPS_PER_ISSUE as f64 * self.p_clock_ghz
    }

    /// GPU theoretical FP32 TFLOPS derived from the ALU model
    /// (`cores × 128 × 2 × clock`), max-core configuration.
    pub fn gpu_tflops_from_alus(&self) -> f64 {
        self.gpu_cores_max as f64 * GPU_ALUS_PER_CORE as f64 * 2.0 * self.gpu_clock_ghz / 1e3
    }

    /// GPU theoretical FP32 TFLOPS for the minimum (binned) configuration.
    pub fn gpu_tflops_min_config(&self) -> f64 {
        self.gpu_cores_min as f64 * GPU_ALUS_PER_CORE as f64 * 2.0 * self.gpu_clock_ghz / 1e3
    }

    /// Effective GPU clock implied by the published TFLOPS figure. For
    /// M1–M3 this equals the nominal clock (±1%); for M4 it reveals the
    /// ~1.66 GHz boost clock behind the published 4.26 TFLOPS.
    pub fn gpu_implied_clock_ghz(&self) -> f64 {
        self.gpu_tflops_published * 1e3
            / (self.gpu_cores_max as f64 * GPU_ALUS_PER_CORE as f64 * 2.0)
    }

    /// L1 data capacity of the whole CPU in bytes.
    pub fn l1_total_bytes(&self) -> u64 {
        (self.p_cores as u64 * self.l1_p_kib as u64 + self.e_cores as u64 * self.l1_e_kib as u64)
            * 1024
    }

    /// L2 capacity of the whole CPU in bytes.
    pub fn l2_total_bytes(&self) -> u64 {
        (self.l2_p_mib as u64 + self.l2_e_mib as u64) * 1024 * 1024
    }

    /// Theoretical memory bandwidth in bytes/second.
    pub fn memory_bandwidth_bytes(&self) -> f64 {
        self.memory_bandwidth_gbs * 1e9
    }
}

impl fmt::Display for ChipSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nm, {}, {}P+{}E @ {:.2}/{:.2} GHz, {} GPU cores @ {:.2} GHz, {} {} GB/s)",
            self.generation,
            self.process.nanometres(),
            self.isa.name(),
            self.p_cores,
            self.e_cores,
            self.p_clock_ghz,
            self.e_clock_ghz,
            self.gpu_cores_max,
            self.gpu_clock_ghz,
            self.memory.name(),
            self.memory_bandwidth_gbs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_process_technology() {
        assert_eq!(ChipSpec::of(ChipGeneration::M1).process.table_label(), "5");
        assert_eq!(
            ChipSpec::of(ChipGeneration::M2).process.table_label(),
            "5/4"
        );
        assert_eq!(ChipSpec::of(ChipGeneration::M3).process.nanometres(), 3);
        assert_eq!(ChipSpec::of(ChipGeneration::M4).process.nanometres(), 3);
    }

    #[test]
    fn table1_row_cpu_architecture() {
        assert_eq!(ChipGeneration::M1.spec().isa.name(), "ARMv8.5-A");
        assert_eq!(ChipGeneration::M2.spec().isa.name(), "ARMv8.6-A");
        assert_eq!(ChipGeneration::M3.spec().isa.name(), "ARMv8.6-A");
        assert_eq!(ChipGeneration::M4.spec().isa.name(), "ARMv9.2-A");
        assert!(ChipGeneration::M4.spec().isa.has_sme());
        assert!(!ChipGeneration::M3.spec().isa.has_sme());
    }

    #[test]
    fn table1_row_core_counts() {
        for gen in [ChipGeneration::M1, ChipGeneration::M2, ChipGeneration::M3] {
            assert_eq!(gen.spec().p_cores, 4);
            assert_eq!(gen.spec().e_cores, 4);
        }
        assert_eq!(ChipGeneration::M4.spec().p_cores, 4);
        assert_eq!(ChipGeneration::M4.spec().e_cores, 6);
        assert_eq!(ChipGeneration::M4.spec().total_cores(), 10);
    }

    #[test]
    fn table1_row_clock_frequencies() {
        let clocks: Vec<(f64, f64)> = ChipSpec::all()
            .iter()
            .map(|s| (s.p_clock_ghz, s.e_clock_ghz))
            .collect();
        assert_eq!(
            clocks,
            vec![(3.2, 2.06), (3.5, 2.42), (4.05, 2.75), (4.4, 2.85)]
        );
    }

    #[test]
    fn table1_row_vector_unit_is_neon_128_everywhere() {
        for spec in ChipSpec::all() {
            assert_eq!(spec.vector_bits, 128);
        }
    }

    #[test]
    fn table1_row_caches() {
        for spec in ChipSpec::all() {
            assert_eq!(spec.l1_p_kib, 128);
            assert_eq!(spec.l1_e_kib, 64);
            assert_eq!(spec.l2_e_mib, 4);
        }
        assert_eq!(ChipGeneration::M1.spec().l2_p_mib, 12);
        assert_eq!(ChipGeneration::M2.spec().l2_p_mib, 16);
        assert_eq!(ChipGeneration::M3.spec().l2_p_mib, 16);
        assert_eq!(ChipGeneration::M4.spec().l2_p_mib, 16);
    }

    #[test]
    fn table1_row_amx_capabilities() {
        assert_eq!(ChipGeneration::M1.spec().amx.table_label(), "FP16,32,64");
        assert_eq!(
            ChipGeneration::M2.spec().amx.table_label(),
            "FP16,32,64/BF16"
        );
        assert_eq!(
            ChipGeneration::M3.spec().amx.table_label(),
            "FP16,32,64/BF16"
        );
        assert_eq!(
            ChipGeneration::M4.spec().amx.table_label(),
            "FP16,32,64/BF16 (SME)"
        );
    }

    #[test]
    fn table1_row_gpu_cores_and_clocks() {
        let gpu: Vec<(u32, u32, f64)> = ChipSpec::all()
            .iter()
            .map(|s| (s.gpu_cores_min, s.gpu_cores_max, s.gpu_clock_ghz))
            .collect();
        assert_eq!(
            gpu,
            vec![(7, 8, 1.27), (8, 10, 1.39), (8, 10, 1.38), (8, 10, 1.47)]
        );
    }

    #[test]
    fn table1_row_theoretical_tflops_range_matches_alu_model_m1_to_m3() {
        // Table 1 publishes 2.29–2.61 (M1), 2.86–3.57 (M2), 2.82–3.53 (M3);
        // the ALU model must land within 1.5% of the max-config numbers.
        for (gen, published_max) in [
            (ChipGeneration::M1, 2.61),
            (ChipGeneration::M2, 3.57),
            (ChipGeneration::M3, 3.53),
        ] {
            let derived = gen.spec().gpu_tflops_from_alus();
            let rel = (derived - published_max).abs() / published_max;
            assert!(
                rel < 0.015,
                "{gen}: derived {derived:.3} vs published {published_max}"
            );
        }
        // Min-config sanity: M1 7-core ≈ 2.28 TFLOPS.
        let m1_min = ChipGeneration::M1.spec().gpu_tflops_min_config();
        assert!(
            (m1_min - 2.29).abs() / 2.29 < 0.01,
            "M1 min config {m1_min:.3}"
        );
    }

    #[test]
    fn m4_published_tflops_implies_boost_clock() {
        let spec = ChipGeneration::M4.spec();
        let implied = spec.gpu_implied_clock_ghz();
        assert!(
            implied > spec.gpu_clock_ghz,
            "published 4.26 TFLOPS implies boost"
        );
        assert!(
            (implied - 1.664).abs() < 0.01,
            "implied clock {implied:.3} GHz"
        );
    }

    #[test]
    fn table1_row_neural_engine() {
        for spec in ChipSpec::all() {
            assert_eq!(spec.neural_engine_cores, 16);
        }
    }

    #[test]
    fn table1_row_memory() {
        assert_eq!(ChipGeneration::M1.spec().memory.name(), "LPDDR4X");
        assert_eq!(ChipGeneration::M2.spec().memory.name(), "LPDDR5");
        assert_eq!(ChipGeneration::M3.spec().memory.name(), "LPDDR5");
        assert_eq!(ChipGeneration::M4.spec().memory.name(), "LPDDR5X");
        let bw: Vec<f64> = ChipSpec::all()
            .iter()
            .map(|s| s.memory_bandwidth_gbs)
            .collect();
        assert_eq!(bw, vec![67.0, 100.0, 100.0, 120.0]);
        assert_eq!(ChipGeneration::M1.spec().memory_options.max_gb(), 16);
        assert_eq!(ChipGeneration::M2.spec().memory_options.max_gb(), 24);
        assert_eq!(ChipGeneration::M4.spec().memory_options.max_gb(), 32);
    }

    #[test]
    fn amx_peak_rises_with_generation() {
        let peaks: Vec<f64> = ChipSpec::all().iter().map(|s| s.amx_gflops()).collect();
        for window in peaks.windows(2) {
            assert!(window[1] > window[0], "AMX peak must rise: {peaks:?}");
        }
        // M1: 512 flops × 3.2 GHz = 1638.4 GFLOPS.
        assert!((peaks[0] - 1638.4).abs() < 0.1);
        // M4: 512 × 4.4 = 2252.8 GFLOPS — consistent with ~2 TFLOPS SME
        // measurements in the literature.
        assert!((peaks[3] - 2252.8).abs() < 0.1);
    }

    #[test]
    fn neon_gflops_are_far_below_amx() {
        // The paper's premise: Accelerate (AMX) dominates CPU GEMM. NEON
        // alone peaks at ~0.4–0.6 TFLOPS, well below the AMX 1.6–2.2.
        for spec in ChipSpec::all() {
            assert!(spec.cpu_neon_gflops() < spec.amx_gflops());
        }
    }

    #[test]
    fn parse_round_trips() {
        for gen in ChipGeneration::ALL {
            assert_eq!(ChipGeneration::parse(gen.name()).unwrap(), gen);
            assert_eq!(
                ChipGeneration::parse(&gen.name().to_lowercase()).unwrap(),
                gen
            );
        }
        assert!(matches!(
            ChipGeneration::parse("M99"),
            Err(SocError::UnknownChip(_))
        ));
    }

    #[test]
    fn display_mentions_key_facts() {
        let s = ChipGeneration::M4.spec().to_string();
        assert!(s.contains("M4"));
        assert!(s.contains("LPDDR5X"));
        assert!(s.contains("120"));
    }

    #[test]
    fn cache_byte_accounting() {
        let m1 = ChipGeneration::M1.spec();
        assert_eq!(m1.l1_total_bytes(), (4 * 128 + 4 * 64) * 1024);
        assert_eq!(m1.l2_total_bytes(), 16 * 1024 * 1024);
    }

    #[test]
    fn specs_serialize_round_trip() {
        // serde derive sanity — the harness stores specs in JSON reports.
        let spec = ChipGeneration::M2.spec();
        let json = serde_json_like(spec);
        assert!(json.contains("M2"));
    }

    /// Tiny stand-in (no serde_json in the dependency set): Debug format is
    /// enough to check the fields are visible to serialization layers.
    fn serde_json_like(spec: &ChipSpec) -> String {
        format!("{spec:?}")
    }
}
