//! big.LITTLE CPU complex model.
//!
//! The M-series uses performance (P) and efficiency (E) clusters (§2.1:
//! Firestorm/Icestorm on M1, Avalanche/Blizzard on M2, …). The model exposes
//! per-core and per-cluster FP32 throughput for the NEON units and answers
//! the scheduling question the STREAM thread sweep asks: "given `t` software
//! threads, which cores are busy and what aggregate compute/bandwidth share
//! do they get?" macOS schedules demanding threads onto P-cores first, then
//! spills onto E-cores — the model follows that policy.

use crate::chip::{ChipSpec, E_CORE_NEON_PIPES, NEON_F32_FLOPS_PER_PIPE_CYCLE, P_CORE_NEON_PIPES};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which kind of core a hardware thread lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreKind {
    /// High-performance ("big") core.
    Performance,
    /// High-efficiency ("LITTLE") core.
    Efficiency,
}

impl fmt::Display for CoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreKind::Performance => f.write_str("P"),
            CoreKind::Efficiency => f.write_str("E"),
        }
    }
}

/// One homogeneous cluster of cores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CoreCluster {
    /// P or E.
    pub kind: CoreKind,
    /// Number of cores in the cluster.
    pub cores: u32,
    /// Max clock, GHz.
    pub clock_ghz: f64,
    /// NEON pipes per core.
    pub neon_pipes: u32,
    /// Microarchitecture name (e.g. "Firestorm").
    pub microarch: &'static str,
}

impl CoreCluster {
    /// FP32 GFLOPS of one core at max clock.
    pub fn gflops_per_core(&self) -> f64 {
        self.clock_ghz * (self.neon_pipes * NEON_F32_FLOPS_PER_PIPE_CYCLE) as f64
    }

    /// FP32 GFLOPS of the whole cluster at max clock.
    pub fn gflops(&self) -> f64 {
        self.gflops_per_core() * self.cores as f64
    }
}

/// The full CPU complex of a chip: one P cluster + one E cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CpuComplex {
    /// Performance cluster.
    pub p_cluster: CoreCluster,
    /// Efficiency cluster.
    pub e_cluster: CoreCluster,
}

/// The set of cores assigned to a workload of `t` threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadPlacement {
    /// Threads running on performance cores.
    pub p_threads: u32,
    /// Threads running on efficiency cores.
    pub e_threads: u32,
    /// Threads that exceed the physical core count (time-shared; the STREAM
    /// sweep never goes past physical cores, mirroring the paper's
    /// `OMP_NUM_THREADS` from one to the number of physical cores).
    pub oversubscribed: u32,
}

impl ThreadPlacement {
    /// Total placed threads (excluding oversubscription).
    pub fn placed(&self) -> u32 {
        self.p_threads + self.e_threads
    }
}

impl CpuComplex {
    /// Build the complex for a chip spec.
    pub fn of(spec: &ChipSpec) -> Self {
        CpuComplex {
            p_cluster: CoreCluster {
                kind: CoreKind::Performance,
                cores: spec.p_cores,
                clock_ghz: spec.p_clock_ghz,
                neon_pipes: P_CORE_NEON_PIPES,
                microarch: spec.p_core_name,
            },
            e_cluster: CoreCluster {
                kind: CoreKind::Efficiency,
                cores: spec.e_cores,
                clock_ghz: spec.e_clock_ghz,
                neon_pipes: E_CORE_NEON_PIPES,
                microarch: spec.e_core_name,
            },
        }
    }

    /// Physical core count.
    pub fn total_cores(&self) -> u32 {
        self.p_cluster.cores + self.e_cluster.cores
    }

    /// Aggregate FP32 NEON GFLOPS at max clock.
    pub fn gflops(&self) -> f64 {
        self.p_cluster.gflops() + self.e_cluster.gflops()
    }

    /// macOS-style placement: fill P-cores first, then E-cores, then
    /// oversubscribe.
    pub fn place_threads(&self, threads: u32) -> ThreadPlacement {
        let p = threads.min(self.p_cluster.cores);
        let remaining = threads - p;
        let e = remaining.min(self.e_cluster.cores);
        ThreadPlacement {
            p_threads: p,
            e_threads: e,
            oversubscribed: remaining - e,
        }
    }

    /// Aggregate FP32 GFLOPS available to a `threads`-wide workload.
    pub fn gflops_for_threads(&self, threads: u32) -> f64 {
        let placement = self.place_threads(threads);
        placement.p_threads as f64 * self.p_cluster.gflops_per_core()
            + placement.e_threads as f64 * self.e_cluster.gflops_per_core()
    }

    /// Relative memory-demand weight of a `threads`-wide STREAM workload.
    ///
    /// A single core cannot saturate the memory controller; demand grows
    /// with placed threads, with P-cores generating roughly twice the
    /// outstanding-miss traffic of E-cores (deeper load/store queues).
    /// Returned as an abstract weight normalized so the full complex = 1.0.
    pub fn memory_demand_weight(&self, threads: u32) -> f64 {
        let placement = self.place_threads(threads);
        let full = self.p_cluster.cores as f64 * 2.0 + self.e_cluster.cores as f64;
        if full == 0.0 {
            return 0.0;
        }
        let used = placement.p_threads as f64 * 2.0 + placement.e_threads as f64;
        used / full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipGeneration;

    fn m1() -> CpuComplex {
        CpuComplex::of(ChipGeneration::M1.spec())
    }

    fn m4() -> CpuComplex {
        CpuComplex::of(ChipGeneration::M4.spec())
    }

    #[test]
    fn clusters_carry_microarch_names() {
        let c = m1();
        assert_eq!(c.p_cluster.microarch, "Firestorm");
        assert_eq!(c.e_cluster.microarch, "Icestorm");
        assert_eq!(c.p_cluster.kind, CoreKind::Performance);
    }

    #[test]
    fn per_core_gflops_model() {
        let c = m1();
        // Firestorm: 3.2 GHz × 4 pipes × 8 flops = 102.4 GFLOPS.
        assert!((c.p_cluster.gflops_per_core() - 102.4).abs() < 1e-9);
        // Icestorm: 2.06 GHz × 2 pipes × 8 flops = 32.96 GFLOPS.
        assert!((c.e_cluster.gflops_per_core() - 32.96).abs() < 1e-9);
    }

    #[test]
    fn placement_fills_p_cores_first() {
        let c = m1();
        assert_eq!(
            c.place_threads(2),
            ThreadPlacement {
                p_threads: 2,
                e_threads: 0,
                oversubscribed: 0
            }
        );
        assert_eq!(
            c.place_threads(4),
            ThreadPlacement {
                p_threads: 4,
                e_threads: 0,
                oversubscribed: 0
            }
        );
        assert_eq!(
            c.place_threads(6),
            ThreadPlacement {
                p_threads: 4,
                e_threads: 2,
                oversubscribed: 0
            }
        );
        assert_eq!(
            c.place_threads(12),
            ThreadPlacement {
                p_threads: 4,
                e_threads: 4,
                oversubscribed: 4
            }
        );
    }

    #[test]
    fn m4_has_six_e_cores() {
        let c = m4();
        assert_eq!(c.total_cores(), 10);
        let placement = c.place_threads(10);
        assert_eq!(placement.e_threads, 6);
        assert_eq!(placement.oversubscribed, 0);
    }

    #[test]
    fn gflops_grow_monotonically_with_threads() {
        let c = m4();
        let mut last = 0.0;
        for t in 1..=c.total_cores() {
            let g = c.gflops_for_threads(t);
            assert!(g > last, "thread {t}: {g} <= {last}");
            last = g;
        }
        // Saturates at the full complex.
        assert!((c.gflops_for_threads(c.total_cores()) - c.gflops()).abs() < 1e-9);
        assert!((c.gflops_for_threads(64) - c.gflops()).abs() < 1e-9);
    }

    #[test]
    fn memory_demand_weight_saturates_at_one() {
        let c = m1();
        assert_eq!(c.memory_demand_weight(0), 0.0);
        let w1 = c.memory_demand_weight(1);
        let w4 = c.memory_demand_weight(4);
        let w8 = c.memory_demand_weight(8);
        assert!(w1 > 0.0 && w1 < w4 && w4 < w8);
        assert!((w8 - 1.0).abs() < 1e-12);
        assert!((c.memory_demand_weight(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn p_threads_dominate_memory_demand() {
        let c = m1();
        // First 4 threads are P-cores: 2/12 of weight each.
        assert!((c.memory_demand_weight(1) - 2.0 / 12.0).abs() < 1e-12);
        // Threads 5..8 are E-cores: 1/12 each.
        let delta_e = c.memory_demand_weight(5) - c.memory_demand_weight(4);
        assert!((delta_e - 1.0 / 12.0).abs() < 1e-12);
    }
}
