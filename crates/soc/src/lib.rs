//! # oranges-soc — Apple Silicon M-series SoC architecture models
//!
//! This crate is the bottom substrate of the `oranges` workspace. It encodes
//! the architectural facts the paper's Table 1 and Table 3 report — chip
//! generations, CPU core clusters, caches, GPU configurations, the AMX/SME
//! coprocessor capabilities, memory technology — together with the analytic
//! machine models every higher layer consumes:
//!
//! - [`chip`]: the [`chip::ChipSpec`] database for M1–M4 (paper Table 1);
//! - [`cores`]: big.LITTLE CPU cluster model with per-core FP32 throughput;
//! - [`cache`]: L1/L2/SLC hierarchy with working-set spill estimation;
//! - [`clock`]: DVFS ladder and a utilization-driven governor;
//! - [`gpu`]: TBDR GPU configuration and theoretical FLOPS accounting;
//! - [`thermal`]: passive vs. active cooling envelopes (paper Table 3 and the
//!   §7 observation that laptops dissipate less than desktops);
//! - [`device`]: the four devices under test (paper Table 3);
//! - [`reference`](mod@reference): the HPC reference systems quoted in the paper's "HPC
//!   Perspective" boxes (GH200, A100, RTX 4090, MI250X, Xeon Max, Green500);
//! - [`time`]: virtual time — the simulation clock every substrate advances.
//!
//! Nothing in this crate performs I/O or reads the host machine: it is a
//! deterministic model of the hardware the paper measures, so that the
//! benchmarks built on top are reproducible anywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chip;
pub mod clock;
pub mod cores;
pub mod device;
pub mod error;
pub mod gpu;
pub mod reference;
pub mod thermal;
pub mod time;

pub use chip::{ChipGeneration, ChipSpec};
pub use device::DeviceModel;
pub use error::SocError;
pub use time::{SimDuration, SimInstant, VirtualClock};

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::cache::CacheHierarchy;
    pub use crate::chip::{ChipGeneration, ChipSpec};
    pub use crate::clock::{DvfsLadder, Governor};
    pub use crate::cores::{CoreCluster, CoreKind, CpuComplex};
    pub use crate::device::{DeviceModel, FormFactor};
    pub use crate::error::SocError;
    pub use crate::gpu::GpuSpec;
    pub use crate::reference::ReferenceSystem;
    pub use crate::thermal::{CoolingKind, ThermalModel};
    pub use crate::time::{SimDuration, SimInstant, VirtualClock};
}
