//! Error type shared by the SoC models.

use std::fmt;

/// Errors produced by SoC model lookups and configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocError {
    /// A named chip generation does not exist in the database.
    UnknownChip(String),
    /// A named device model does not exist in the database.
    UnknownDevice(String),
    /// A named reference system does not exist in the database.
    UnknownReference(String),
    /// A model was configured with an invalid parameter.
    InvalidParameter {
        /// Which parameter was rejected.
        parameter: &'static str,
        /// Human-readable description of why.
        reason: String,
    },
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::UnknownChip(name) => write!(f, "unknown chip generation: {name}"),
            SocError::UnknownDevice(name) => write!(f, "unknown device model: {name}"),
            SocError::UnknownReference(name) => write!(f, "unknown reference system: {name}"),
            SocError::InvalidParameter { parameter, reason } => {
                write!(f, "invalid parameter `{parameter}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            SocError::UnknownChip("M9".into()).to_string(),
            "unknown chip generation: M9"
        );
        assert_eq!(
            SocError::UnknownDevice("iMac".into()).to_string(),
            "unknown device model: iMac"
        );
        assert_eq!(
            SocError::UnknownReference("Cray-1".into()).to_string(),
            "unknown reference system: Cray-1"
        );
        let err = SocError::InvalidParameter {
            parameter: "threads",
            reason: "must be non-zero".into(),
        };
        assert_eq!(
            err.to_string(),
            "invalid parameter `threads`: must be non-zero"
        );
    }

    #[test]
    fn errors_are_clonable_and_comparable() {
        let a = SocError::UnknownChip("M5".into());
        let b = a.clone();
        assert_eq!(a, b);
    }
}
