//! Devices under test — the paper's Table 3.
//!
//! The chip alone does not determine measured behaviour: the M1 and M3 are
//! tested in passively cooled MacBook Airs while the M2 and M4 sit in
//! actively cooled Mac minis, which §7 links to the observed power
//! differences. A [`DeviceModel`] is a chip + enclosure + memory config +
//! OS version.

use crate::chip::ChipGeneration;
use crate::error::SocError;
use crate::thermal::{CoolingKind, ThermalModel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Enclosure form factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FormFactor {
    /// Fanless laptop.
    MacBookAir,
    /// Small desktop.
    MacMini,
}

impl FormFactor {
    /// Marketing name.
    pub const fn name(&self) -> &'static str {
        match self {
            FormFactor::MacBookAir => "MacBook Air",
            FormFactor::MacMini => "Mac mini",
        }
    }
}

/// One device under test (a Table 3 column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DeviceModel {
    /// Which chip the device carries.
    pub chip: ChipGeneration,
    /// Enclosure.
    pub form_factor: FormFactor,
    /// Release year (Table 3 "Release").
    pub release_year: u16,
    /// Installed unified memory, GiB (Table 3 "Memory").
    pub memory_gb: u32,
    /// Cooling solution (Table 3 "Cooling").
    pub cooling: CoolingKind,
    /// macOS version at test time (Table 3 "MacOS").
    pub macos_version: &'static str,
}

static DEVICES: [DeviceModel; 4] = [
    DeviceModel {
        chip: ChipGeneration::M1,
        form_factor: FormFactor::MacBookAir,
        release_year: 2020,
        memory_gb: 8,
        cooling: CoolingKind::Passive,
        macos_version: "14.7.2",
    },
    DeviceModel {
        chip: ChipGeneration::M2,
        form_factor: FormFactor::MacMini,
        release_year: 2023,
        memory_gb: 16,
        cooling: CoolingKind::ActiveAir,
        macos_version: "15.1.1",
    },
    DeviceModel {
        chip: ChipGeneration::M3,
        form_factor: FormFactor::MacBookAir,
        release_year: 2024,
        memory_gb: 16,
        cooling: CoolingKind::Passive,
        macos_version: "15.2",
    },
    DeviceModel {
        chip: ChipGeneration::M4,
        form_factor: FormFactor::MacMini,
        release_year: 2024,
        memory_gb: 16,
        cooling: CoolingKind::ActiveAir,
        macos_version: "15.1.1",
    },
];

impl DeviceModel {
    /// The Table 3 device for a chip generation.
    pub fn of(chip: ChipGeneration) -> &'static DeviceModel {
        match chip {
            ChipGeneration::M1 => &DEVICES[0],
            ChipGeneration::M2 => &DEVICES[1],
            ChipGeneration::M3 => &DEVICES[2],
            ChipGeneration::M4 => &DEVICES[3],
        }
    }

    /// All four devices in chip order.
    pub fn all() -> &'static [DeviceModel; 4] {
        &DEVICES
    }

    /// Look up by form-factor name + chip name, e.g. `("Mac mini", "M4")`.
    pub fn lookup(form: &str, chip: &str) -> Result<&'static DeviceModel, SocError> {
        let chip = ChipGeneration::parse(chip)?;
        let device = DeviceModel::of(chip);
        if device.form_factor.name().eq_ignore_ascii_case(form.trim()) {
            Ok(device)
        } else {
            Err(SocError::UnknownDevice(format!("{form} ({chip})")))
        }
    }

    /// Fresh thermal model for this enclosure.
    pub fn thermal_model(&self) -> ThermalModel {
        ThermalModel::new(self.cooling)
    }

    /// Whether this is one of the paper's laptop (passively cooled) devices.
    pub fn is_laptop(&self) -> bool {
        matches!(self.form_factor, FormFactor::MacBookAir)
    }
}

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} GB, {}, macOS {})",
            self.form_factor.name(),
            self.chip,
            self.memory_gb,
            self.cooling.label(),
            self.macos_version,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_devices() {
        let m1 = DeviceModel::of(ChipGeneration::M1);
        assert_eq!(m1.form_factor, FormFactor::MacBookAir);
        assert_eq!(m1.release_year, 2020);
        assert_eq!(m1.memory_gb, 8);
        assert_eq!(m1.cooling, CoolingKind::Passive);
        assert_eq!(m1.macos_version, "14.7.2");

        let m2 = DeviceModel::of(ChipGeneration::M2);
        assert_eq!(m2.form_factor, FormFactor::MacMini);
        assert_eq!(m2.release_year, 2023);
        assert_eq!(m2.cooling, CoolingKind::ActiveAir);

        let m3 = DeviceModel::of(ChipGeneration::M3);
        assert_eq!(m3.form_factor, FormFactor::MacBookAir);
        assert_eq!(m3.release_year, 2024);
        assert_eq!(m3.macos_version, "15.2");

        let m4 = DeviceModel::of(ChipGeneration::M4);
        assert_eq!(m4.form_factor, FormFactor::MacMini);
        assert_eq!(m4.release_year, 2024);
        assert_eq!(m4.macos_version, "15.1.1");
    }

    #[test]
    fn laptops_are_m1_and_m3() {
        let laptops: Vec<ChipGeneration> = DeviceModel::all()
            .iter()
            .filter(|d| d.is_laptop())
            .map(|d| d.chip)
            .collect();
        assert_eq!(laptops, vec![ChipGeneration::M1, ChipGeneration::M3]);
    }

    #[test]
    fn lookup_matches_form_and_chip() {
        let d = DeviceModel::lookup("Mac mini", "M4").unwrap();
        assert_eq!(d.chip, ChipGeneration::M4);
        assert!(DeviceModel::lookup("MacBook Air", "M4").is_err());
        assert!(DeviceModel::lookup("Mac mini", "M17").is_err());
        // Case-insensitive on both parts.
        assert!(DeviceModel::lookup("mac MINI", "m2").is_ok());
    }

    #[test]
    fn thermal_model_matches_cooling() {
        let m1 = DeviceModel::of(ChipGeneration::M1).thermal_model();
        let m2 = DeviceModel::of(ChipGeneration::M2).thermal_model();
        assert!(m1.sustained_watts() < m2.sustained_watts());
    }

    #[test]
    fn display_reads_like_table3() {
        let s = DeviceModel::of(ChipGeneration::M2).to_string();
        assert!(s.contains("Mac mini"));
        assert!(s.contains("M2"));
        assert!(s.contains("16 GB"));
        assert!(s.contains("15.1.1"));
    }
}
