//! DVFS (dynamic voltage and frequency scaling) model.
//!
//! Apple's SoCs run each cluster on a ladder of P-states. The benchmarks in
//! the paper pin the machine at maximum performance (mains power,
//! `caffeinate`, idle system — §4), so the governor mostly sits at the top
//! state; the ladder matters for the power model (voltage scales roughly
//! linearly with frequency on the upper states, so power ~ f·V² ~ f³ there)
//! and for thermally-capped sustained operation on passively cooled devices.

use serde::{Deserialize, Serialize};

/// A ladder of frequency states, expressed as fractions of max clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsLadder {
    /// Ascending fractions of the maximum clock, ending at 1.0.
    fractions: Vec<f64>,
}

impl DvfsLadder {
    /// The ladder used by M-series performance clusters (architectural
    /// approximation: idle step plus evenly spread performance states).
    pub fn m_series() -> Self {
        DvfsLadder {
            fractions: vec![0.30, 0.45, 0.60, 0.72, 0.84, 0.92, 1.00],
        }
    }

    /// Build a custom ladder; fractions are sorted, deduplicated, clamped to
    /// (0, 1], and 1.0 is appended if missing.
    pub fn new(mut fractions: Vec<f64>) -> Self {
        fractions.retain(|f| f.is_finite() && *f > 0.0 && *f <= 1.0);
        fractions.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        fractions.dedup();
        if fractions.last().copied() != Some(1.0) {
            fractions.push(1.0);
        }
        DvfsLadder { fractions }
    }

    /// All states, ascending.
    pub fn states(&self) -> &[f64] {
        &self.fractions
    }

    /// The lowest state at or above `fraction` (requests round up — the
    /// governor never undershoots a utilization demand).
    pub fn quantize_up(&self, fraction: f64) -> f64 {
        let f = fraction.clamp(0.0, 1.0);
        for s in &self.fractions {
            if *s + 1e-12 >= f {
                return *s;
            }
        }
        1.0
    }

    /// Relative dynamic power at a state, normalized to 1.0 at max clock.
    ///
    /// On the upper ladder voltage tracks frequency, giving the classic
    /// cubic `P ∝ f³` shape; we add a floor so low states still burn
    /// leakage-ish power.
    pub fn relative_power(&self, fraction: f64) -> f64 {
        let f = fraction.clamp(0.0, 1.0);
        0.06 + 0.94 * f.powi(3)
    }
}

/// Utilization-driven governor: picks a DVFS state for a demand level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Governor {
    ladder: DvfsLadder,
    /// Highest state the thermal envelope currently allows (1.0 = uncapped).
    thermal_cap: f64,
}

impl Governor {
    /// Governor on the given ladder, uncapped.
    pub fn new(ladder: DvfsLadder) -> Self {
        Governor {
            ladder,
            thermal_cap: 1.0,
        }
    }

    /// Apply a thermal cap (fraction of max clock allowed).
    pub fn set_thermal_cap(&mut self, cap: f64) {
        self.thermal_cap = cap.clamp(0.0, 1.0);
    }

    /// Current thermal cap.
    pub fn thermal_cap(&self) -> f64 {
        self.thermal_cap
    }

    /// The clock fraction granted for a utilization demand in [0, 1].
    pub fn grant(&self, demand: f64) -> f64 {
        self.ladder.quantize_up(demand).min(self.thermal_cap.max(
            // Never drop below the lowest ladder state.
            self.ladder.states().first().copied().unwrap_or(1.0),
        ))
    }

    /// Relative power at the granted state.
    pub fn power_at(&self, demand: f64) -> f64 {
        self.ladder.relative_power(self.grant(demand))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_ends_at_max() {
        let ladder = DvfsLadder::m_series();
        assert_eq!(ladder.states().last().copied(), Some(1.0));
        for pair in ladder.states().windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn custom_ladder_sanitizes_input() {
        let ladder = DvfsLadder::new(vec![0.5, -1.0, 0.5, 2.0, f64::NAN, 0.25]);
        assert_eq!(ladder.states(), &[0.25, 0.5, 1.0]);
    }

    #[test]
    fn quantize_rounds_up() {
        let ladder = DvfsLadder::new(vec![0.25, 0.5, 0.75]);
        assert_eq!(ladder.quantize_up(0.10), 0.25);
        assert_eq!(ladder.quantize_up(0.25), 0.25);
        assert_eq!(ladder.quantize_up(0.26), 0.5);
        assert_eq!(ladder.quantize_up(0.9), 1.0);
    }

    #[test]
    fn relative_power_is_cubic_with_floor() {
        let ladder = DvfsLadder::m_series();
        assert!((ladder.relative_power(1.0) - 1.0).abs() < 1e-12);
        let half = ladder.relative_power(0.5);
        assert!(half > 0.06 && half < 0.25, "{half}");
        assert!(ladder.relative_power(0.0) >= 0.06);
    }

    #[test]
    fn governor_honours_thermal_cap() {
        let mut gov = Governor::new(DvfsLadder::m_series());
        assert_eq!(gov.grant(1.0), 1.0);
        gov.set_thermal_cap(0.84);
        assert!(gov.grant(1.0) <= 0.84);
        // Low demands are unaffected by the cap.
        assert_eq!(gov.grant(0.1), 0.30);
    }

    #[test]
    fn governor_power_tracks_grant() {
        let gov = Governor::new(DvfsLadder::m_series());
        assert!(gov.power_at(1.0) > gov.power_at(0.3));
    }
}
