//! HPC reference systems quoted by the paper's "HPC Perspective" boxes.
//!
//! The paper grounds every result against the state of the art: the Nvidia
//! GH200 superchip (tested by the authors), and literature points for the
//! AMD MI250X, Intel Xeon Max 9468, Nvidia A100, Nvidia RTX 4090, and the
//! Green500 #1 machine. These are *reported* numbers, not simulations — the
//! reference module stores them with their provenance so comparison tables
//! can cite them exactly as the paper does.

use crate::error::SocError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Broad class of a reference system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReferenceKind {
    /// CPU (or CPU side of a superchip).
    Cpu,
    /// Discrete or superchip GPU.
    Gpu,
    /// Whole supercomputer.
    System,
}

/// A memory-bandwidth data point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthPoint {
    /// Theoretical peak, GB/s.
    pub theoretical_gbs: f64,
    /// Measured (STREAM-class), GB/s.
    pub measured_gbs: f64,
}

impl BandwidthPoint {
    /// Measured / theoretical.
    pub fn efficiency(&self) -> f64 {
        if self.theoretical_gbs <= 0.0 {
            0.0
        } else {
            self.measured_gbs / self.theoretical_gbs
        }
    }
}

/// A compute data point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ComputePoint {
    /// Theoretical peak, TFLOPS.
    pub theoretical_tflops: f64,
    /// Measured, TFLOPS.
    pub measured_tflops: f64,
    /// What was measured (precision / engine), e.g. `"FP32 CUDA cores"`.
    pub regime: &'static str,
}

impl ComputePoint {
    /// Measured / theoretical.
    pub fn efficiency(&self) -> f64 {
        if self.theoretical_tflops <= 0.0 {
            0.0
        } else {
            self.measured_tflops / self.theoretical_tflops
        }
    }
}

/// One reference system with the data points the paper quotes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReferenceSystem {
    /// Name as used in the paper.
    pub name: &'static str,
    /// CPU / GPU / full system.
    pub kind: ReferenceKind,
    /// Bandwidth points (may be several, e.g. GH200 LPDDR5X and HBM3).
    pub bandwidth: Vec<BandwidthPoint>,
    /// Compute points (may be several, e.g. CUDA cores and tensor cores).
    pub compute: Vec<ComputePoint>,
    /// Efficiency if the paper quotes one, GFLOPS/W.
    pub gflops_per_watt: Option<f64>,
    /// Observed power if quoted, W.
    pub power_watts: Option<f64>,
    /// Where the number comes from (paper section or citation).
    pub provenance: &'static str,
}

impl fmt::Display for ReferenceSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:?})", self.name, self.kind)
    }
}

/// The database of reference systems used in the paper.
pub fn all() -> Vec<ReferenceSystem> {
    vec![
        ReferenceSystem {
            name: "Nvidia GH200 (Grace CPU)",
            kind: ReferenceKind::Cpu,
            // §5.1: "the GH200 attained 310 GB/s (81%) when using CPU memory".
            bandwidth: vec![BandwidthPoint {
                theoretical_gbs: 382.7,
                measured_gbs: 310.0,
            }],
            compute: vec![],
            gflops_per_watt: None,
            power_watts: None,
            provenance: "§5.1 HPC Perspective (authors' measurement, Nvidia HPC benchmark 24.9)",
        },
        ReferenceSystem {
            name: "Nvidia GH200 (Hopper GPU)",
            kind: ReferenceKind::Gpu,
            // §5.1: "3700 GB/s (94%) using HBM3".
            bandwidth: vec![BandwidthPoint {
                theoretical_gbs: 3936.0,
                measured_gbs: 3700.0,
            }],
            compute: vec![
                // §5.2: cublasSgemm 41 TFLOPS = 61% of peak on CUDA cores.
                ComputePoint {
                    theoretical_tflops: 67.0,
                    measured_tflops: 41.0,
                    regime: "FP32 CUDA cores (cublasSgemm)",
                },
                // §5.2: 338 TFLOPS = 69% of peak on TF32 tensor cores.
                ComputePoint {
                    theoretical_tflops: 494.7,
                    measured_tflops: 338.0,
                    regime: "TF32 tensor cores (cublasSgemm, TF32 path)",
                },
            ],
            gflops_per_watt: None,
            power_watts: None,
            provenance: "§5.2 HPC Perspective (authors' measurement, cuBLAS 12.4.2)",
        },
        ReferenceSystem {
            name: "AMD MI250X (CPU-attached link)",
            kind: ReferenceKind::Gpu,
            // §5.1: "observed to reach 85% of its theoretical peak at only
            // 28 GB/s" — a host-link STREAM figure from [21].
            bandwidth: vec![BandwidthPoint {
                theoretical_gbs: 32.9,
                measured_gbs: 28.0,
            }],
            compute: vec![],
            gflops_per_watt: None,
            power_watts: None,
            provenance: "§5.1 HPC Perspective, citing Schieffer et al. [21]",
        },
        ReferenceSystem {
            name: "Intel Xeon CPU Max 9468",
            kind: ReferenceKind::Cpu,
            bandwidth: vec![],
            // §5.2: "achieves 5.7 TFLOPS with double-precision matrix
            // multiplication" (Sapphire Rapids + HBM, [24]).
            compute: vec![ComputePoint {
                theoretical_tflops: 6.8,
                measured_tflops: 5.7,
                regime: "FP64 GEMM (AMX/AVX-512)",
            }],
            gflops_per_watt: None,
            power_watts: None,
            provenance: "§5.2 HPC Perspective, citing Siegmann et al. [24]",
        },
        ReferenceSystem {
            name: "Nvidia A100",
            kind: ReferenceKind::Gpu,
            bandwidth: vec![],
            compute: vec![],
            // §5.3: "an Nvidia A100 achieve 0.7 TFLOPS per Watt using mma".
            gflops_per_watt: Some(700.0),
            power_watts: None,
            provenance: "§5.3 HPC Perspective, citing Luo et al. [13]",
        },
        ReferenceSystem {
            name: "Nvidia RTX 4090",
            kind: ReferenceKind::Gpu,
            bandwidth: vec![],
            compute: vec![],
            // §7: "consume 174 W while reaching 0.51 TFLOPS/W tensor core
            // performance (albeit in MMA, not SGEMM)".
            gflops_per_watt: Some(510.0),
            power_watts: Some(174.0),
            provenance: "§7 Discussion, citing Luo et al. [13]",
        },
        ReferenceSystem {
            name: "Green500 #1 (Nov 2024)",
            kind: ReferenceKind::System,
            bandwidth: vec![],
            compute: vec![],
            // §5.3: "the most power-efficient supercomputer on Green500 runs
            // at 72 GFLOPS/Watt" (HPL, FP64).
            gflops_per_watt: Some(72.0),
            power_watts: None,
            provenance: "§5.3 HPC Perspective, citing Green500 Nov 2024 [27]",
        },
    ]
}

/// Look up a reference system by (sub)name, case-insensitive.
pub fn lookup(name: &str) -> Result<ReferenceSystem, SocError> {
    let needle = name.trim().to_ascii_lowercase();
    all()
        .into_iter()
        .find(|r| r.name.to_ascii_lowercase().contains(&needle))
        .ok_or_else(|| SocError::UnknownReference(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gh200_grace_stream_matches_paper() {
        let grace = lookup("Grace CPU").unwrap();
        let bw = grace.bandwidth[0];
        assert_eq!(bw.measured_gbs, 310.0);
        // Paper: 81% efficiency.
        assert!((bw.efficiency() - 0.81).abs() < 0.01, "{}", bw.efficiency());
    }

    #[test]
    fn gh200_hopper_numbers_match_paper() {
        let hopper = lookup("Hopper GPU").unwrap();
        let hbm = hopper.bandwidth[0];
        assert_eq!(hbm.measured_gbs, 3700.0);
        assert!((hbm.efficiency() - 0.94).abs() < 0.01);
        let cuda = &hopper.compute[0];
        assert_eq!(cuda.measured_tflops, 41.0);
        assert!((cuda.efficiency() - 0.61).abs() < 0.01);
        let tf32 = &hopper.compute[1];
        assert_eq!(tf32.measured_tflops, 338.0);
        assert!((tf32.efficiency() - 0.69).abs() < 0.015);
    }

    #[test]
    fn mi250x_efficiency_point() {
        let mi = lookup("MI250X").unwrap();
        let bw = mi.bandwidth[0];
        assert_eq!(bw.measured_gbs, 28.0);
        assert!((bw.efficiency() - 0.85).abs() < 0.01);
    }

    #[test]
    fn xeon_max_fp64_gemm() {
        let xeon = lookup("Xeon").unwrap();
        assert_eq!(xeon.compute[0].measured_tflops, 5.7);
        assert!(xeon.compute[0].regime.contains("FP64"));
    }

    #[test]
    fn efficiency_references() {
        assert_eq!(lookup("A100").unwrap().gflops_per_watt, Some(700.0));
        assert_eq!(lookup("RTX 4090").unwrap().gflops_per_watt, Some(510.0));
        assert_eq!(lookup("RTX 4090").unwrap().power_watts, Some(174.0));
        assert_eq!(lookup("Green500").unwrap().gflops_per_watt, Some(72.0));
    }

    #[test]
    fn lookup_is_case_insensitive_and_partial() {
        assert!(lookup("green500").is_ok());
        assert!(lookup("HOPPER").is_ok());
        assert!(matches!(lookup("Cray"), Err(SocError::UnknownReference(_))));
    }

    #[test]
    fn all_entries_have_provenance() {
        for r in all() {
            assert!(!r.provenance.is_empty(), "{}", r.name);
            assert!(
                !r.bandwidth.is_empty() || !r.compute.is_empty() || r.gflops_per_watt.is_some(),
                "{} carries no data",
                r.name
            );
        }
    }

    #[test]
    fn zero_theoretical_yields_zero_efficiency() {
        let bw = BandwidthPoint {
            theoretical_gbs: 0.0,
            measured_gbs: 10.0,
        };
        assert_eq!(bw.efficiency(), 0.0);
        let c = ComputePoint {
            theoretical_tflops: 0.0,
            measured_tflops: 1.0,
            regime: "x",
        };
        assert_eq!(c.efficiency(), 0.0);
    }
}
