//! Virtual time for the SoC simulation.
//!
//! The paper measures kernel time with
//! `std::chrono::high_resolution_clock::now()` deltas at nanosecond
//! granularity (§4). The simulation mirrors that: every modeled engine
//! (CPU cluster, AMX, GPU, memory controller) advances a [`VirtualClock`]
//! by a [`SimDuration`], and all reported FLOPS/bandwidth/power numbers are
//! derived from virtual-time deltas, never from host wall-clock. This keeps
//! every experiment bit-reproducible regardless of the machine running it.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time with nanosecond resolution.
///
/// Stored as integer nanoseconds (like the paper's reported time deltas);
/// `u64` nanoseconds cover ~584 years, far beyond any benchmark run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration {
    nanos: u64,
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration { nanos: 0 };

    /// Construct from integer nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration { nanos }
    }

    /// Construct from integer microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration {
            nanos: micros * 1_000,
        }
    }

    /// Construct from integer milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration {
            nanos: millis * 1_000_000,
        }
    }

    /// Construct from fractional seconds, saturating at the `u64` range and
    /// clamping negatives/NaN to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration { nanos: u64::MAX }
        } else {
            SimDuration {
                nanos: nanos.round() as u64,
            }
        }
    }

    /// Integer nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.nanos
    }

    /// Fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(&self) -> f64 {
        self.nanos as f64 / 1e6
    }

    /// Fractional microseconds.
    pub fn as_micros_f64(&self) -> f64 {
        self.nanos as f64 / 1e3
    }

    /// True if this is the zero duration.
    pub const fn is_zero(&self) -> bool {
        self.nanos == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_sub(rhs.nanos),
        }
    }

    /// Checked addition.
    pub const fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        match self.nanos.checked_add(rhs.nanos) {
            Some(nanos) => Some(SimDuration { nanos }),
            None => None,
        }
    }

    /// The larger of two durations.
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        if self.nanos >= rhs.nanos {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two durations.
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        if self.nanos <= rhs.nanos {
            self
        } else {
            rhs
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_add(rhs.nanos),
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.nanos = self.nanos.saturating_add(rhs.nanos);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_sub(rhs.nanos),
        }
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.nanos = self.nanos.saturating_sub(rhs.nanos);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_mul(rhs),
        }
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration {
            nanos: self.nanos / rhs.max(1),
        }
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.nanos;
        if ns < 1_000 {
            write!(f, "{ns} ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3} us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3} ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3} s", ns as f64 / 1e9)
        }
    }
}

/// A point on the virtual timeline (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant {
    nanos: u64,
}

impl SimInstant {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimInstant = SimInstant { nanos: 0 };

    /// Construct from nanoseconds since epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimInstant { nanos }
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(&self) -> u64 {
        self.nanos
    }

    /// Duration since an earlier instant (saturating at zero if `earlier` is
    /// actually later).
    pub const fn duration_since(&self, earlier: SimInstant) -> SimDuration {
        SimDuration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant {
            nanos: self.nanos.saturating_add(rhs.as_nanos()),
        }
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration::from_nanos(self.nanos))
    }
}

/// A monotonic virtual clock.
///
/// Each `Platform` owns one clock; engines advance it as they retire work.
/// The clock is intentionally single-threaded (`Cell`): simulated time is a
/// global ordering decision, and the simulation advances it from the
/// orchestrating thread even when the *functional* work underneath ran on a
/// crossbeam pool.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: Cell<u64>,
}

impl VirtualClock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        VirtualClock { now: Cell::new(0) }
    }

    /// Current instant.
    pub fn now(&self) -> SimInstant {
        SimInstant::from_nanos(self.now.get())
    }

    /// Advance by `d`, returning the new instant.
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        let next = self.now.get().saturating_add(d.as_nanos());
        self.now.set(next);
        SimInstant::from_nanos(next)
    }

    /// Reset to the epoch. Used between experiment repetitions.
    pub fn reset(&self) {
        self.now.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn from_secs_f64_clamps_pathological_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::INFINITY).as_nanos(),
            u64::MAX
        );
    }

    #[test]
    fn arithmetic_saturates() {
        let max = SimDuration::from_nanos(u64::MAX);
        assert_eq!((max + SimDuration::from_nanos(1)).as_nanos(), u64::MAX);
        assert_eq!(
            SimDuration::ZERO - SimDuration::from_nanos(5),
            SimDuration::ZERO
        );
        assert!(max.checked_add(SimDuration::from_nanos(1)).is_none());
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12 ns");
        assert_eq!(SimDuration::from_nanos(12_345).to_string(), "12.345 us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000 ms");
        assert_eq!(SimDuration::from_secs_f64(2.5).to_string(), "2.500 s");
    }

    #[test]
    fn instants_subtract_saturating() {
        let a = SimInstant::from_nanos(100);
        let b = SimInstant::from_nanos(250);
        assert_eq!((b - a).as_nanos(), 150);
        assert_eq!((a - b).as_nanos(), 0);
        assert_eq!((a + SimDuration::from_nanos(50)).as_nanos(), 150);
    }

    #[test]
    fn clock_is_monotonic_and_resettable() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), SimInstant::EPOCH);
        let t1 = clock.advance(SimDuration::from_nanos(10));
        let t2 = clock.advance(SimDuration::from_nanos(5));
        assert!(t2 > t1);
        assert_eq!(t2.as_nanos(), 15);
        clock.reset();
        assert_eq!(clock.now(), SimInstant::EPOCH);
    }

    #[test]
    fn durations_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn min_max_behave() {
        let a = SimDuration::from_nanos(10);
        let b = SimDuration::from_nanos(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
