//! Property-based tests for the SoC models.

use oranges_soc::cache::CacheHierarchy;
use oranges_soc::chip::{ChipGeneration, ChipSpec};
use oranges_soc::clock::{DvfsLadder, Governor};
use oranges_soc::cores::CpuComplex;
use oranges_soc::thermal::{CoolingKind, ThermalModel};
use oranges_soc::time::{SimDuration, SimInstant, VirtualClock};
use proptest::prelude::*;

fn any_generation() -> impl Strategy<Value = ChipGeneration> {
    prop_oneof![
        Just(ChipGeneration::M1),
        Just(ChipGeneration::M2),
        Just(ChipGeneration::M3),
        Just(ChipGeneration::M4),
    ]
}

proptest! {
    #[test]
    fn duration_roundtrip_secs(ns in 0u64..10_000_000_000_000) {
        let d = SimDuration::from_nanos(ns);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        // f64 has 53 bits of mantissa; round-trip is exact below 2^53 ns
        // and within 1 part in 2^52 above.
        let err = (back.as_nanos() as i128 - ns as i128).unsigned_abs();
        prop_assert!(err <= 1 + ns as u128 / (1 << 52));
    }

    #[test]
    fn duration_add_commutes(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let x = SimDuration::from_nanos(a);
        let y = SimDuration::from_nanos(b);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x + y).as_nanos(), a + b);
    }

    #[test]
    fn instant_ordering_consistent(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let ia = SimInstant::from_nanos(a);
        let ib = SimInstant::from_nanos(b);
        if a <= b {
            prop_assert_eq!((ib - ia).as_nanos(), b - a);
            // Saturating in both directions: the reverse difference
            // clamps to zero whether or not a == b.
            prop_assert_eq!((ia - ib).as_nanos().min(1), 0);
        }
    }

    #[test]
    fn clock_advances_sum(steps in proptest::collection::vec(0u64..1_000_000, 1..50)) {
        let clock = VirtualClock::new();
        let mut total = 0u64;
        for s in &steps {
            clock.advance(SimDuration::from_nanos(*s));
            total += s;
        }
        prop_assert_eq!(clock.now().as_nanos(), total);
    }

    #[test]
    fn thread_placement_conserves_threads(gen in any_generation(), threads in 0u32..64) {
        let complex = CpuComplex::of(gen.spec());
        let p = complex.place_threads(threads);
        prop_assert_eq!(p.p_threads + p.e_threads + p.oversubscribed, threads);
        prop_assert!(p.p_threads <= complex.p_cluster.cores);
        prop_assert!(p.e_threads <= complex.e_cluster.cores);
        // Never oversubscribe before both clusters are full.
        if p.oversubscribed > 0 {
            prop_assert_eq!(p.p_threads, complex.p_cluster.cores);
            prop_assert_eq!(p.e_threads, complex.e_cluster.cores);
        }
    }

    #[test]
    fn gflops_monotone_in_threads(gen in any_generation(), t in 1u32..32) {
        let complex = CpuComplex::of(gen.spec());
        prop_assert!(complex.gflops_for_threads(t + 1) >= complex.gflops_for_threads(t));
        prop_assert!(complex.gflops_for_threads(t) <= complex.gflops() + 1e-9);
    }

    #[test]
    fn memory_demand_bounded(gen in any_generation(), t in 0u32..128) {
        let complex = CpuComplex::of(gen.spec());
        let w = complex.memory_demand_weight(t);
        prop_assert!((0.0..=1.0).contains(&w));
    }

    #[test]
    fn residency_monotone(gen in any_generation(), a in 1u64..1 << 34, b in 1u64..1 << 34) {
        let h = CacheHierarchy::of(gen.spec());
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(h.residency(small) <= h.residency(large));
    }

    #[test]
    fn governor_grant_bounded(cap in 0.1f64..1.0, demand in 0.0f64..1.5) {
        let mut gov = Governor::new(DvfsLadder::m_series());
        gov.set_thermal_cap(cap);
        let g = gov.grant(demand);
        prop_assert!(g > 0.0);
        prop_assert!(g <= 1.0);
    }

    #[test]
    fn ladder_quantize_is_idempotent(demand in 0.0f64..1.0) {
        let ladder = DvfsLadder::m_series();
        let q = ladder.quantize_up(demand);
        prop_assert_eq!(ladder.quantize_up(q), q);
        prop_assert!(q + 1e-12 >= demand);
    }

    #[test]
    fn thermal_never_cools_below_ambient(
        powers in proptest::collection::vec(0.0f64..50.0, 1..100)
    ) {
        let mut t = ThermalModel::new(CoolingKind::Passive);
        for p in powers {
            t.integrate(p, SimDuration::from_millis(500));
            prop_assert!(t.temperature_c() >= 22.0);
            prop_assert!(t.temperature_c() <= 130.0);
            let cap = t.dvfs_cap();
            prop_assert!(cap > 0.0 && cap <= 1.0);
        }
    }

    #[test]
    fn amx_and_gpu_peaks_positive(gen in any_generation()) {
        let spec: &ChipSpec = gen.spec();
        prop_assert!(spec.amx_gflops() > 0.0);
        prop_assert!(spec.gpu_tflops_from_alus() > 0.0);
        prop_assert!(spec.cpu_neon_gflops() > 0.0);
        // Published theoretical figures bound the ALU model within 15%.
        let rel = (spec.gpu_tflops_from_alus() - spec.gpu_tflops_published).abs()
            / spec.gpu_tflops_published;
        prop_assert!(rel < 0.15);
    }
}
