//! Numerical verification of GEMM results.
//!
//! Full-matrix comparison is quadratic in memory and cubic in time; for
//! benchmark-scale matrices the harness verifies a random sample of output
//! entries instead, recomputing each sampled entry as an f64 dot product
//! (tighter than the f32 kernels, so the tolerance bounds kernel error,
//! not reference error). When a dense reference *is* available (unit
//! tests, small functional runs), [`verify_dense`] compares whole outputs
//! in one fused sweep — max-abs diff, max-ULP distance, and the mismatch
//! count in a single pass over each array instead of separate
//! diff → threshold → count sweeps.

use oranges_kernels::reduce::dot_f32_to_f64_strided;
use oranges_kernels::ulp::diff_stats_f32;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Scalar reference GEMM used by unit tests (`c := a · b`) — the
/// microkernel layer's scalar twin.
pub fn reference_gemm(n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    oranges_kernels::gemm::sgemm_f32_scalar(n, n, n, a, n, b, n, c, n);
}

/// Result of sampled verification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct VerifyOutcome {
    /// Entries sampled.
    pub samples: usize,
    /// Worst relative error seen.
    pub max_rel_error: f64,
    /// Whether all samples were within tolerance.
    pub passed: bool,
}

/// Result of one fused dense comparison ([`verify_dense`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DenseVerifyOutcome {
    /// Elements compared.
    pub compared: usize,
    /// Elements whose absolute difference exceeded the tolerance.
    pub mismatches: usize,
    /// Largest absolute difference seen.
    pub max_abs_diff: f32,
    /// Largest elementwise ULP distance seen.
    pub max_ulp: u64,
    /// No mismatches and both slices were the same length.
    pub passed: bool,
}

/// Compare a computed output against a dense reference in one sweep.
///
/// Single pass over each array (the kernels-crate
/// [`diff_stats_f32`] primitive) producing the max absolute difference,
/// max ULP distance, and count of elements beyond `abs_tol` at once.
pub fn verify_dense(got: &[f32], want: &[f32], abs_tol: f32) -> DenseVerifyOutcome {
    let stats = diff_stats_f32(got, want, abs_tol);
    DenseVerifyOutcome {
        compared: stats.compared,
        mismatches: stats.mismatches,
        max_abs_diff: stats.max_abs(),
        max_ulp: stats.max_ulp,
        passed: stats.mismatches == 0 && got.len() == want.len(),
    }
}

/// Verify `c ≈ a · b` on `samples` random entries with relative tolerance
/// `tol` (scaled by √n to account for f32 accumulation error growth).
pub fn verify_sampled(
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &[f32],
    samples: usize,
    seed: u64,
    tol: f64,
) -> VerifyOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let scaled_tol = tol * (n as f64).sqrt().max(1.0);
    let mut max_rel_error = 0.0f64;
    let mut passed = true;
    for _ in 0..samples {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        // Row i of A against strided column j of B, widened to f64 with
        // a 4-accumulator unrolled dot (oranges-kernels).
        let acc = dot_f32_to_f64_strided(&a[i * n..(i + 1) * n], &b[j..], n);
        let got = c[i * n + j] as f64;
        let denom = acc.abs().max(1e-12);
        let rel = (got - acc).abs() / denom;
        max_rel_error = max_rel_error.max(rel);
        if rel > scaled_tol {
            passed = false;
        }
    }
    VerifyOutcome {
        samples,
        max_rel_error,
        passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_matrix(n: usize, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(17);
        (0..n * n)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1u32 << 24) as f32
            })
            .collect()
    }

    #[test]
    fn correct_results_pass() {
        let n = 64;
        let a = det_matrix(n, 1);
        let b = det_matrix(n, 2);
        let mut c = vec![0.0f32; n * n];
        reference_gemm(n, &a, &b, &mut c);
        let outcome = verify_sampled(n, &a, &b, &c, 128, 99, 1e-5);
        assert!(outcome.passed, "max rel {}", outcome.max_rel_error);
        assert_eq!(outcome.samples, 128);
    }

    #[test]
    fn corrupted_results_fail() {
        let n = 32;
        let a = det_matrix(n, 3);
        let b = det_matrix(n, 4);
        let mut c = vec![0.0f32; n * n];
        reference_gemm(n, &a, &b, &mut c);
        for v in c.iter_mut() {
            *v *= 1.5; // corrupt everything so sampling must catch it
        }
        let outcome = verify_sampled(n, &a, &b, &c, 64, 5, 1e-5);
        assert!(!outcome.passed);
        assert!(outcome.max_rel_error > 0.1);
    }

    #[test]
    fn zero_output_of_nonzero_inputs_fails() {
        let n = 16;
        let a = vec![0.5f32; n * n];
        let b = vec![0.5f32; n * n];
        let c = vec![0.0f32; n * n];
        assert!(!verify_sampled(n, &a, &b, &c, 32, 1, 1e-5).passed);
    }

    #[test]
    fn dense_verify_passes_identical_outputs() {
        let n = 24;
        let a = det_matrix(n, 5);
        let b = det_matrix(n, 6);
        let mut c = vec![0.0f32; n * n];
        reference_gemm(n, &a, &b, &mut c);
        let outcome = verify_dense(&c, &c, 0.0);
        assert!(outcome.passed);
        assert_eq!(outcome.mismatches, 0);
        assert_eq!(outcome.max_ulp, 0);
        assert_eq!(outcome.compared, n * n);
    }

    #[test]
    fn dense_verify_counts_and_bounds_corruption() {
        let n = 8;
        let a = det_matrix(n, 7);
        let b = det_matrix(n, 8);
        let mut c = vec![0.0f32; n * n];
        reference_gemm(n, &a, &b, &mut c);
        let mut bad = c.clone();
        bad[3] += 0.5;
        bad[40] -= 0.25;
        let outcome = verify_dense(&bad, &c, 1e-4);
        assert!(!outcome.passed);
        assert_eq!(outcome.mismatches, 2);
        assert!(outcome.max_abs_diff >= 0.5);
        assert!(outcome.max_ulp > 0);
    }

    #[test]
    fn dense_verify_rejects_length_mismatch() {
        let outcome = verify_dense(&[1.0, 2.0], &[1.0], 0.0);
        assert!(!outcome.passed, "shorter reference must not pass");
        assert_eq!(outcome.compared, 1);
    }
}
