//! GEMM benchmark errors.

use oranges_metal::MetalError;
use oranges_umem::UmemError;
use std::fmt;

/// Errors from the GEMM implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GemmError {
    /// Matrix dimension problems.
    Dimension(String),
    /// Metal-path failure.
    Metal(MetalError),
    /// Unified-memory failure.
    Memory(UmemError),
    /// BLAS-path failure.
    Blas(String),
    /// Verification failed.
    Verification(String),
}

impl fmt::Display for GemmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GemmError::Dimension(s) => write!(f, "dimension error: {s}"),
            GemmError::Metal(e) => write!(f, "metal error: {e}"),
            GemmError::Memory(e) => write!(f, "memory error: {e}"),
            GemmError::Blas(s) => write!(f, "blas error: {s}"),
            GemmError::Verification(s) => write!(f, "verification failed: {s}"),
        }
    }
}

impl std::error::Error for GemmError {}

impl From<MetalError> for GemmError {
    fn from(e: MetalError) -> Self {
        GemmError::Metal(e)
    }
}

impl From<UmemError> for GemmError {
    fn from(e: UmemError) -> Self {
        GemmError::Memory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: GemmError = MetalError::MissingBinding(1).into();
        assert!(e.to_string().contains("metal error"));
        let e: GemmError = UmemError::ZeroLength.into();
        assert!(e.to_string().contains("memory error"));
        assert!(GemmError::Dimension("n=0".into())
            .to_string()
            .contains("n=0"));
    }
}
