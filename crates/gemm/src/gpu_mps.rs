//! GPU-MPS: Metal Performance Shaders (Table 2 row 6) — Listing 2.
//!
//! The paper's dominant GPU implementation: `MPSMatrixDescriptor` +
//! `MPSMatrix` over shared no-copy buffers, one `MPSMatrixMultiplication`
//! encoded per run, `commit` + `waitUntilCompleted`.

use crate::error::GemmError;
use crate::suite::Hardware;
use crate::{GemmImplementation, GemmOutcome};
use oranges_metal::mps::{Matrix as MpsMatrix, MatrixDescriptor, MatrixMultiplication};
use oranges_metal::Device;
use oranges_powermetrics::WorkClass;
use oranges_soc::chip::ChipGeneration;
use oranges_umem::StorageMode;

/// MPS-backed GPU GEMM.
pub struct GpuMps {
    device: Device,
}

impl GpuMps {
    /// Implementation on a chip's default device.
    pub fn new(chip: ChipGeneration) -> Self {
        GpuMps {
            device: Device::system_default(chip),
        }
    }

    /// Build over an explicit device.
    pub fn with_device(device: Device) -> Self {
        GpuMps { device }
    }

    /// The device in use.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl GemmImplementation for GpuMps {
    fn name(&self) -> &'static str {
        "GPU-MPS"
    }

    fn framework(&self) -> &'static str {
        "Metal"
    }

    fn hardware(&self) -> Hardware {
        Hardware::Gpu
    }

    fn work_class(&self) -> WorkClass {
        WorkClass::GpuMps
    }

    fn run(
        &mut self,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) -> Result<GemmOutcome, GemmError> {
        if n == 0 || a.len() < n * n || b.len() < n * n || c.len() < n * n {
            return Err(GemmError::Dimension(format!(
                "need n>0 and n² elements (n={n})"
            )));
        }
        let desc = MatrixDescriptor::new(n, n, n * 4)?;
        let mat_a = MpsMatrix::new(
            self.device
                .new_buffer_with_data(&a[..n * n], StorageMode::Shared)?,
            desc,
        )?;
        let mat_b = MpsMatrix::new(
            self.device
                .new_buffer_with_data(&b[..n * n], StorageMode::Shared)?,
            desc,
        )?;
        let mat_c = MpsMatrix::new(self.device.new_buffer(n * n, StorageMode::Shared)?, desc)?;

        let multiplication = MatrixMultiplication::new(n, n, n);
        let queue = self.device.new_command_queue();
        let mut cb = queue.command_buffer();
        multiplication.encode(&mut cb, &mat_a, &mat_b, &mat_c)?;
        cb.commit()?;
        let report = &cb.wait_until_completed()?[0];
        if report.functional {
            c[..n * n].copy_from_slice(&mat_c.buffer().read_to_vec()?);
        }
        Ok(GemmOutcome {
            duration: report.duration,
            flops: report.flops,
            functional: report.functional,
            duty: report.duty(),
        })
    }

    fn model_run(&mut self, n: usize) -> Result<GemmOutcome, GemmError> {
        use oranges_metal::kernel::{ComputeKernel, KernelParams};
        use oranges_metal::mps::MpsSgemm;
        if n == 0 {
            return Err(GemmError::Dimension("n must be positive".into()));
        }
        let params = KernelParams {
            uints: vec![n as u64, n as u64, n as u64],
            floats: vec![],
        };
        let kernel = MpsSgemm;
        let workload = kernel.workload(self.device.chip(), &params, n * n);
        // MPS's own grid: ceil(n/32)² threadgroups of 32×32.
        let tgs = (n as u64).div_ceil(32).max(1);
        let breakdown = self.device.timing().price(&workload, tgs * tgs * 1024);
        let duty = {
            let total = breakdown.total.as_secs_f64();
            if total <= 0.0 {
                0.0
            } else {
                (breakdown.total.saturating_sub(breakdown.overhead)).as_secs_f64() / total
            }
        };
        Ok(GemmOutcome {
            duration: breakdown.total,
            flops: workload.flops,
            functional: false,
            duty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_gemm;

    #[test]
    fn computes_correct_products() {
        let n = 36;
        let a: Vec<f32> = (0..n * n)
            .map(|i| ((i * 5 + 2) % 29) as f32 * 0.03)
            .collect();
        let b: Vec<f32> = (0..n * n)
            .map(|i| ((i * 17 + 11) % 31) as f32 * 0.02)
            .collect();
        let mut c = vec![0.0f32; n * n];
        let mut expected = vec![0.0f32; n * n];
        GpuMps::new(ChipGeneration::M2)
            .run(n, &a, &b, &mut c)
            .unwrap();
        reference_gemm(n, &a, &b, &mut expected);
        for (idx, (x, y)) in c.iter().zip(&expected).enumerate() {
            assert!(
                (x - y).abs() < 1e-3 * (1.0 + y.abs()),
                "idx={idx}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn dominates_every_other_implementation_at_large_n() {
        // Figure 2's headline: MPS wins on every chip at large sizes.
        use crate::cpu_accelerate::CpuAccelerate;
        use crate::gpu_shader::GpuShader;
        let n = 4096;
        let zeros = vec![0.0f32; n * n];
        for chip in ChipGeneration::ALL {
            let device = Device::system_default(chip).with_functional_limit(0);
            let mut mps = GpuMps::with_device(device.clone());
            let mut c = vec![0.0f32; n * n];
            let g_mps = mps.run(n, &zeros, &zeros, &mut c).unwrap().gflops();
            let mut accelerate = CpuAccelerate::new(chip).with_functional_limit(0);
            let g_acc = accelerate.run(n, &zeros, &zeros, &mut c).unwrap().gflops();
            let mut naive = GpuShader::with_device(device, crate::gpu_shader::ShaderKind::Naive);
            let g_naive = naive.run(n, &zeros, &zeros, &mut c).unwrap().gflops();
            assert!(g_mps > g_acc, "{chip}: MPS {g_mps} vs Accelerate {g_acc}");
            assert!(
                g_mps > g_naive,
                "{chip}: MPS {g_mps} vs GPU-Naive {g_naive}"
            );
        }
    }

    #[test]
    fn m1_cpu_and_gpu_are_close_but_later_chips_diverge() {
        // §1: "the M1 CPU and GPU have similar performance … starting from
        // the M2, the GPU significantly outperforms the CPU".
        use crate::cpu_accelerate::CpuAccelerate;
        let n = 8192;
        let run_pair = |chip| {
            let device = Device::system_default(chip).with_functional_limit(0);
            let mut mps = GpuMps::with_device(device);
            let mut acc = CpuAccelerate::new(chip).with_functional_limit(0);
            let mut c = vec![0.0f32; n * n];
            let zeros = vec![0.0f32; n * n];
            let g = mps.run(n, &zeros, &zeros, &mut c).unwrap().gflops();
            let a = acc.run(n, &zeros, &zeros, &mut c).unwrap().gflops();
            (g, a)
        };
        let (m1_gpu, m1_cpu) = run_pair(ChipGeneration::M1);
        assert!(
            m1_gpu / m1_cpu < 1.8,
            "M1 GPU/CPU ratio {}",
            m1_gpu / m1_cpu
        );
        let (m4_gpu, m4_cpu) = run_pair(ChipGeneration::M4);
        assert!(
            m4_gpu / m4_cpu > 1.8,
            "M4 GPU/CPU ratio {}",
            m4_gpu / m4_cpu
        );
    }

    #[test]
    fn metadata() {
        let implementation = GpuMps::new(ChipGeneration::M4);
        assert_eq!(implementation.name(), "GPU-MPS");
        assert_eq!(implementation.framework(), "Metal");
        assert_eq!(implementation.hardware(), Hardware::Gpu);
        assert_eq!(implementation.work_class(), WorkClass::GpuMps);
    }
}
