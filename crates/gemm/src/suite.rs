//! The Table 2 suite: every implementation, the paper's size grid, and the
//! §4 skip rules.

use crate::cpu_accelerate::CpuAccelerate;
use crate::cpu_omp::CpuOmp;
use crate::cpu_single::CpuSingle;
use crate::gpu_mps::GpuMps;
use crate::gpu_shader::GpuShader;
use crate::GemmImplementation;
use oranges_soc::chip::ChipGeneration;
use serde::Serialize;

/// Hardware column of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Hardware {
    /// Runs on the CPU complex (incl. AMX).
    Cpu,
    /// Runs on the GPU.
    Gpu,
}

impl Hardware {
    /// Table label.
    pub const fn label(&self) -> &'static str {
        match self {
            Hardware::Cpu => "CPU",
            Hardware::Gpu => "GPU",
        }
    }
}

/// Static description of one Table 2 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ImplementationInfo {
    /// Figure legend name.
    pub name: &'static str,
    /// Table 2 "Implementation" column.
    pub implementation: &'static str,
    /// Table 2 "Framework" column.
    pub framework: &'static str,
    /// Table 2 "Hardware" column.
    pub hardware: Hardware,
}

/// Table 2, as data.
pub const TABLE2: [ImplementationInfo; 6] = [
    ImplementationInfo {
        name: "CPU-Single",
        implementation: "Naive algorithm",
        framework: "C++",
        hardware: Hardware::Cpu,
    },
    ImplementationInfo {
        name: "CPU-OMP",
        implementation: "Tiled algorithm (OpenMP)",
        framework: "C++/OpenMP",
        hardware: Hardware::Cpu,
    },
    ImplementationInfo {
        name: "CPU-Accelerate",
        implementation: "BLAS/vDSP",
        framework: "Accelerate",
        hardware: Hardware::Cpu,
    },
    ImplementationInfo {
        name: "GPU-Naive",
        implementation: "Naive algorithm as shader",
        framework: "Metal",
        hardware: Hardware::Gpu,
    },
    ImplementationInfo {
        name: "GPU-CUTLASS",
        implementation: "Cutlass-style tiled shader",
        framework: "Metal",
        hardware: Hardware::Gpu,
    },
    ImplementationInfo {
        name: "GPU-MPS",
        implementation: "Metal Performance Shaders (MPS)",
        framework: "Metal",
        hardware: Hardware::Gpu,
    },
];

/// The paper's matrix sizes (§4): powers of two from 32 to 16384.
pub fn paper_sizes() -> Vec<usize> {
    vec![32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
}

/// §4's skip rule: "Except for CPU-Single (Baseline) and CPU-OMP, which
/// did not execute 8,192 and 16,384 due to the long execution time."
pub fn skips_size(name: &str, n: usize) -> bool {
    (name == "CPU-Single" || name == "CPU-OMP") && n >= 8192
}

/// Construct every Table 2 implementation for a chip, in table order.
pub fn suite_for(chip: ChipGeneration) -> Vec<Box<dyn GemmImplementation>> {
    vec![
        Box::new(CpuSingle::new(chip)),
        Box::new(CpuOmp::new(chip)),
        Box::new(CpuAccelerate::new(chip)),
        Box::new(GpuShader::naive(chip)),
        Box::new(GpuShader::tiled(chip)),
        Box::new(GpuMps::new(chip)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{reference_gemm, verify_sampled};

    #[test]
    fn table2_has_six_rows_with_expected_frameworks() {
        assert_eq!(TABLE2.len(), 6);
        let cpu_rows = TABLE2
            .iter()
            .filter(|r| r.hardware == Hardware::Cpu)
            .count();
        let gpu_rows = TABLE2
            .iter()
            .filter(|r| r.hardware == Hardware::Gpu)
            .count();
        assert_eq!(cpu_rows, 3);
        assert_eq!(gpu_rows, 3);
        assert!(TABLE2.iter().any(|r| r.framework == "Accelerate"));
        assert_eq!(TABLE2.iter().filter(|r| r.framework == "Metal").count(), 3);
    }

    #[test]
    fn suite_matches_table2_order() {
        let suite = suite_for(ChipGeneration::M1);
        assert_eq!(suite.len(), 6);
        for (implementation, info) in suite.iter().zip(TABLE2.iter()) {
            assert_eq!(implementation.name(), info.name);
            assert_eq!(implementation.framework(), info.framework);
            assert_eq!(implementation.hardware(), info.hardware);
        }
    }

    #[test]
    fn paper_sizes_are_powers_of_two() {
        let sizes = paper_sizes();
        assert_eq!(sizes.first(), Some(&32));
        assert_eq!(sizes.last(), Some(&16384));
        for pair in sizes.windows(2) {
            assert_eq!(pair[1], pair[0] * 2);
        }
    }

    #[test]
    fn skip_rules_match_section4() {
        assert!(skips_size("CPU-Single", 8192));
        assert!(skips_size("CPU-Single", 16384));
        assert!(skips_size("CPU-OMP", 8192));
        assert!(!skips_size("CPU-Single", 4096));
        assert!(!skips_size("CPU-Accelerate", 16384));
        assert!(!skips_size("GPU-MPS", 16384));
    }

    #[test]
    fn all_implementations_agree_on_a_small_problem() {
        let n = 32;
        let a: Vec<f32> = (0..n * n)
            .map(|i| ((i * 7 + 1) % 13) as f32 / 13.0)
            .collect();
        let b: Vec<f32> = (0..n * n)
            .map(|i| ((i * 11 + 5) % 17) as f32 / 17.0)
            .collect();
        let mut expected = vec![0.0f32; n * n];
        reference_gemm(n, &a, &b, &mut expected);
        for mut implementation in suite_for(ChipGeneration::M2) {
            let mut c = vec![0.0f32; n * n];
            let outcome = implementation.run(n, &a, &b, &mut c).unwrap();
            assert!(outcome.functional, "{}", implementation.name());
            let verdict = verify_sampled(n, &a, &b, &c, 64, 7, 1e-5);
            assert!(
                verdict.passed,
                "{}: max rel error {}",
                implementation.name(),
                verdict.max_rel_error
            );
        }
    }

    #[test]
    fn figure2_ordering_holds_at_large_sizes() {
        // At n = 4096 (modeled-only): MPS > Accelerate > GPU-Naive >
        // GPU-CUTLASS > CPU-OMP > CPU-Single on every chip except where
        // the paper shows otherwise (Accelerate vs GPU-Naive ordering
        // differs per chip; we check the universal relations only).
        let n = 4096;
        for chip in ChipGeneration::ALL {
            let mut gflops = std::collections::HashMap::new();
            for mut implementation in suite_for(chip) {
                let name = implementation.name();
                // Force model-only by zero functional limits where needed:
                // run with zero-filled matrices; functional execution may
                // still happen for cheap impls but results are unused.
                let zeros = vec![0.0f32; n * n];
                let mut c = vec![0.0f32; n * n];
                // Wrap in a modeled-only variant where available.
                let outcome = match name {
                    "CPU-Single" => crate::cpu_single::CpuSingle::new(chip)
                        .with_functional_limit(0)
                        .run(n, &zeros, &zeros, &mut c)
                        .unwrap(),
                    "CPU-OMP" => crate::cpu_omp::CpuOmp::new(chip)
                        .with_functional_limit(0)
                        .run(n, &zeros, &zeros, &mut c)
                        .unwrap(),
                    "CPU-Accelerate" => crate::cpu_accelerate::CpuAccelerate::new(chip)
                        .with_functional_limit(0)
                        .run(n, &zeros, &zeros, &mut c)
                        .unwrap(),
                    _ => {
                        let _ = &mut implementation;
                        // GPU paths are above the default functional limit
                        // at n=4096 already.
                        implementation.run(n, &zeros, &zeros, &mut c).unwrap()
                    }
                };
                gflops.insert(name, outcome.gflops());
            }
            assert!(gflops["GPU-MPS"] > gflops["CPU-Accelerate"], "{chip}");
            assert!(gflops["CPU-Accelerate"] > gflops["GPU-Naive"], "{chip}");
            assert!(gflops["GPU-Naive"] > gflops["GPU-CUTLASS"], "{chip}");
            assert!(gflops["GPU-CUTLASS"] > gflops["CPU-OMP"], "{chip}");
            assert!(gflops["CPU-OMP"] > gflops["CPU-Single"], "{chip}");
        }
    }
}
