//! CPU-Accelerate: BLAS/vDSP on AMX (Table 2 row "BLAS/vDSP").
//!
//! The paper's Listing 1 call, through our Accelerate-shaped crate. §5.2:
//! "The vDSP and BLAS implementations perform nearly identically, and
//! thus, only vDSP is considered (listed as 'Accelerate') — they assumedly
//! both run on AMX." The AMX call has negligible launch overhead, so the
//! duty cycle is effectively 1.

use crate::error::GemmError;
use crate::suite::Hardware;
use crate::{GemmImplementation, GemmOutcome};
use oranges_accelerate::blas::{Blas, Order, Transpose};
use oranges_accelerate::timing::CALL_OVERHEAD;
use oranges_powermetrics::WorkClass;
use oranges_soc::chip::ChipGeneration;

/// Accelerate-backed CPU GEMM.
#[derive(Debug)]
pub struct CpuAccelerate {
    blas: Blas,
}

impl CpuAccelerate {
    /// Implementation for a chip.
    pub fn new(chip: ChipGeneration) -> Self {
        CpuAccelerate {
            blas: Blas::new(chip),
        }
    }

    /// Override the functional ceiling.
    pub fn with_functional_limit(mut self, limit: u64) -> Self {
        self.blas = self.blas.with_functional_limit(limit);
        self
    }

    /// Modeled sustained GFLOPS at size `n`.
    pub fn modeled_gflops(&self, n: usize) -> f64 {
        self.blas.model().sustained_gflops(n as u64)
    }
}

impl GemmImplementation for CpuAccelerate {
    fn name(&self) -> &'static str {
        "CPU-Accelerate"
    }

    fn framework(&self) -> &'static str {
        "Accelerate"
    }

    fn hardware(&self) -> Hardware {
        Hardware::Cpu
    }

    fn work_class(&self) -> WorkClass {
        WorkClass::CpuAccelerate
    }

    fn run(
        &mut self,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) -> Result<GemmOutcome, GemmError> {
        if n == 0 {
            return Err(GemmError::Dimension("n must be positive".into()));
        }
        // Listing 1: cblas_sgemm(RowMajor, NoTrans, NoTrans, n, n, n,
        //                        1, left, n, right, n, 0, out, n).
        let report = self
            .blas
            .sgemm(
                Order::RowMajor,
                Transpose::NoTrans,
                Transpose::NoTrans,
                n,
                n,
                n,
                1.0,
                a,
                n,
                b,
                n,
                0.0,
                c,
                n,
            )
            .map_err(GemmError::Blas)?;
        let duty = {
            let total = report.duration.as_secs_f64();
            if total <= 0.0 {
                0.0
            } else {
                (report.duration.saturating_sub(CALL_OVERHEAD)).as_secs_f64() / total
            }
        };
        Ok(GemmOutcome {
            duration: report.duration,
            flops: report.flops,
            functional: report.functional,
            duty,
        })
    }

    fn model_run(&mut self, n: usize) -> Result<GemmOutcome, GemmError> {
        if n == 0 {
            return Err(GemmError::Dimension("n must be positive".into()));
        }
        let duration = self.blas.model().sgemm_duration(n as u64);
        let duty = {
            let total = duration.as_secs_f64();
            if total <= 0.0 {
                0.0
            } else {
                (duration.saturating_sub(CALL_OVERHEAD)).as_secs_f64() / total
            }
        };
        Ok(GemmOutcome {
            duration,
            flops: crate::matrix::gemm_flops(n as u64),
            functional: false,
            duty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_gemm;

    #[test]
    fn computes_correct_products() {
        let n = 48;
        let a: Vec<f32> = (0..n * n)
            .map(|i| ((i * 29 + 1) % 17) as f32 * 0.06)
            .collect();
        let b: Vec<f32> = (0..n * n)
            .map(|i| ((i * 23 + 9) % 13) as f32 * 0.08)
            .collect();
        let mut c = vec![0.0f32; n * n];
        let mut expected = vec![0.0f32; n * n];
        CpuAccelerate::new(ChipGeneration::M2)
            .run(n, &a, &b, &mut c)
            .unwrap();
        reference_gemm(n, &a, &b, &mut expected);
        for (idx, (x, y)) in c.iter().zip(&expected).enumerate() {
            assert!(
                (x - y).abs() < 1e-3 * (1.0 + y.abs()),
                "idx={idx}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn peaks_match_figure2_anchors() {
        let expected = [
            (ChipGeneration::M1, 900.0),
            (ChipGeneration::M2, 1090.0),
            (ChipGeneration::M3, 1380.0),
            (ChipGeneration::M4, 1490.0),
        ];
        for (chip, gflops) in expected {
            let implementation = CpuAccelerate::new(chip);
            let g = implementation.modeled_gflops(16384);
            assert!((g - gflops).abs() / gflops < 0.02, "{chip}: {g}");
        }
    }

    #[test]
    fn duty_is_high_for_real_problems() {
        let mut implementation = CpuAccelerate::new(ChipGeneration::M1).with_functional_limit(0);
        let n = 1024;
        let outcome = implementation
            .run(
                n,
                &vec![0.0; n * n],
                &vec![0.0; n * n],
                &mut vec![0.0; n * n],
            )
            .unwrap();
        assert!(outcome.duty > 0.99, "{}", outcome.duty);
        assert!(!outcome.functional);
    }

    #[test]
    fn metadata() {
        let implementation = CpuAccelerate::new(ChipGeneration::M3);
        assert_eq!(implementation.name(), "CPU-Accelerate");
        assert_eq!(implementation.framework(), "Accelerate");
        assert_eq!(implementation.hardware(), Hardware::Cpu);
        assert_eq!(implementation.work_class(), WorkClass::CpuAccelerate);
    }
}
