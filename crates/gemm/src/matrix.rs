//! Benchmark matrices — §3.2's allocation and initialization discipline.
//!
//! "The matrices are dense and initialized as single-precision
//! `R^{n×n} ∈ [0, 1]`. … All matrices (input and output) are allocated via
//! `aligned_alloc`, using a page size of 16,384 bytes. Allocation lengths
//! were automatically extended to the nearest page multiple … such that
//! the GPU could bypass memory copying."

use crate::error::GemmError;
use oranges_umem::buffer::{SharedAddressSpace, UnifiedBuffer};
use oranges_umem::StorageMode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// FLOP count of an `n×n` square GEMM, as the paper counts it: `n²(2n−1)`.
pub const fn gemm_flops(n: u64) -> u64 {
    n * n * (2 * n - 1)
}

/// A dense square FP32 matrix in unified memory.
#[derive(Debug)]
pub struct Matrix {
    n: usize,
    buffer: UnifiedBuffer<f32>,
}

impl Matrix {
    /// Allocate an `n×n` zero matrix (page-aligned, page-rounded).
    pub fn zeros(space: &SharedAddressSpace, n: usize) -> Result<Self, GemmError> {
        if n == 0 {
            return Err(GemmError::Dimension(
                "matrix dimension must be positive".into(),
            ));
        }
        let buffer = UnifiedBuffer::allocate(space, n * n, StorageMode::Shared)?;
        Ok(Matrix { n, buffer })
    }

    /// Allocate and fill with `R ∈ [0, 1)` from a seeded generator — the
    /// paper distributes its matrix generator with the source, so runs are
    /// reproducible.
    pub fn random(space: &SharedAddressSpace, n: usize, seed: u64) -> Result<Self, GemmError> {
        let mut matrix = Matrix::zeros(space, n)?;
        let mut rng = StdRng::seed_from_u64(seed);
        for v in matrix.buffer.as_mut_slice()?.iter_mut() {
            *v = rng.gen_range(0.0..1.0);
        }
        Ok(matrix)
    }

    /// Dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element count (`n²`).
    pub fn len(&self) -> usize {
        self.n * self.n
    }

    /// Whether the matrix is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read view.
    pub fn as_slice(&self) -> &[f32] {
        self.buffer
            .as_slice()
            .expect("benchmark matrices are Shared")
    }

    /// Write view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.buffer
            .as_mut_slice()
            .expect("benchmark matrices are Shared")
    }

    /// Consume into the unified buffer (for no-copy Metal wrapping).
    pub fn into_buffer(self) -> UnifiedBuffer<f32> {
        self.buffer
    }

    /// The underlying allocation's base address.
    pub fn base_address(&self) -> u64 {
        self.buffer.base_address()
    }

    /// Allocated bytes (page multiple).
    pub fn capacity_bytes(&self) -> u64 {
        self.buffer.capacity_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oranges_umem::page::PAGE_SIZE;

    fn space() -> SharedAddressSpace {
        SharedAddressSpace::with_gib(1)
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(gemm_flops(1), 1);
        assert_eq!(gemm_flops(32), 32 * 32 * 63);
        assert_eq!(gemm_flops(16384), 16384u64 * 16384 * 32767);
    }

    #[test]
    fn matrices_are_page_aligned_and_rounded() {
        let s = space();
        let m = Matrix::zeros(&s, 100).unwrap(); // 40 kB → 3 pages
        assert_eq!(m.base_address() % PAGE_SIZE, 0);
        assert_eq!(m.capacity_bytes(), 3 * PAGE_SIZE);
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn random_is_in_unit_interval_and_seeded() {
        let s = space();
        let a = Matrix::random(&s, 64, 42).unwrap();
        assert!(a.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
        let b = Matrix::random(&s, 64, 42).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "same seed, same matrix");
        let c = Matrix::random(&s, 64, 43).unwrap();
        assert_ne!(
            a.as_slice(),
            c.as_slice(),
            "different seed, different matrix"
        );
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(matches!(
            Matrix::zeros(&space(), 0),
            Err(GemmError::Dimension(_))
        ));
    }

    #[test]
    fn into_buffer_supports_no_copy_wrap() {
        let s = space();
        let m = Matrix::random(&s, 256, 7).unwrap();
        let buffer = m.into_buffer();
        assert!(buffer.supports_no_copy_wrap());
    }
}
