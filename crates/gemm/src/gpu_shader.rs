//! GPU-Naive and GPU-CUTLASS: the custom Metal shaders (Table 2 rows 4–5).
//!
//! §3.2: the naive and tiled ("Cutlass-style") shaders come from an
//! open-source repository, compiled into a `.metallib` and loaded at
//! startup; "eight horizontal and eight vertical thread groups were used".
//! Here the same two kernels live in the device's standard library and are
//! dispatched with the paper's 8×8 threadgroup grid.

use crate::error::GemmError;
use crate::suite::Hardware;
use crate::{GemmImplementation, GemmOutcome};
use oranges_metal::kernel::KernelParams;
use oranges_metal::library::ComputePipelineState;
use oranges_metal::types::MtlSize;
use oranges_metal::Device;
use oranges_powermetrics::WorkClass;
use oranges_soc::chip::ChipGeneration;
use oranges_umem::StorageMode;

/// Which custom shader to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShaderKind {
    /// One thread per output element, no tiling.
    Naive,
    /// Threadgroup-memory tiled ("Cutlass-style").
    Tiled,
}

impl ShaderKind {
    fn function_name(&self) -> &'static str {
        match self {
            ShaderKind::Naive => "sgemm_naive",
            ShaderKind::Tiled => "sgemm_tiled",
        }
    }
}

/// A custom-shader GPU GEMM implementation.
pub struct GpuShader {
    device: Device,
    pipeline: ComputePipelineState,
    kind: ShaderKind,
}

impl GpuShader {
    /// The naive shader on a chip's default device.
    pub fn naive(chip: ChipGeneration) -> Self {
        GpuShader::with_device(Device::system_default(chip), ShaderKind::Naive)
    }

    /// The tiled ("Cutlass-style") shader.
    pub fn tiled(chip: ChipGeneration) -> Self {
        GpuShader::with_device(Device::system_default(chip), ShaderKind::Tiled)
    }

    /// Build over an explicit device (e.g. with a custom functional limit).
    pub fn with_device(device: Device, kind: ShaderKind) -> Self {
        let pipeline = device
            .new_default_library()
            .pipeline(kind.function_name())
            .expect("standard library always contains the sgemm shaders");
        GpuShader {
            device,
            pipeline,
            kind,
        }
    }

    /// The device in use.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Which shader variant this is.
    pub fn kind(&self) -> ShaderKind {
        self.kind
    }
}

impl GemmImplementation for GpuShader {
    fn name(&self) -> &'static str {
        match self.kind {
            ShaderKind::Naive => "GPU-Naive",
            ShaderKind::Tiled => "GPU-CUTLASS",
        }
    }

    fn framework(&self) -> &'static str {
        "Metal"
    }

    fn hardware(&self) -> Hardware {
        Hardware::Gpu
    }

    fn work_class(&self) -> WorkClass {
        match self.kind {
            ShaderKind::Naive => WorkClass::GpuNaive,
            ShaderKind::Tiled => WorkClass::GpuCutlass,
        }
    }

    fn run(
        &mut self,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) -> Result<GemmOutcome, GemmError> {
        if n == 0 || a.len() < n * n || b.len() < n * n || c.len() < n * n {
            return Err(GemmError::Dimension(format!(
                "need n>0 and n² elements (n={n})"
            )));
        }
        let buf_a = self
            .device
            .new_buffer_with_data(&a[..n * n], StorageMode::Shared)?;
        let buf_b = self
            .device
            .new_buffer_with_data(&b[..n * n], StorageMode::Shared)?;
        let buf_c = self.device.new_buffer(n * n, StorageMode::Shared)?;

        let queue = self.device.new_command_queue();
        let mut cb = queue.command_buffer();
        {
            let mut enc = cb.compute_command_encoder();
            enc.set_compute_pipeline_state(&self.pipeline);
            enc.set_buffer(0, &buf_a);
            enc.set_buffer(1, &buf_b);
            enc.set_buffer(2, &buf_c);
            enc.set_params(KernelParams::with_n(n as u64));
            // The paper's 8×8 threadgroups; 32×32 threads each.
            enc.dispatch_threadgroups(MtlSize::d2(8, 8), MtlSize::d2(32, 32))?;
            enc.end_encoding();
        }
        cb.commit()?;
        let report = &cb.wait_until_completed()?[0];
        if report.functional {
            c[..n * n].copy_from_slice(&buf_c.read_to_vec()?);
        }
        Ok(GemmOutcome {
            duration: report.duration,
            flops: report.flops,
            functional: report.functional,
            duty: report.duty(),
        })
    }

    fn model_run(&mut self, n: usize) -> Result<GemmOutcome, GemmError> {
        if n == 0 {
            return Err(GemmError::Dimension("n must be positive".into()));
        }
        let params = KernelParams::with_n(n as u64);
        let workload = self
            .pipeline
            .kernel()
            .workload(self.device.chip(), &params, n * n);
        // Same grid as `run`: 8×8 threadgroups of 32×32 threads.
        let breakdown = self.device.timing().price(&workload, 64 * 1024);
        let duty = {
            let total = breakdown.total.as_secs_f64();
            if total <= 0.0 {
                0.0
            } else {
                (breakdown.total.saturating_sub(breakdown.overhead)).as_secs_f64() / total
            }
        };
        Ok(GemmOutcome {
            duration: breakdown.total,
            flops: workload.flops,
            functional: false,
            duty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_gemm;

    #[test]
    fn both_shaders_compute_correct_products() {
        let n = 40;
        let a: Vec<f32> = (0..n * n)
            .map(|i| ((i * 3 + 1) % 19) as f32 * 0.05)
            .collect();
        let b: Vec<f32> = (0..n * n)
            .map(|i| ((i * 11 + 7) % 23) as f32 * 0.04)
            .collect();
        let mut expected = vec![0.0f32; n * n];
        reference_gemm(n, &a, &b, &mut expected);
        for mut implementation in [
            GpuShader::naive(ChipGeneration::M1),
            GpuShader::tiled(ChipGeneration::M1),
        ] {
            let mut c = vec![0.0f32; n * n];
            let outcome = implementation.run(n, &a, &b, &mut c).unwrap();
            assert!(outcome.functional);
            for (idx, (x, y)) in c.iter().zip(&expected).enumerate() {
                assert!(
                    (x - y).abs() < 1e-3 * (1.0 + y.abs()),
                    "{} idx={idx}: {x} vs {y}",
                    implementation.name()
                );
            }
        }
    }

    #[test]
    fn naive_outperforms_tiled_in_the_model() {
        // The paper's inversion, end to end through the dispatch path.
        let n = 2048;
        let a = vec![0.0f32; 1]; // modeled-only run, data unused
        for chip in ChipGeneration::ALL {
            let device = Device::system_default(chip).with_functional_limit(0);
            let mut naive = GpuShader::with_device(device.clone(), ShaderKind::Naive);
            let mut tiled = GpuShader::with_device(device, ShaderKind::Tiled);
            let _ = a;
            let zeros = vec![0.0f32; n * n];
            let mut c = vec![0.0f32; n * n];
            let t_naive = naive.run(n, &zeros, &zeros, &mut c).unwrap();
            let t_tiled = tiled.run(n, &zeros, &zeros, &mut c).unwrap();
            assert!(
                t_naive.gflops() > t_tiled.gflops(),
                "{chip}: naive {} vs tiled {}",
                t_naive.gflops(),
                t_tiled.gflops()
            );
        }
    }

    #[test]
    fn small_sizes_are_overhead_dominated() {
        let device = Device::system_default(ChipGeneration::M4).with_functional_limit(0);
        let mut implementation = GpuShader::with_device(device, ShaderKind::Naive);
        let small = {
            let mut c = vec![0.0f32; 32 * 32];
            implementation
                .run(32, &vec![0.0; 32 * 32], &vec![0.0; 32 * 32], &mut c)
                .unwrap()
        };
        assert!(
            small.duty < 0.1,
            "duty {} should be overhead-dominated",
            small.duty
        );
    }

    #[test]
    fn metadata() {
        let naive = GpuShader::naive(ChipGeneration::M1);
        assert_eq!(naive.name(), "GPU-Naive");
        assert_eq!(naive.work_class(), WorkClass::GpuNaive);
        let tiled = GpuShader::tiled(ChipGeneration::M1);
        assert_eq!(tiled.name(), "GPU-CUTLASS");
        assert_eq!(tiled.work_class(), WorkClass::GpuCutlass);
        assert_eq!(tiled.framework(), "Metal");
        assert_eq!(tiled.hardware(), Hardware::Gpu);
    }
}
