//! CPU-Single: the naive triple-nested-loop baseline (Table 2 row 1).
//!
//! "An implementation of the standard algorithm with a triple nested loop
//! provides a reference baseline" (§3.2). It runs on one performance core,
//! never vectorizes across the k-loop's dependent accumulation, and falls
//! off further once the three matrices spill the P-cluster L2 — which is
//! why the paper skips n ≥ 8192 for it ("due to the long execution time",
//! §4).

use crate::error::GemmError;
use crate::matrix::gemm_flops;
use crate::suite::Hardware;
use crate::{GemmImplementation, GemmOutcome};
use oranges_powermetrics::WorkClass;
use oranges_soc::cache::CacheHierarchy;
use oranges_soc::chip::ChipGeneration;
use oranges_soc::time::SimDuration;

/// Sustained single-thread GFLOPS while the working set is cache-resident
/// (scalar FMA chain on one P-core; scales with clock across generations).
fn base_gflops(chip: ChipGeneration) -> f64 {
    // One scalar FMA per ~2.9 cycles on the dependent k-loop.
    chip.spec().p_clock_ghz * 0.69
}

/// The default functional ceiling (FLOPs).
pub const DEFAULT_FUNCTIONAL_LIMIT: u64 = 600_000_000;

/// Naive single-threaded CPU GEMM.
#[derive(Debug)]
pub struct CpuSingle {
    chip: ChipGeneration,
    hierarchy: CacheHierarchy,
    functional_limit: u64,
}

impl CpuSingle {
    /// Implementation for a chip.
    pub fn new(chip: ChipGeneration) -> Self {
        CpuSingle {
            chip,
            hierarchy: CacheHierarchy::of(chip.spec()),
            functional_limit: DEFAULT_FUNCTIONAL_LIMIT,
        }
    }

    /// Override the functional ceiling.
    pub fn with_functional_limit(mut self, limit: u64) -> Self {
        self.functional_limit = limit;
        self
    }

    /// Cache-spill degradation: the naive j-inner access pattern re-walks
    /// B column-wise, so DRAM-resident problems lose roughly half their
    /// throughput.
    fn cache_factor(&self, n: usize) -> f64 {
        let working_set = 3 * (n * n * 4) as u64;
        match self.hierarchy.residency(working_set) {
            oranges_soc::cache::Residency::L1 => 1.0,
            oranges_soc::cache::Residency::L2 => 0.95,
            oranges_soc::cache::Residency::Slc => 0.78,
            oranges_soc::cache::Residency::Dram => 0.52,
        }
    }

    /// Modeled sustained GFLOPS at size `n`.
    pub fn modeled_gflops(&self, n: usize) -> f64 {
        base_gflops(self.chip) * self.cache_factor(n)
    }
}

impl GemmImplementation for CpuSingle {
    fn name(&self) -> &'static str {
        "CPU-Single"
    }

    fn framework(&self) -> &'static str {
        "C++"
    }

    fn hardware(&self) -> Hardware {
        Hardware::Cpu
    }

    fn work_class(&self) -> WorkClass {
        WorkClass::CpuSingle
    }

    fn run(
        &mut self,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) -> Result<GemmOutcome, GemmError> {
        if n == 0 || a.len() < n * n || b.len() < n * n || c.len() < n * n {
            return Err(GemmError::Dimension(format!(
                "need n>0 and n² elements (n={n}, a={}, b={}, c={})",
                a.len(),
                b.len(),
                c.len()
            )));
        }
        let flops = gemm_flops(n as u64);
        let functional = flops <= self.functional_limit;
        if functional {
            // The literal triple loop of the paper's baseline.
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for k in 0..n {
                        acc += a[i * n + k] * b[k * n + j];
                    }
                    c[i * n + j] = acc;
                }
            }
        }
        let duration = SimDuration::from_secs_f64(flops as f64 / (self.modeled_gflops(n) * 1e9));
        Ok(GemmOutcome {
            duration,
            flops,
            functional,
            duty: 1.0,
        })
    }

    fn model_run(&mut self, n: usize) -> Result<GemmOutcome, GemmError> {
        if n == 0 {
            return Err(GemmError::Dimension("n must be positive".into()));
        }
        let flops = gemm_flops(n as u64);
        let duration = SimDuration::from_secs_f64(flops as f64 / (self.modeled_gflops(n) * 1e9));
        Ok(GemmOutcome {
            duration,
            flops,
            functional: false,
            duty: 1.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_gemm;

    #[test]
    fn computes_correct_products() {
        let n = 16;
        let a: Vec<f32> = (0..n * n).map(|i| (i % 5) as f32 * 0.5).collect();
        let b: Vec<f32> = (0..n * n).map(|i| (i % 3) as f32 * 0.25).collect();
        let mut c = vec![0.0f32; n * n];
        let mut expected = vec![0.0f32; n * n];
        CpuSingle::new(ChipGeneration::M1)
            .run(n, &a, &b, &mut c)
            .unwrap();
        reference_gemm(n, &a, &b, &mut expected);
        assert_eq!(c, expected);
    }

    #[test]
    fn throughput_is_around_one_gflops() {
        // The defining property of the baseline: orders of magnitude below
        // Accelerate, roughly constant-per-clock across chips.
        for chip in ChipGeneration::ALL {
            let implementation = CpuSingle::new(chip);
            let g = implementation.modeled_gflops(512);
            assert!((1.5..4.0).contains(&g), "{chip}: {g}");
        }
    }

    #[test]
    fn large_problems_degrade() {
        let implementation = CpuSingle::new(ChipGeneration::M2);
        assert!(implementation.modeled_gflops(4096) < 0.6 * implementation.modeled_gflops(256));
    }

    #[test]
    fn cubic_time_growth() {
        let mut implementation = CpuSingle::new(ChipGeneration::M3).with_functional_limit(0);
        let run = |imp: &mut CpuSingle, n: usize| {
            let mut c = vec![0.0f32; n * n];
            imp.run(n, &vec![0.0; n * n], &vec![0.0; n * n], &mut c)
                .unwrap()
                .duration
        };
        let t256 = run(&mut implementation, 256);
        let t512 = run(&mut implementation, 512);
        let ratio = t512.as_secs_f64() / t256.as_secs_f64();
        assert!(ratio > 7.0 && ratio < 9.5, "{ratio}");
    }

    #[test]
    fn dimension_errors() {
        let mut implementation = CpuSingle::new(ChipGeneration::M1);
        let mut c = vec![0.0f32; 4];
        assert!(implementation.run(0, &[], &[], &mut c).is_err());
        assert!(implementation
            .run(4, &[0.0; 4], &[0.0; 16], &mut c)
            .is_err());
    }

    #[test]
    fn metadata() {
        let implementation = CpuSingle::new(ChipGeneration::M4);
        assert_eq!(implementation.name(), "CPU-Single");
        assert_eq!(implementation.framework(), "C++");
        assert_eq!(implementation.hardware(), Hardware::Cpu);
        assert_eq!(implementation.work_class(), WorkClass::CpuSingle);
    }
}
