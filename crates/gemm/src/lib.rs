//! # oranges-gemm — the paper's GEMM benchmark implementations
//!
//! Table 2 of the paper lists the matrix-multiplication implementations
//! under test:
//!
//! | Implementation              | Framework  | Hardware |
//! |-----------------------------|------------|----------|
//! | Naive algorithm             | C++        | CPU      |
//! | (OpenMP tiled, §3.2)        | C++/OpenMP | CPU      |
//! | BLAS/vDSP                   | Accelerate | CPU      |
//! | Naive algorithm as shader   | Metal      | GPU      |
//! | Cutlass-style tiled shader  | Metal      | GPU      |
//! | Metal Performance Shaders   | Metal      | GPU      |
//!
//! Every implementation here realizes the [`GemmImplementation`] trait:
//! functional execution (real FP32 results, verified against a reference)
//! plus modeled timing from the substrate it runs on. Matrices follow the
//! paper's §3.2 discipline: dense, FP32, `R ∈ [0, 1)`, page-aligned
//! allocations extended to 16 KiB multiples so GPU wraps are zero-copy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu_accelerate;
pub mod cpu_omp;
pub mod cpu_single;
pub mod error;
pub mod gpu_mps;
pub mod gpu_shader;
pub mod matrix;
pub mod suite;
pub mod verify;

pub use error::GemmError;
pub use matrix::{gemm_flops, Matrix};
pub use suite::{paper_sizes, suite_for, Hardware, ImplementationInfo};
pub use verify::{verify_sampled, VerifyOutcome};

use oranges_powermetrics::WorkClass;
use oranges_soc::time::SimDuration;
use serde::Serialize;

/// Outcome of one GEMM run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GemmOutcome {
    /// Modeled duration (the paper's `high_resolution_clock` delta).
    pub duration: SimDuration,
    /// FLOPs performed: `n²(2n−1)`.
    pub flops: u64,
    /// Whether real arithmetic ran (below the functional ceiling).
    pub functional: bool,
    /// Busy fraction of the window (for power accounting).
    pub duty: f64,
}

impl GemmOutcome {
    /// Achieved GFLOPS — the Figure 2 quantity.
    pub fn gflops(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.flops as f64 / secs / 1e9
        }
    }
}

/// One Table 2 implementation.
pub trait GemmImplementation {
    /// Figure legend name ("CPU-Single", "GPU-MPS", …).
    fn name(&self) -> &'static str;

    /// Framework column of Table 2.
    fn framework(&self) -> &'static str;

    /// Hardware column of Table 2.
    fn hardware(&self) -> Hardware;

    /// Power-model calibration class.
    fn work_class(&self) -> WorkClass;

    /// Multiply `c := a · b` for square `n×n` row-major FP32 matrices.
    fn run(
        &mut self,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) -> Result<GemmOutcome, GemmError>;

    /// Model-only run: the timing/power outcome of an `n×n` multiply
    /// without touching (or allocating) matrix data. The figure sweeps use
    /// this for the paper's largest sizes, where one operand alone is a
    /// gigabyte.
    fn model_run(&mut self, n: usize) -> Result<GemmOutcome, GemmError>;
}
