//! CPU-OMP: the multi-threaded tiled CPU GEMM (§3.2).
//!
//! The paper uses an open-source "Block-Matrix-Multiplication-OpenMP"
//! implementation — blocked loops parallelized with OpenMP but not
//! hand-vectorized, which is why Figure 2 shows it only a few times faster
//! than the naive baseline (and why Figure 4 keeps both CPU loops below
//! 1 GFLOPS/W). Functionally we run the cache-blocked macrokernel
//! ([`oranges_kernels::block`]) across all host cores: each worker owns a
//! disjoint row slab and its own pack buffers, with block sizes derived
//! from the simulated chip's per-core cache geometry. Timing comes from
//! the calibrated model.

use crate::error::GemmError;
use crate::matrix::gemm_flops;
use crate::suite::Hardware;
use crate::{GemmImplementation, GemmOutcome};
use oranges_accelerate::threading::parallel_row_blocks;
use oranges_kernels::{sgemm_f32_blocked, CacheParams};
use oranges_powermetrics::WorkClass;
use oranges_soc::chip::ChipGeneration;
use oranges_soc::time::SimDuration;

/// Sustained full-complex GFLOPS at large n: the naive per-core rate times
/// a parallel-efficiency-weighted core count. The open-source blocked
/// OpenMP code is not hand-vectorized and contends on the shared L2, so
/// parallel efficiency is poor (~0.5 on P-cores, ~0.2 on E-cores) — which
/// is what keeps both plain-CPU loops under 1 GFLOPS/W in Figure 4.
fn peak_gflops(chip: ChipGeneration) -> f64 {
    let spec = chip.spec();
    let single = spec.p_clock_ghz * 0.69;
    let effective_cores = spec.p_cores as f64 * 0.52
        + spec.e_cores as f64 * 0.22 * (spec.e_clock_ghz / spec.p_clock_ghz);
    single * effective_cores
}

/// Thread-spawn overhead visible at small sizes.
fn ramp(n: usize) -> f64 {
    let nf = n as f64;
    1.0 / (1.0 + (110.0 / nf).powf(1.4))
}

/// The default functional ceiling (FLOPs).
pub const DEFAULT_FUNCTIONAL_LIMIT: u64 = 600_000_000;

/// OpenMP-style blocked multi-threaded CPU GEMM.
#[derive(Debug)]
pub struct CpuOmp {
    chip: ChipGeneration,
    workers: usize,
    functional_limit: u64,
}

impl CpuOmp {
    /// Implementation for a chip (worker count = physical cores, the best
    /// configuration of the paper's `OMP_NUM_THREADS` sweep).
    pub fn new(chip: ChipGeneration) -> Self {
        CpuOmp {
            chip,
            workers: chip.spec().total_cores() as usize,
            functional_limit: DEFAULT_FUNCTIONAL_LIMIT,
        }
    }

    /// Override the functional ceiling.
    pub fn with_functional_limit(mut self, limit: u64) -> Self {
        self.functional_limit = limit;
        self
    }

    /// Modeled sustained GFLOPS at size `n`.
    pub fn modeled_gflops(&self, n: usize) -> f64 {
        peak_gflops(self.chip) * ramp(n)
    }
}

impl GemmImplementation for CpuOmp {
    fn name(&self) -> &'static str {
        "CPU-OMP"
    }

    fn framework(&self) -> &'static str {
        "C++/OpenMP"
    }

    fn hardware(&self) -> Hardware {
        Hardware::Cpu
    }

    fn work_class(&self) -> WorkClass {
        WorkClass::CpuOmp
    }

    fn run(
        &mut self,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) -> Result<GemmOutcome, GemmError> {
        if n == 0 || a.len() < n * n || b.len() < n * n || c.len() < n * n {
            return Err(GemmError::Dimension(format!(
                "need n>0 and n² elements (n={n})"
            )));
        }
        let flops = gemm_flops(n as u64);
        let functional = flops <= self.functional_limit;
        if functional {
            // Blocked macrokernel per worker: each thread runs the Goto
            // schedule over its disjoint MC-aligned row slab with private
            // pack buffers, block sizes from the chip's per-core caches.
            let spec = self.chip.spec();
            let cache = CacheParams::new(
                spec.l1_p_kib as usize * 1024,
                spec.l2_p_mib as usize * 1024 * 1024,
            );
            parallel_row_blocks(c, n, n, self.workers, |rows, block| {
                sgemm_f32_blocked(
                    rows.len(),
                    n,
                    n,
                    &a[rows.start * n..],
                    n,
                    b,
                    n,
                    block,
                    n,
                    &cache,
                );
            });
        }
        let duration = SimDuration::from_secs_f64(flops as f64 / (self.modeled_gflops(n) * 1e9));
        Ok(GemmOutcome {
            duration,
            flops,
            functional,
            duty: 1.0,
        })
    }

    fn model_run(&mut self, n: usize) -> Result<GemmOutcome, GemmError> {
        if n == 0 {
            return Err(GemmError::Dimension("n must be positive".into()));
        }
        let flops = gemm_flops(n as u64);
        let duration = SimDuration::from_secs_f64(flops as f64 / (self.modeled_gflops(n) * 1e9));
        Ok(GemmOutcome {
            duration,
            flops,
            functional: false,
            duty: 1.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{reference_gemm, verify_dense};

    #[test]
    fn computes_products_bitwise_equal_to_reference() {
        // The blocked macrokernel is bitwise-identical to the scalar
        // reference, so the fused dense sweep must find zero ULPs.
        for n in [8usize, 64, 100] {
            let a: Vec<f32> = (0..n * n)
                .map(|i| ((i * 13 + 5) % 11) as f32 * 0.1)
                .collect();
            let b: Vec<f32> = (0..n * n).map(|i| ((i * 7 + 3) % 9) as f32 * 0.2).collect();
            let mut c = vec![0.0f32; n * n];
            let mut expected = vec![0.0f32; n * n];
            CpuOmp::new(ChipGeneration::M1)
                .run(n, &a, &b, &mut c)
                .unwrap();
            reference_gemm(n, &a, &b, &mut expected);
            let outcome = verify_dense(&c, &expected, 0.0);
            assert!(outcome.passed && outcome.max_ulp == 0, "n={n}: {outcome:?}");
        }
    }

    #[test]
    fn sits_between_naive_and_accelerate() {
        use crate::cpu_single::CpuSingle;
        for chip in ChipGeneration::ALL {
            let omp = CpuOmp::new(chip).modeled_gflops(2048);
            let single = CpuSingle::new(chip).modeled_gflops(2048);
            let accelerate =
                oranges_accelerate::timing::AccelerateModel::of(chip).sustained_gflops(2048);
            assert!(omp > 2.0 * single, "{chip}: OMP {omp} vs single {single}");
            assert!(
                omp < accelerate / 10.0,
                "{chip}: OMP {omp} vs Accelerate {accelerate}"
            );
        }
    }

    #[test]
    fn keeps_under_one_gflops_per_watt() {
        // Figure 4: CPU-Single and CPU-OMP both < 1 GFLOPS/W everywhere.
        use oranges_powermetrics::PowerModel;
        for chip in ChipGeneration::ALL {
            let gflops = CpuOmp::new(chip).modeled_gflops(4096);
            let watts = PowerModel::of(chip).active_watts(WorkClass::CpuOmp);
            assert!(gflops / watts < 1.0, "{chip}: {}", gflops / watts);
        }
    }

    #[test]
    fn small_sizes_pay_thread_overhead() {
        let implementation = CpuOmp::new(ChipGeneration::M3);
        assert!(implementation.modeled_gflops(32) < 0.35 * implementation.modeled_gflops(2048));
    }

    #[test]
    fn metadata() {
        let implementation = CpuOmp::new(ChipGeneration::M2);
        assert_eq!(implementation.name(), "CPU-OMP");
        assert_eq!(implementation.framework(), "C++/OpenMP");
        assert_eq!(implementation.work_class(), WorkClass::CpuOmp);
    }
}
