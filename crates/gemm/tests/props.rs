//! Property tests: all six implementations agree on random inputs, and
//! the model invariants hold across the size grid.

use oranges_gemm::gemm_flops;
use oranges_gemm::suite::{paper_sizes, skips_size, suite_for};
use oranges_gemm::verify::{reference_gemm, verify_sampled};
use oranges_soc::chip::ChipGeneration;
use proptest::prelude::*;

fn any_generation() -> impl Strategy<Value = ChipGeneration> {
    prop_oneof![
        Just(ChipGeneration::M1),
        Just(ChipGeneration::M2),
        Just(ChipGeneration::M3),
        Just(ChipGeneration::M4),
    ]
}

fn random_matrix(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(99);
    (0..n * n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u32 << 24) as f32
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_implementations_agree(gen in any_generation(), n in 1usize..40, seed in 0u64..500) {
        let a = random_matrix(n, seed);
        let b = random_matrix(n, seed + 1);
        let mut expected = vec![0.0f32; n * n];
        reference_gemm(n, &a, &b, &mut expected);
        for mut implementation in suite_for(gen) {
            let mut c = vec![0.0f32; n * n];
            let outcome = implementation.run(n, &a, &b, &mut c).unwrap();
            prop_assert!(outcome.functional);
            prop_assert_eq!(outcome.flops, gemm_flops(n as u64));
            let tol = 1e-4f32 * n as f32 + 1e-5;
            for idx in 0..n * n {
                prop_assert!((c[idx] - expected[idx]).abs() <= tol * (1.0 + expected[idx].abs()),
                    "{} n={} idx={}: {} vs {}", implementation.name(), n, idx, c[idx], expected[idx]);
            }
        }
    }

    #[test]
    fn model_run_matches_run_timing(gen in any_generation(), n in 8usize..64) {
        // The model-only path must price identically to the full path.
        let a = random_matrix(n, 3);
        let b = random_matrix(n, 4);
        for mut implementation in suite_for(gen) {
            let mut c = vec![0.0f32; n * n];
            let full = implementation.run(n, &a, &b, &mut c).unwrap();
            let modeled = implementation.model_run(n).unwrap();
            prop_assert_eq!(full.duration, modeled.duration, "{}", implementation.name());
            prop_assert_eq!(full.flops, modeled.flops);
        }
    }

    #[test]
    fn modeled_time_monotone_in_n(gen in any_generation(), step in 1usize..5) {
        for mut implementation in suite_for(gen) {
            let n1 = 128 * step;
            let n2 = n1 * 2;
            let t1 = implementation.model_run(n1).unwrap().duration;
            let t2 = implementation.model_run(n2).unwrap().duration;
            prop_assert!(t2 > t1, "{}: {} !> {}", implementation.name(), t2, t1);
        }
    }

    #[test]
    fn duty_is_a_fraction(gen in any_generation(), n in 1usize..2048) {
        for mut implementation in suite_for(gen) {
            let outcome = implementation.model_run(n).unwrap();
            prop_assert!((0.0..=1.0).contains(&outcome.duty), "{}", implementation.name());
        }
    }

    #[test]
    fn verifier_accepts_reference_products(n in 1usize..48, seed in 0u64..200) {
        let a = random_matrix(n, seed);
        let b = random_matrix(n, seed + 7);
        let mut c = vec![0.0f32; n * n];
        reference_gemm(n, &a, &b, &mut c);
        let outcome = verify_sampled(n, &a, &b, &c, 32, seed, 1e-5);
        prop_assert!(outcome.passed, "max rel {}", outcome.max_rel_error);
    }

    #[test]
    fn skip_rules_only_affect_plain_cpu(n_idx in 0usize..10) {
        let n = paper_sizes()[n_idx];
        for name in ["CPU-Accelerate", "GPU-Naive", "GPU-CUTLASS", "GPU-MPS"] {
            prop_assert!(!skips_size(name, n));
        }
        prop_assert_eq!(skips_size("CPU-Single", n), n >= 8192);
        prop_assert_eq!(skips_size("CPU-OMP", n), n >= 8192);
    }
}
