//! In-tree stand-in for `crossbeam`.
//!
//! Only the scoped-thread API is used in this workspace, and Rust has had
//! native scoped threads since 1.63 — so `crossbeam::thread::scope`
//! delegates to [`std::thread::scope`] while keeping crossbeam's call
//! shape (`scope` returns a `Result`, spawn closures receive the scope).

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    /// Result of a scope: `Err` would carry a child panic payload;
    /// with the std backend a child panic propagates instead, which
    /// callers observe identically (they `.expect(..)` the result).
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle passed to `scope` closures and re-passed to every
    /// spawned thread (crossbeam's nested-spawn shape).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the
        /// scope again, so it can spawn nested work.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Create a scope; all threads spawned within are joined before it
    /// returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_before_return() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .expect("scope completes");
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn scoped_threads_can_borrow_disjoint_chunks() {
        let mut data = vec![0u64; 64];
        super::thread::scope(|scope| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                scope.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i as u64 + 1;
                    }
                });
            }
        })
        .expect("scope completes");
        assert!(data.iter().all(|&v| v >= 1));
    }
}
