//! In-tree stand-in for `proptest`.
//!
//! Deterministic randomized property testing with proptest's call shape:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, range / `Just`
//! / `prop_oneof!` / collection / char-class-regex strategies. No
//! shrinking — a failing case panics with the generated inputs' debug
//! representation instead, which is enough to reproduce (generation is
//! seeded per test).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run one property-test body over `cases` generated inputs.
///
/// Used by the `proptest!` macro expansion; not public API.
#[doc(hidden)]
pub fn run_cases<F>(name: &str, cases: u32, mut body: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    // Seed from the test name so each test gets a distinct but stable
    // stream.
    let mut seed = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    let mut rng = test_runner::TestRng::new(seed);
    for case in 0..cases {
        if let Err(e) = body(&mut rng) {
            panic!("proptest case {case}/{cases} of `{name}` failed: {e}");
        }
    }
}

/// The `proptest!` block macro: wraps `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                $crate::run_cases(stringify!($name), __config.cases, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Assert inside a property test; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)+), __l, __r),
            ));
        }
    }};
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Choose uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn oneof_and_vec(v in crate::collection::vec(prop_oneof![Just(1u8), Just(9u8)], 1..8)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&b| b == 1 || b == 9));
        }

        #[test]
        fn regex_charclass_strings(s in "[ab]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "{s:?}");
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }
}
