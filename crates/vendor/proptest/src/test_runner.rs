//! Test configuration, RNG, and failure type.

use std::fmt;

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generation RNG (xoshiro256++, SplitMix64-seeded).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
