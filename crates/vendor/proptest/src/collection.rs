//! Collection strategies (`vec`, `btree_map`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::Range;

/// Anything usable as a collection size: a fixed size or a range.
pub trait IntoSizeRange {
    /// Lower bound (inclusive) and upper bound (exclusive).
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max_exclusive - self.min).max(1) as u64;
        let len = self.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate vectors of `element` values.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max_exclusive) = size.bounds();
    assert!(min < max_exclusive, "empty size range");
    VecStrategy {
        element,
        min,
        max_exclusive,
    }
}

/// Strategy for `BTreeMap<K, V>`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    min: usize,
    max_exclusive: usize,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let span = (self.max_exclusive - self.min).max(1) as u64;
        let len = self.min + rng.below(span) as usize;
        // Duplicate keys collapse, like upstream proptest; the requested
        // size is an upper bound in that case.
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

/// Generate maps of `key -> value` entries.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl IntoSizeRange,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    let (min, max_exclusive) = size.bounds();
    assert!(min < max_exclusive, "empty size range");
    BTreeMapStrategy {
        key,
        value,
        min,
        max_exclusive,
    }
}
