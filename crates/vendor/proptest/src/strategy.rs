//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can generate values of one type.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies are strategies (proptest's composite shape).
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build from the arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies.
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start + (rng.next_u64() as u128 % span) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $ty * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// `any::<T>()`.
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, sign-symmetric, wide dynamic range — degenerate floats
        // (NaN/inf) are not useful to the numeric properties under test.
        let magnitude = (rng.unit_f64() as f32) * 1e6;
        if rng.next_u64() & 1 == 1 {
            -magnitude
        } else {
            magnitude
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let magnitude = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -magnitude
        } else {
            magnitude
        }
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy wrapper for [`Arbitrary`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Char-class regex strings: `"[a-z0-9]{0,20}"` as a strategy.
// ---------------------------------------------------------------------------

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_charclass(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parse `[class]{m,n}` / `[class]{n}` / `[class]*` / `[class]+` patterns.
fn parse_charclass(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let mut close = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' => escaped = true,
            ']' => {
                close = Some(i);
                break;
            }
            _ => {}
        }
    }
    let (class, tail) = rest.split_at(close?);
    let tail = &tail[1..];

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = match chars[i] {
            '\\' => {
                i += 1;
                *chars.get(i)?
            }
            c => c,
        };
        if chars.get(i + 1) == Some(&'-') && i + 2 < chars.len() {
            let hi = chars[i + 2];
            for code in c as u32..=hi as u32 {
                alphabet.push(char::from_u32(code)?);
            }
            i += 3;
        } else {
            alphabet.push(c);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }

    let (min, max) = match tail {
        "" => (1, 1),
        "*" => (0, 8),
        "+" => (1, 8),
        _ => {
            let inner = tail.strip_prefix('{')?.strip_suffix('}')?;
            match inner.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
                None => {
                    let n = inner.trim().parse().ok()?;
                    (n, n)
                }
            }
        }
    };
    Some((alphabet, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charclass_parses_ranges_and_escapes() {
        let (alphabet, min, max) = parse_charclass("[a-cXYZ \\]]{0,5}").unwrap();
        assert_eq!(min, 0);
        assert_eq!(max, 5);
        for c in ['a', 'b', 'c', 'X', 'Y', 'Z', ' ', ']'] {
            assert!(alphabet.contains(&c), "{c}");
        }
    }

    #[test]
    fn int_ranges_cover_bounds_eventually() {
        let mut rng = TestRng::new(1);
        let strat = 0u8..4;
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
