//! The serialization half: `Serialize`, `Serializer`, and the compound
//! traits, with the exact method surface real serde exposes (minus the
//! 128-bit integers, which nothing here serializes).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Display;

/// Error values produced by a [`Serializer`].
pub trait Error: Sized + std::error::Error {
    /// Build an error from a custom message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serialize `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Compound serializer for sequences.
pub trait SerializeSeq {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for tuples.
pub trait SerializeTuple {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for tuple structs.
pub trait SerializeTupleStruct {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for tuple enum variants.
pub trait SerializeTupleVariant {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for maps.
pub trait SerializeMap {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one key.
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serialize one value.
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for structs.
pub trait SerializeStruct {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for struct enum variants.
pub trait SerializeStructVariant {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// A format backend: receives the data model events.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sequence state.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple state.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-struct state.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-variant state.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Map state.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct state.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant state.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialize `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Some(value)`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype struct.
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant.
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begin a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begin a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begin a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for the std types the workspace's report model uses.
// ---------------------------------------------------------------------------

macro_rules! primitive_impl {
    ($ty:ty, $method:ident $(, $cast:ty)?) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self $(as $cast)?)
            }
        }
    };
}

primitive_impl!(bool, serialize_bool);
primitive_impl!(i8, serialize_i8);
primitive_impl!(i16, serialize_i16);
primitive_impl!(i32, serialize_i32);
primitive_impl!(i64, serialize_i64);
primitive_impl!(isize, serialize_i64, i64);
primitive_impl!(u8, serialize_u8);
primitive_impl!(u16, serialize_u16);
primitive_impl!(u32, serialize_u32);
primitive_impl!(u64, serialize_u64);
primitive_impl!(usize, serialize_u64, u64);
primitive_impl!(f32, serialize_f32);
primitive_impl!(f64, serialize_f64);
primitive_impl!(char, serialize_char);

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<'a, S, T>(
    serializer: S,
    iter: impl ExactSizeIterator<Item = &'a T>,
) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
{
    let mut seq = serializer.serialize_seq(Some(iter.len()))?;
    for item in iter {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

macro_rules! tuple_impl {
    ($len:expr => $($idx:tt $name:ident)+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tuple = serializer.serialize_tuple($len)?;
                $(tuple.serialize_element(&self.$idx)?;)+
                tuple.end()
            }
        }
    };
}

tuple_impl!(1 => 0 T0);
tuple_impl!(2 => 0 T0 1 T1);
tuple_impl!(3 => 0 T0 1 T1 2 T2);
tuple_impl!(4 => 0 T0 1 T1 2 T2 3 T3);
tuple_impl!(5 => 0 T0 1 T1 2 T2 3 T3 4 T4);

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_key(key)?;
            map.serialize_value(value)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_key(key)?;
            map.serialize_value(value)?;
        }
        map.end()
    }
}
