//! In-tree stand-in for `serde`.
//!
//! The build environment has no network registry, so the workspace ships
//! the subset of serde it actually uses: the [`Serialize`] trait with the
//! full `ser` dispatch surface (the harness implements a JSON emitter over
//! it), a marker [`Deserialize`] trait, impls for the std types the report
//! model needs, and the two derive macros.

#![forbid(unsafe_code)]

pub mod ser;

/// Deserialization marker.
///
/// Nothing in the workspace deserializes (reports flow out, never back
/// in), so the trait carries no methods; the derive emits an empty impl.
pub mod de {
    /// Marker trait: the type is declared deserializable.
    pub trait Deserialize<'de>: Sized {}
}

pub use de::Deserialize;
pub use ser::{Serialize, Serializer};
#[allow(unused_imports)]
pub use serde_derive::{Deserialize, Serialize};
