//! In-tree stand-in for `criterion`.
//!
//! Keeps the macro/builder call shape so bench sources compile unchanged,
//! and actually runs every closure: a short warm-up, then a timed batch,
//! printing mean time per iteration and derived throughput. No outlier
//! analysis or HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement throughput hint for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the benchmark closure; `iter` runs the measured body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `body` repeatedly and record the mean time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up + calibration: aim for a batch around ~100 ms, capped.
        let start = Instant::now();
        std::hint::black_box(body());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(100);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(body());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration work volume for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        body(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        body(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Finish the group (prints nothing extra; kept for API shape).
    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        if bencher.iters == 0 {
            println!("{}/{id}: no measurement (iter was never called)", self.name);
            return;
        }
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                format!(
                    ", {:.2} GiB/s",
                    bytes as f64 / per_iter / (1u64 << 30) as f64
                )
            }
            Some(Throughput::Elements(elements)) => {
                format!(", {:.2} Melem/s", elements as f64 / per_iter / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: {:.3} ms/iter ({} iters{rate})",
            self.name,
            per_iter * 1e3,
            bencher.iters
        );
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
