//! In-tree `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Implemented directly over `proc_macro` (the build environment has no
//! registry, so `syn`/`quote` are unavailable). The parser covers what the
//! workspace derives on: non-generic structs (named, tuple, unit) and
//! enums (unit, newtype, tuple, struct variants), plus the
//! `#[serde(skip)]` field attribute. Anything fancier fails loudly with a
//! `compile_error!` rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

/// Derive `serde::Deserialize` (marker impl; nothing deserializes here).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => format!(
            "impl<'de> ::serde::de::Deserialize<'de> for {} {{}}",
            item.name
        )
        .parse()
        .expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error token parses")
}

// ---------------------------------------------------------------------------
// A minimal item model.
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Body {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

/// Consume leading attributes; report whether any was `#[serde(skip)]`.
fn eat_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(id)) = inner.first() {
                        if id.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.get(1) {
                                if args.stream().to_string().contains("skip") {
                                    skip = true;
                                }
                            }
                        }
                    }
                    i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (i, skip)
}

/// Consume a visibility qualifier (`pub`, `pub(...)`).
fn eat_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Skip tokens until a top-level comma (angle-bracket aware); return the
/// index just past the comma (or `tokens.len()`).
fn skip_past_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, skip) = eat_attrs(&tokens, i);
        i = eat_vis(&tokens, next);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("unexpected token in fields: {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        i = skip_past_comma(&tokens, i);
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = eat_attrs(&tokens, i);
        i = eat_vis(&tokens, next);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_past_comma(&tokens, i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = eat_attrs(&tokens, i);
        i = next;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("unexpected token in enum: {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream())?)
            }
            _ => Shape::Unit,
        };
        i = skip_past_comma(&tokens, i);
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        let (next, _) = eat_attrs(&tokens, i);
        i = eat_vis(&tokens, next);
        match tokens.get(i) {
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break
            }
            Some(_) => i += 1,
            None => return Err("expected `struct` or `enum`".into()),
        }
    }
    let is_struct = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "struct");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "derive on generic type `{name}` is not supported by the in-tree serde_derive"
            ));
        }
    }
    let body = if is_struct {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Shape::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Shape::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Shape::Unit),
            other => return Err(format!("unexpected struct body: {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        }
    };
    Ok(Item { name, body })
}

// ---------------------------------------------------------------------------
// Code generation (string-based; parsed back into a TokenStream).
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Shape::Unit) => {
            format!("__serializer.serialize_unit_struct({name:?})")
        }
        Body::Struct(Shape::Tuple(1)) => {
            format!("__serializer.serialize_newtype_struct({name:?}, &self.0)")
        }
        Body::Struct(Shape::Tuple(n)) => {
            let mut code = format!(
                "let mut __state = ::serde::ser::Serializer::serialize_tuple_struct(__serializer, {name:?}, {n})?;\n"
            );
            for idx in 0..*n {
                code += &format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{idx})?;\n"
                );
            }
            code += "::serde::ser::SerializeTupleStruct::end(__state)";
            code
        }
        Body::Struct(Shape::Named(fields)) => {
            let kept: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut code = format!(
                "let mut __state = ::serde::ser::Serializer::serialize_struct(__serializer, {name:?}, {})?;\n",
                kept.len()
            );
            for f in &kept {
                code += &format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, {:?}, &self.{})?;\n",
                    f.name, f.name
                );
            }
            code += "::serde::ser::SerializeStruct::end(__state)";
            code
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (index, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        arms += &format!(
                            "{name}::{vname} => __serializer.serialize_unit_variant({name:?}, {index}u32, {vname:?}),\n"
                        );
                    }
                    Shape::Tuple(1) => {
                        arms += &format!(
                            "{name}::{vname}(__f0) => __serializer.serialize_newtype_variant({name:?}, {index}u32, {vname:?}, __f0),\n"
                        );
                    }
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\nlet mut __state = ::serde::ser::Serializer::serialize_tuple_variant(__serializer, {name:?}, {index}u32, {vname:?}, {n})?;\n",
                            binders.join(", ")
                        );
                        for b in &binders {
                            arm += &format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {b})?;\n"
                            );
                        }
                        arm += "::serde::ser::SerializeTupleVariant::end(__state)\n},\n";
                        arms += &arm;
                    }
                    Shape::Named(fields) => {
                        let kept: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                        let binders: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut __state = ::serde::ser::Serializer::serialize_struct_variant(__serializer, {name:?}, {index}u32, {vname:?}, {})?;\n",
                            binders.join(", "),
                            kept.len()
                        );
                        for f in &kept {
                            arm += &format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __state, {:?}, {})?;\n",
                                f.name, f.name
                            );
                        }
                        arm += "::serde::ser::SerializeStructVariant::end(__state)\n},\n";
                        arms += &arm;
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\n}}\n}}"
    )
}
