//! In-tree stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API (lock
//! methods return guards directly). A poisoned std lock means a thread
//! panicked while holding it; parking_lot would have released it, so the
//! wrappers recover the inner guard instead of propagating the poison.

#![forbid(unsafe_code)]

use std::sync;

/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new lock.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never carry poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
