//! In-tree stand-in for `rand`.
//!
//! The workspace only needs deterministic seeded uniform sampling
//! (`StdRng::seed_from_u64` + `gen_range`); this module provides exactly
//! that over a xoshiro256++ generator. The stream differs from upstream
//! rand's StdRng, which is fine: every consumer seeds explicitly and only
//! relies on reproducibility, not on a particular stream.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniformly sampleable over a half-open range.
pub trait SampleUniform: Sized + Copy {
    /// Draw a value in `[low, high)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty sample range");
                let span = (high as i128 - low as i128) as u128;
                low + (rng.next_u64() as u128 % span) as $ty
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty sample range");
                let unit = (rng.next_u64() >> 11) as $ty / (1u64 << 53) as $ty;
                low + unit * (high - low)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// The user-facing sampling surface.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }
}
