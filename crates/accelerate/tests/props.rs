//! Property tests: BLAS against a scalar reference over random shapes,
//! transposes and scalars; timing-model invariants.

use oranges_accelerate::blas::{Blas, Order, Transpose};
use oranges_accelerate::threading::row_blocks;
use oranges_accelerate::timing::AccelerateModel;
use oranges_soc::chip::ChipGeneration;
use proptest::prelude::*;

fn any_generation() -> impl Strategy<Value = ChipGeneration> {
    prop_oneof![
        Just(ChipGeneration::M1),
        Just(ChipGeneration::M2),
        Just(ChipGeneration::M3),
        Just(ChipGeneration::M4),
    ]
}

fn any_transpose() -> impl Strategy<Value = Transpose> {
    prop_oneof![Just(Transpose::NoTrans), Just(Transpose::Trans)]
}

#[allow(clippy::too_many_arguments)]
fn reference(
    trans_a: Transpose,
    trans_b: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c0: &[f32],
) -> Vec<f32> {
    let mut c = c0.to_vec();
    let lda = match trans_a {
        Transpose::NoTrans => k,
        Transpose::Trans => m,
    };
    let ldb = match trans_b {
        Transpose::NoTrans => n,
        Transpose::Trans => k,
    };
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                let a_il = match trans_a {
                    Transpose::NoTrans => a[i * lda + l],
                    Transpose::Trans => a[l * lda + i],
                };
                let b_lj = match trans_b {
                    Transpose::NoTrans => b[l * ldb + j],
                    Transpose::Trans => b[j * ldb + l],
                };
                acc += a_il * b_lj;
            }
            c[i * n + j] = alpha * acc + beta * c0[i * n + j];
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sgemm_matches_reference(
        gen in any_generation(),
        trans_a in any_transpose(),
        trans_b in any_transpose(),
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..24,
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        seed in 0u64..1000,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(5);
        let mut next = move || {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
        };
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let c0: Vec<f32> = (0..m * n).map(|_| next()).collect();
        let mut c = c0.clone();

        let (lda, ldb) = (
            match trans_a { Transpose::NoTrans => k, Transpose::Trans => m },
            match trans_b { Transpose::NoTrans => n, Transpose::Trans => k },
        );
        let blas = Blas::new(gen);
        let report = blas
            .sgemm(Order::RowMajor, trans_a, trans_b, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, n)
            .unwrap();
        prop_assert!(report.functional);
        let expected = reference(trans_a, trans_b, m, n, k, alpha, &a, &b, beta, &c0);
        for idx in 0..m * n {
            let tol = 1e-4f32 * k as f32 + 1e-4;
            prop_assert!((c[idx] - expected[idx]).abs() <= tol * (1.0 + expected[idx].abs()),
                "idx {}: {} vs {}", idx, c[idx], expected[idx]);
        }
    }

    #[test]
    fn duration_monotone_when_rate_is_fixed(
        gen in any_generation(),
        m in 1u64..2048,
        n in 1u64..2048,
        k in 1u64..2048,
    ) {
        // The sustained rate is keyed to the *minimum* dimension, so
        // growing a non-minimal dimension adds FLOPs at a fixed rate and
        // can only lengthen the call. (Growing the minimal dimension can
        // legitimately *shorten* it — a k=1 GEMM is pathologically
        // inefficient — so that direction is not asserted.)
        let model = AccelerateModel::of(gen);
        let base = model.gemm_duration(m, n, k);
        let min = m.min(n).min(k);
        if m > min {
            prop_assert!(model.gemm_duration(m + 64, n, k) >= base);
        }
        if n > min {
            prop_assert!(model.gemm_duration(m, n + 64, k) >= base);
        }
        if k > min {
            prop_assert!(model.gemm_duration(m, n, k + 64) >= base);
        }
        // Square problems are always monotone.
        let square = model.sgemm_duration(min);
        prop_assert!(model.sgemm_duration(min + 64) >= square);
    }

    #[test]
    fn sustained_gflops_bounded_by_amx_peak(gen in any_generation(), n in 1u64..100_000) {
        let model = AccelerateModel::of(gen);
        let sustained = model.sustained_gflops(n);
        prop_assert!(sustained >= 0.0);
        prop_assert!(sustained <= gen.spec().amx_gflops());
    }

    #[test]
    fn row_blocks_partition_exactly(rows in 1usize..5000, workers in 1usize..64) {
        let blocks = row_blocks(rows, workers);
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        prop_assert_eq!(total, rows);
        // Balanced: sizes differ by at most one.
        let min = blocks.iter().map(|b| b.len()).min().unwrap();
        let max = blocks.iter().map(|b| b.len()).max().unwrap();
        prop_assert!(max - min <= 1);
    }
}
