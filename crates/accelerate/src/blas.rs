//! `cblas_sgemm` — the call the paper's Listing 1 makes.
//!
//! ```c
//! cblas_sgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans,
//!             n, n, n, 1, left, n, right, n, 0, out, n);
//! ```
//!
//! The Rust-shaped equivalent keeps the full argument surface (order,
//! transposes, alpha/beta, leading dimensions), computes real FP32 results
//! on host threads (blocked over the performance-core count), and reports
//! modeled time from the AMX model.

use crate::threading::parallel_row_blocks;
use crate::timing::AccelerateModel;
use oranges_kernels::{sgemm_f32_blocked, CacheParams};
use oranges_soc::chip::ChipGeneration;
use oranges_soc::time::SimDuration;
use serde::Serialize;

/// Matrix storage order (only row-major, like the paper's call).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Order {
    /// `CblasRowMajor`.
    RowMajor,
}

/// Transposition flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Transpose {
    /// `CblasNoTrans`.
    NoTrans,
    /// `CblasTrans`.
    Trans,
}

/// Outcome of one BLAS call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BlasReport {
    /// Modeled duration on the AMX unit.
    pub duration: SimDuration,
    /// FLOPs of the call (`m·n·(2k−1)` plus beta/alpha fix-ups).
    pub flops: u64,
    /// Whether real arithmetic ran (below the functional limit).
    pub functional: bool,
}

impl BlasReport {
    /// Achieved GFLOPS over the modeled duration.
    pub fn gflops(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.flops as f64 / secs / 1e9
        }
    }
}

/// Default functional ceiling: matches the Metal device's
/// (`oranges_metal::device::DEFAULT_FUNCTIONAL_LIMIT`).
pub const DEFAULT_FUNCTIONAL_LIMIT: u64 = 600_000_000;

/// The BLAS entry points for one chip.
#[derive(Debug, Clone)]
pub struct Blas {
    model: AccelerateModel,
    workers: usize,
    functional_limit: u64,
    cache: CacheParams,
}

impl Blas {
    /// BLAS bound to a chip generation; functional work is parallelized
    /// over as many host threads as the chip has performance cores, with
    /// cache-blocking geometry from the chip's per-core L1/L2.
    pub fn new(chip: ChipGeneration) -> Self {
        let spec = chip.spec();
        Blas {
            model: AccelerateModel::of(chip),
            workers: spec.p_cores as usize,
            functional_limit: DEFAULT_FUNCTIONAL_LIMIT,
            cache: CacheParams::new(
                spec.l1_p_kib as usize * 1024,
                spec.l2_p_mib as usize * 1024 * 1024,
            ),
        }
    }

    /// Override the functional ceiling (0 = model-only, `u64::MAX` = always
    /// compute).
    pub fn with_functional_limit(mut self, limit: u64) -> Self {
        self.functional_limit = limit;
        self
    }

    /// The timing model.
    pub fn model(&self) -> &AccelerateModel {
        &self.model
    }

    /// `cblas_sgemm`: `C := alpha·op(A)·op(B) + beta·C`.
    ///
    /// Row-major. `op(A)` is `m×k`, `op(B)` is `k×n`, `C` is `m×n`.
    #[allow(clippy::too_many_arguments)]
    pub fn sgemm(
        &self,
        _order: Order,
        trans_a: Transpose,
        trans_b: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        beta: f32,
        c: &mut [f32],
        ldc: usize,
    ) -> Result<BlasReport, String> {
        // Dimension validation (CBLAS would abort; we return Err).
        let (a_rows, a_cols) = match trans_a {
            Transpose::NoTrans => (m, k),
            Transpose::Trans => (k, m),
        };
        let (b_rows, b_cols) = match trans_b {
            Transpose::NoTrans => (k, n),
            Transpose::Trans => (n, k),
        };
        if lda < a_cols.max(1) {
            return Err(format!("lda {lda} < op-source columns {a_cols}"));
        }
        if ldb < b_cols.max(1) {
            return Err(format!("ldb {ldb} < op-source columns {b_cols}"));
        }
        if ldc < n.max(1) {
            return Err(format!("ldc {ldc} < n {n}"));
        }
        let need_a = a_rows.saturating_sub(1) * lda + a_cols;
        let need_b = b_rows.saturating_sub(1) * ldb + b_cols;
        let need_c = m.saturating_sub(1) * ldc + n;
        if a.len() < need_a {
            return Err(format!("A holds {} elements, needs {need_a}", a.len()));
        }
        if b.len() < need_b {
            return Err(format!("B holds {} elements, needs {need_b}", b.len()));
        }
        if c.len() < need_c {
            return Err(format!("C holds {} elements, needs {need_c}", c.len()));
        }

        let flops = (m as u64) * (n as u64) * (2 * k as u64).max(1).saturating_sub(1).max(1);
        let functional = flops <= self.functional_limit;
        if functional && m > 0 && n > 0 {
            self.compute(
                trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
            );
        }

        Ok(BlasReport {
            duration: self.model.gemm_duration(m as u64, n as u64, k as u64),
            flops: if k == 0 { 0 } else { flops },
            functional,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn compute(
        &self,
        trans_a: Transpose,
        trans_b: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        beta: f32,
        c: &mut [f32],
        ldc: usize,
    ) {
        // The paper's Listing 1 shape — no transposes, alpha 1, beta 0,
        // packed C — routes through the cache-blocked macrokernel, one
        // row slab and private pack buffers per worker. Bitwise-identical
        // to the scalar triple loop.
        if trans_a == Transpose::NoTrans
            && trans_b == Transpose::NoTrans
            && alpha == 1.0
            && beta == 0.0
            && ldc == n
            && n > 0
        {
            parallel_row_blocks(c, m, n, self.workers, |rows, block| {
                sgemm_f32_blocked(
                    rows.len(),
                    n,
                    k,
                    &a[rows.start * lda..],
                    lda,
                    b,
                    ldb,
                    block,
                    n,
                    &self.cache,
                );
            });
            return;
        }
        // General fast path when C rows are packed; strided C falls back
        // to the single-threaded loop (parallel_row_blocks needs
        // contiguity).
        if ldc == n && n > 0 {
            parallel_row_blocks(c, m, n, self.workers, |rows, block| {
                for (local_i, i) in rows.clone().enumerate() {
                    let row = &mut block[local_i * n..(local_i + 1) * n];
                    for v in row.iter_mut() {
                        *v *= beta;
                    }
                    for l in 0..k {
                        let a_il = match trans_a {
                            Transpose::NoTrans => a[i * lda + l],
                            Transpose::Trans => a[l * lda + i],
                        } * alpha;
                        if a_il == 0.0 {
                            continue;
                        }
                        match trans_b {
                            Transpose::NoTrans => {
                                let b_row = &b[l * ldb..l * ldb + n];
                                for (v, &bv) in row.iter_mut().zip(b_row) {
                                    *v += a_il * bv;
                                }
                            }
                            Transpose::Trans => {
                                for (j, v) in row.iter_mut().enumerate() {
                                    *v += a_il * b[j * ldb + l];
                                }
                            }
                        }
                    }
                }
            });
        } else {
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for l in 0..k {
                        let a_il = match trans_a {
                            Transpose::NoTrans => a[i * lda + l],
                            Transpose::Trans => a[l * lda + i],
                        };
                        let b_lj = match trans_b {
                            Transpose::NoTrans => b[l * ldb + j],
                            Transpose::Trans => b[j * ldb + l],
                        };
                        acc += a_il * b_lj;
                    }
                    c[i * ldc + j] = alpha * acc + beta * c[i * ldc + j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)] // mirrors the cblas_sgemm signature
    fn reference(
        trans_a: Transpose,
        trans_b: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        beta: f32,
        c0: &[f32],
        ldc: usize,
    ) -> Vec<f32> {
        let mut c = c0.to_vec();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for l in 0..k {
                    let a_il = match trans_a {
                        Transpose::NoTrans => a[i * lda + l],
                        Transpose::Trans => a[l * lda + i],
                    };
                    let b_lj = match trans_b {
                        Transpose::NoTrans => b[l * ldb + j],
                        Transpose::Trans => b[j * ldb + l],
                    };
                    acc += a_il * b_lj;
                }
                c[i * ldc + j] = alpha * acc + beta * c0[i * ldc + j];
            }
        }
        c
    }

    fn det_matrix(len: usize, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(747796405).wrapping_add(2891336453);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 9) as f32 / (1u32 << 23) as f32) - 1.0
            })
            .collect()
    }

    fn assert_close(actual: &[f32], expected: &[f32], scale: usize) {
        let tol = 1e-4 * scale as f32 + 1e-5;
        for (i, (x, y)) in actual.iter().zip(expected).enumerate() {
            assert!((x - y).abs() <= tol, "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn listing1_call_shape() {
        // The paper's exact call: square, no transposes, alpha 1, beta 0.
        let n = 32;
        let a = det_matrix(n * n, 1);
        let b = det_matrix(n * n, 2);
        let mut c = vec![0.0f32; n * n];
        let blas = Blas::new(ChipGeneration::M1);
        let report = blas
            .sgemm(
                Order::RowMajor,
                Transpose::NoTrans,
                Transpose::NoTrans,
                n,
                n,
                n,
                1.0,
                &a,
                n,
                &b,
                n,
                0.0,
                &mut c,
                n,
            )
            .unwrap();
        let expected = reference(
            Transpose::NoTrans,
            Transpose::NoTrans,
            n,
            n,
            n,
            1.0,
            &a,
            n,
            &b,
            n,
            0.0,
            &vec![0.0; n * n],
            n,
        );
        assert_close(&c, &expected, n);
        assert!(report.functional);
        assert_eq!(report.flops, (n as u64).pow(2) * (2 * n as u64 - 1));
        assert!(report.duration.as_nanos() > 0);
    }

    #[test]
    fn transposes_and_scalars() {
        let (m, n, k) = (7, 5, 9);
        let a = det_matrix(k * m, 3); // stored k×m for Trans
        let b = det_matrix(n * k, 4); // stored n×k for Trans
        let c0 = det_matrix(m * n, 5);
        let mut c = c0.clone();
        let blas = Blas::new(ChipGeneration::M2);
        blas.sgemm(
            Order::RowMajor,
            Transpose::Trans,
            Transpose::Trans,
            m,
            n,
            k,
            0.5,
            &a,
            m,
            &b,
            k,
            2.0,
            &mut c,
            n,
        )
        .unwrap();
        let expected = reference(
            Transpose::Trans,
            Transpose::Trans,
            m,
            n,
            k,
            0.5,
            &a,
            m,
            &b,
            k,
            2.0,
            &c0,
            n,
        );
        assert_close(&c, &expected, k);
    }

    #[test]
    fn strided_c_falls_back_correctly() {
        let (m, n, k) = (4, 3, 4);
        let ldc = 8; // strided output
        let a = det_matrix(m * k, 6);
        let b = det_matrix(k * n, 7);
        let c0 = vec![1.0f32; m * ldc];
        let mut c = c0.clone();
        let blas = Blas::new(ChipGeneration::M3);
        blas.sgemm(
            Order::RowMajor,
            Transpose::NoTrans,
            Transpose::NoTrans,
            m,
            n,
            k,
            1.0,
            &a,
            k,
            &b,
            n,
            0.0,
            &mut c,
            ldc,
        )
        .unwrap();
        let expected = reference(
            Transpose::NoTrans,
            Transpose::NoTrans,
            m,
            n,
            k,
            1.0,
            &a,
            k,
            &b,
            n,
            0.0,
            &c0,
            ldc,
        );
        // Checked positions: the m×n window; padding untouched.
        for i in 0..m {
            for j in 0..n {
                let idx = i * ldc + j;
                assert!((c[idx] - expected[idx]).abs() < 1e-3);
            }
            for j in n..ldc {
                assert_eq!(c[i * ldc + j], 1.0, "padding must be untouched");
            }
        }
    }

    #[test]
    fn dimension_validation() {
        let blas = Blas::new(ChipGeneration::M1);
        let a = vec![0.0f32; 8];
        let b = vec![0.0f32; 8];
        let mut c = vec![0.0f32; 8];
        // lda too small.
        assert!(blas
            .sgemm(
                Order::RowMajor,
                Transpose::NoTrans,
                Transpose::NoTrans,
                2,
                2,
                4,
                1.0,
                &a,
                2,
                &b,
                2,
                0.0,
                &mut c,
                2
            )
            .is_err());
        // A too short.
        assert!(blas
            .sgemm(
                Order::RowMajor,
                Transpose::NoTrans,
                Transpose::NoTrans,
                4,
                2,
                4,
                1.0,
                &a,
                4,
                &b,
                2,
                0.0,
                &mut c,
                2
            )
            .is_err());
    }

    #[test]
    fn model_only_above_limit() {
        let blas = Blas::new(ChipGeneration::M4).with_functional_limit(0);
        let n = 8;
        let a = det_matrix(n * n, 8);
        let b = det_matrix(n * n, 9);
        let mut c = vec![0.0f32; n * n];
        let report = blas
            .sgemm(
                Order::RowMajor,
                Transpose::NoTrans,
                Transpose::NoTrans,
                n,
                n,
                n,
                1.0,
                &a,
                n,
                &b,
                n,
                0.0,
                &mut c,
                n,
            )
            .unwrap();
        assert!(!report.functional);
        assert!(c.iter().all(|&v| v == 0.0), "no functional write");
        assert!(report.duration.as_nanos() > 0, "still timed");
        assert!(report.gflops() > 0.0);
    }

    #[test]
    fn faster_chips_report_shorter_durations() {
        let n = 512;
        let mut last = SimDuration::from_secs_f64(f64::MAX);
        for chip in ChipGeneration::ALL {
            let blas = Blas::new(chip).with_functional_limit(0);
            let mut c = vec![0.0f32; 1];
            let report = blas
                .sgemm(
                    Order::RowMajor,
                    Transpose::NoTrans,
                    Transpose::NoTrans,
                    n,
                    n,
                    n,
                    1.0,
                    &vec![0.0; n * n],
                    n,
                    &vec![0.0; n * n],
                    n,
                    0.0,
                    &mut vec![0.0; n * n],
                    n,
                )
                .unwrap();
            let _ = &mut c;
            assert!(report.duration < last, "{chip} not faster");
            last = report.duration;
        }
    }
}
