//! Scoped row-block parallelism for the blocked BLAS driver.
//!
//! Accelerate parallelizes large GEMMs across the performance cluster; the
//! simulator's functional path does the same on host threads: the output
//! row range is split into contiguous blocks, one crossbeam scoped thread
//! per block. (The *modeled* time comes from the AMX model — host threads
//! only make functional verification fast.)

/// Split `rows` into at most `workers` contiguous, non-empty ranges.
pub fn row_blocks(rows: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    if rows == 0 || workers == 0 {
        return Vec::new();
    }
    let workers = workers.min(rows);
    let base = rows / workers;
    let extra = rows % workers;
    let mut blocks = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        blocks.push(start..start + len);
        start += len;
    }
    blocks
}

/// Run `body` over disjoint row-blocks of `output` in parallel.
///
/// `output` is a row-major matrix of `rows` rows × `row_len` columns;
/// each worker receives its row range and the matching mutable slice.
pub fn parallel_row_blocks<F>(
    output: &mut [f32],
    rows: usize,
    row_len: usize,
    workers: usize,
    body: F,
) where
    F: Fn(std::ops::Range<usize>, &mut [f32]) + Sync,
{
    assert!(output.len() >= rows * row_len, "output too short");
    let blocks = row_blocks(rows, workers);
    if blocks.len() <= 1 {
        if let Some(range) = blocks.into_iter().next() {
            let slice = &mut output[range.start * row_len..range.end * row_len];
            body(range, slice);
        }
        return;
    }
    // Carve disjoint mutable slices, then run them on scoped threads.
    let mut remaining = &mut output[..rows * row_len];
    let mut work: Vec<(std::ops::Range<usize>, &mut [f32])> = Vec::with_capacity(blocks.len());
    let mut consumed = 0usize;
    for range in blocks {
        let len = (range.end - range.start) * row_len;
        let (head, tail) = remaining.split_at_mut(range.start * row_len - consumed + len);
        // head spans [consumed, range.end*row_len): its tail part is ours.
        let own_start = head.len() - len;
        let (_, own) = head.split_at_mut(own_start);
        work.push((range.clone(), own));
        consumed = range.end * row_len;
        remaining = tail;
    }
    crossbeam::thread::scope(|scope| {
        for (range, slice) in work {
            let body = &body;
            scope.spawn(move |_| body(range, slice));
        }
    })
    .expect("parallel row-block execution panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_blocks_cover_exactly() {
        for rows in [1usize, 5, 16, 100, 1023] {
            for workers in [1usize, 2, 3, 8, 64] {
                let blocks = row_blocks(rows, workers);
                assert!(!blocks.is_empty());
                assert_eq!(blocks[0].start, 0);
                assert_eq!(blocks.last().unwrap().end, rows);
                for pair in blocks.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "contiguous");
                }
                for b in &blocks {
                    assert!(!b.is_empty());
                }
                assert!(blocks.len() <= workers.min(rows));
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(row_blocks(0, 4).is_empty());
        assert!(row_blocks(4, 0).is_empty());
    }

    #[test]
    fn parallel_blocks_write_disjointly() {
        let rows = 37;
        let row_len = 11;
        let mut out = vec![0.0f32; rows * row_len];
        parallel_row_blocks(&mut out, rows, row_len, 4, |range, slice| {
            for (offset, v) in slice.iter_mut().enumerate() {
                let row = range.start + offset / row_len;
                *v = row as f32;
            }
        });
        for row in 0..rows {
            for col in 0..row_len {
                assert_eq!(out[row * row_len + col], row as f32, "row {row} col {col}");
            }
        }
    }

    #[test]
    fn single_worker_path() {
        let mut out = vec![0.0f32; 12];
        parallel_row_blocks(&mut out, 3, 4, 1, |range, slice| {
            assert_eq!(range, 0..3);
            slice.fill(5.0);
        });
        assert!(out.iter().all(|&v| v == 5.0));
    }
}
