//! vDSP-style vector and matrix operations.
//!
//! The paper (§2.1) describes vDSP as the Accelerate component for signal
//! processing and linear algebra that "automatically leverag\[es\] the vector
//! and AMX capabilities of the CPU", and reports (§5.2) that its matrix
//! multiply performs identically to BLAS — "they assumedly both run on
//! AMX". The functions here mirror the vDSP entry points the benchmarks
//! touch; `mmul` shares the BLAS timing model for exactly that reason.

use crate::timing::AccelerateModel;
use oranges_kernels::{elem, reduce};
use oranges_soc::time::SimDuration;

/// `vDSP_vsmul`: `out[i] = a[i] * scalar` (unrolled elementwise kernel,
/// bitwise-equal to the naive loop).
pub fn vsmul(a: &[f32], scalar: f32, out: &mut [f32]) {
    elem::scale_f32(a, scalar, out);
}

/// `vDSP_vadd`: `out[i] = a[i] + b[i]`.
pub fn vadd(a: &[f32], b: &[f32], out: &mut [f32]) {
    elem::add_f32(a, b, out);
}

/// `vDSP_dotpr`: dot product (8-accumulator unrolled reduction — the
/// pipelined kernel a real vDSP dispatches to).
pub fn dotpr(a: &[f32], b: &[f32]) -> f32 {
    reduce::dot_f32(a, b)
}

/// `vDSP_vfill`: fill with a constant.
pub fn vfill(value: f32, out: &mut [f32]) {
    out.fill(value);
}

/// `vDSP_maxv`: maximum element (NaN-ignoring like `f32::max`).
pub fn maxv(a: &[f32]) -> f32 {
    reduce::max_f32(a)
}

/// Result of a timed `mmul`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmulReport {
    /// Modeled duration (same AMX model as BLAS — the paper found the two
    /// indistinguishable).
    pub duration: SimDuration,
    /// FLOPs performed.
    pub flops: u64,
}

/// `vDSP_mmul`: `c := a · b` where `a` is `m×p`, `b` is `p×n` (row-major,
/// unit stride — the vDSP signature's stride arguments fixed at 1, as the
/// paper's harness uses them).
pub fn mmul(
    model: &AccelerateModel,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    n: usize,
    p: usize,
) -> Result<MmulReport, String> {
    if a.len() < m * p {
        return Err(format!("a holds {} elements, needs {}", a.len(), m * p));
    }
    if b.len() < p * n {
        return Err(format!("b holds {} elements, needs {}", b.len(), p * n));
    }
    if c.len() < m * n {
        return Err(format!("c holds {} elements, needs {}", c.len(), m * n));
    }
    for i in 0..m {
        let row = &mut c[i * n..(i + 1) * n];
        row.fill(0.0);
        for l in 0..p {
            let a_il = a[i * p + l];
            if a_il == 0.0 {
                continue;
            }
            elem::axpy_f32(a_il, &b[l * n..l * n + n], row);
        }
    }
    let flops = (m as u64) * (n as u64) * (2 * p as u64).max(1) - (m as u64) * (n as u64);
    Ok(MmulReport {
        duration: model.gemm_duration(m as u64, n as u64, p as u64),
        flops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oranges_soc::chip::ChipGeneration;

    #[test]
    fn vsmul_scales() {
        let a = [1.0, 2.0, 3.0];
        let mut out = [0.0; 3];
        vsmul(&a, 2.5, &mut out);
        assert_eq!(out, [2.5, 5.0, 7.5]);
    }

    #[test]
    fn vadd_adds() {
        let mut out = [0.0; 3];
        vadd(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0], &mut out);
        assert_eq!(out, [11.0, 22.0, 33.0]);
    }

    #[test]
    fn dotpr_and_maxv() {
        assert_eq!(dotpr(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(maxv(&[1.0, -5.0, 3.5]), 3.5);
    }

    #[test]
    fn vfill_fills() {
        let mut out = [0.0; 4];
        vfill(7.0, &mut out);
        assert_eq!(out, [7.0; 4]);
    }

    #[test]
    fn mismatched_lengths_truncate_safely() {
        let mut out = [0.0; 2];
        vadd(&[1.0, 2.0, 3.0], &[1.0], &mut out);
        assert_eq!(out, [2.0, 0.0]);
    }

    #[test]
    fn mmul_matches_hand_example() {
        let model = AccelerateModel::of(ChipGeneration::M1);
        // [1 2; 3 4] × [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        let report = mmul(&model, &a, &b, &mut c, 2, 2, 2).unwrap();
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
        assert_eq!(report.flops, 2 * 2 * 3);
        assert!(report.duration.as_nanos() > 0);
    }

    #[test]
    fn mmul_rectangular() {
        let model = AccelerateModel::of(ChipGeneration::M4);
        // 1×3 · 3×2.
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut c = [0.0; 2];
        mmul(&model, &a, &b, &mut c, 1, 2, 3).unwrap();
        assert_eq!(c, [4.0, 5.0]);
    }

    #[test]
    fn mmul_validates_lengths() {
        let model = AccelerateModel::of(ChipGeneration::M2);
        let mut c = [0.0; 4];
        assert!(mmul(&model, &[0.0; 3], &[0.0; 4], &mut c, 2, 2, 2).is_err());
    }

    #[test]
    fn mmul_duration_equals_blas_duration() {
        // §5.2: "The vDSP and BLAS implementations perform nearly
        // identically" — in the model, exactly identically.
        let model = AccelerateModel::of(ChipGeneration::M3);
        let report = {
            let a = vec![0.5f32; 64 * 64];
            let b = vec![0.25f32; 64 * 64];
            let mut c = vec![0.0f32; 64 * 64];
            mmul(&model, &a, &b, &mut c, 64, 64, 64).unwrap()
        };
        assert_eq!(report.duration, model.sgemm_duration(64));
    }
}
