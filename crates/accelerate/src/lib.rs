//! # oranges-accelerate — Accelerate-shaped CPU numerics
//!
//! The paper's fastest CPU implementation calls Apple's Accelerate
//! framework (`cblas_sgemm`, Listing 1) and vDSP, both of which "assumedly
//! run on AMX" (§5.2) — that is how the M-series CPU reaches 0.90–1.49
//! TFLOPS FP32 where the NEON units alone top out around 0.5.
//!
//! This crate reproduces that stack:
//!
//! - [`blas`]: a `cblas_sgemm`-shaped API (row-major, transposes,
//!   alpha/beta) executing real FP32 arithmetic on host threads and timed
//!   by the AMX model;
//! - [`vdsp`]: vDSP-style vector ops (`vsmul`, `vadd`, `dotpr`, `mmul`) —
//!   the paper reports vDSP and BLAS "perform nearly identically";
//! - [`threading`]: the scoped row-block thread pool used by the blocked
//!   driver (crossbeam; one worker per performance core);
//! - [`timing`]: the calibrated sustained-throughput model (Figure 2
//!   Accelerate anchors: 0.90 / 1.09 / 1.38 / 1.49 TFLOPS on M1–M4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blas;
pub mod threading;
pub mod timing;
pub mod vdsp;

pub use blas::{Blas, BlasReport, Order, Transpose};
pub use timing::AccelerateModel;

/// Convenience prelude.
pub mod prelude {
    pub use crate::blas::{Blas, BlasReport, Order, Transpose};
    pub use crate::timing::AccelerateModel;
    pub use crate::vdsp;
}
