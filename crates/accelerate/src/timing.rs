//! Sustained-throughput model for Accelerate SGEMM on the AMX unit.
//!
//! Calibration anchors are the paper's Figure 2 Accelerate peaks
//! (0.90 / 1.09 / 1.38 / 1.49 TFLOPS for M1–M4); the per-size ramp and the
//! call overhead shape the small-`n` end, and both are validated against
//! the AMX theoretical peak (the sustained fraction lands at the 55–66%
//! the hardware plausibly delivers).

use oranges_soc::chip::ChipGeneration;
use oranges_soc::time::SimDuration;

/// Measured Accelerate SGEMM peak, TFLOPS (paper Fig. 2).
pub fn peak_tflops(chip: ChipGeneration) -> f64 {
    match chip {
        ChipGeneration::M1 => 0.90,
        ChipGeneration::M2 => 1.09,
        ChipGeneration::M3 => 1.38,
        ChipGeneration::M4 => 1.49,
    }
}

/// Size at which SGEMM reaches half its sustained peak. AMX has very low
/// launch overhead compared to a GPU dispatch, so the ramp is early.
const RAMP_N_HALF: f64 = 96.0;
const RAMP_POWER: f64 = 1.6;

/// Fixed per-call overhead (library entry, tile setup).
pub const CALL_OVERHEAD: SimDuration = SimDuration::from_micros(4);

/// The Accelerate timing model for one chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelerateModel {
    chip: ChipGeneration,
}

impl AccelerateModel {
    /// Model for a generation.
    pub fn of(chip: ChipGeneration) -> Self {
        AccelerateModel { chip }
    }

    /// The chip.
    pub fn chip(&self) -> ChipGeneration {
        self.chip
    }

    /// Sustained GFLOPS for a square SGEMM of size `n`.
    pub fn sustained_gflops(&self, n: u64) -> f64 {
        let ramp = {
            let nf = n as f64;
            if nf <= 0.0 {
                0.0
            } else {
                1.0 / (1.0 + (RAMP_N_HALF / nf).powf(RAMP_POWER))
            }
        };
        peak_tflops(self.chip) * 1e3 * ramp
    }

    /// Fraction of the AMX theoretical peak sustained at size `n`.
    pub fn amx_efficiency(&self, n: u64) -> f64 {
        self.sustained_gflops(n) / self.chip.spec().amx_gflops()
    }

    /// Modeled duration of a square SGEMM (`flops = n²(2n−1)`).
    pub fn sgemm_duration(&self, n: u64) -> SimDuration {
        if n == 0 {
            return CALL_OVERHEAD;
        }
        let flops = n * n * (2 * n - 1);
        let gflops = self.sustained_gflops(n);
        CALL_OVERHEAD + SimDuration::from_secs_f64(flops as f64 / (gflops * 1e9))
    }

    /// Modeled duration of a rectangular GEMM `m×k · k×n`.
    pub fn gemm_duration(&self, m: u64, n: u64, k: u64) -> SimDuration {
        if m == 0 || n == 0 || k == 0 {
            return CALL_OVERHEAD;
        }
        let flops = m * n * (2 * k - 1);
        // Rate keyed to the smallest dimension (tile-limited).
        let gflops = self.sustained_gflops(m.min(n).min(k));
        CALL_OVERHEAD + SimDuration::from_secs_f64(flops as f64 / (gflops * 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_figure2() {
        let expected = [
            (ChipGeneration::M1, 0.90),
            (ChipGeneration::M2, 1.09),
            (ChipGeneration::M3, 1.38),
            (ChipGeneration::M4, 1.49),
        ];
        for (chip, tflops) in expected {
            let m = AccelerateModel::of(chip);
            let sustained = m.sustained_gflops(16384) / 1e3;
            assert!(
                (sustained - tflops).abs() / tflops < 0.02,
                "{chip}: {sustained}"
            );
        }
    }

    #[test]
    fn amx_efficiency_is_plausible() {
        // Sustained fraction of the AMX peak must land in the 50–70% band
        // (the paper's measurements ÷ our 512-flops/cycle peak).
        for chip in ChipGeneration::ALL {
            let eff = AccelerateModel::of(chip).amx_efficiency(16384);
            assert!((0.5..=0.7).contains(&eff), "{chip}: {eff}");
        }
    }

    #[test]
    fn efficiency_rises_across_generations() {
        let effs: Vec<f64> = ChipGeneration::ALL
            .iter()
            .map(|c| AccelerateModel::of(*c).amx_efficiency(8192))
            .collect();
        for pair in effs.windows(2) {
            assert!(
                pair[1] > pair[0] - 0.01,
                "later AMX revisions are no worse: {effs:?}"
            );
        }
    }

    #[test]
    fn small_sizes_ramp_up() {
        let m = AccelerateModel::of(ChipGeneration::M3);
        assert!(m.sustained_gflops(32) < 0.35 * m.sustained_gflops(4096));
        let half = m.sustained_gflops(96);
        let peak = m.sustained_gflops(1 << 20);
        assert!((half / peak - 0.5).abs() < 0.01);
    }

    #[test]
    fn duration_has_floor_and_grows_cubically() {
        let m = AccelerateModel::of(ChipGeneration::M2);
        assert_eq!(m.sgemm_duration(0), CALL_OVERHEAD);
        let t1k = m.sgemm_duration(1024);
        let t2k = m.sgemm_duration(2048);
        let ratio = t2k.as_secs_f64() / t1k.as_secs_f64();
        assert!(ratio > 6.5 && ratio < 9.0, "{ratio}");
    }

    #[test]
    fn rectangular_durations() {
        let m = AccelerateModel::of(ChipGeneration::M4);
        // Degenerate dims are overhead-only.
        assert_eq!(m.gemm_duration(0, 10, 10), CALL_OVERHEAD);
        // Square case agrees with sgemm_duration.
        assert_eq!(m.gemm_duration(256, 256, 256), m.sgemm_duration(256));
    }
}
