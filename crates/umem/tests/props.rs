//! Property-based tests for unified memory.

use oranges_soc::chip::ChipGeneration;
use oranges_umem::address::AddressSpace;
use oranges_umem::bandwidth::{AccessPattern, BandwidthModel, StreamKernelKind};
use oranges_umem::buffer::{SharedAddressSpace, UnifiedBuffer};
use oranges_umem::controller::Agent;
use oranges_umem::page::{is_page_aligned, pages_for, round_up_to_page, PAGE_SIZE};
use oranges_umem::StorageMode;
use proptest::prelude::*;

fn any_generation() -> impl Strategy<Value = ChipGeneration> {
    prop_oneof![
        Just(ChipGeneration::M1),
        Just(ChipGeneration::M2),
        Just(ChipGeneration::M3),
        Just(ChipGeneration::M4),
    ]
}

fn any_kernel() -> impl Strategy<Value = StreamKernelKind> {
    prop_oneof![
        Just(StreamKernelKind::Copy),
        Just(StreamKernelKind::Scale),
        Just(StreamKernelKind::Add),
        Just(StreamKernelKind::Triad),
    ]
}

proptest! {
    #[test]
    fn round_up_is_idempotent_and_minimal(bytes in 0u64..1 << 40) {
        let rounded = round_up_to_page(bytes);
        prop_assert!(rounded >= bytes);
        prop_assert!(rounded - bytes < PAGE_SIZE);
        prop_assert_eq!(round_up_to_page(rounded), rounded);
        prop_assert!(is_page_aligned(rounded));
        prop_assert_eq!(pages_for(bytes) * PAGE_SIZE, rounded);
    }

    #[test]
    fn allocator_never_overlaps(sizes in proptest::collection::vec(1u64..256 * 1024, 1..40)) {
        let mut space = AddressSpace::with_gib(4);
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for size in sizes {
            let a = space.allocate(size).unwrap();
            prop_assert!(is_page_aligned(a.addr));
            for (addr, len) in &regions {
                let disjoint = a.addr + a.len <= *addr || addr + len <= a.addr;
                prop_assert!(disjoint, "overlap: [{}, {}) vs [{}, {})", a.addr, a.addr + a.len, addr, addr + len);
            }
            regions.push((a.addr, a.len));
        }
    }

    #[test]
    fn alloc_free_alloc_reuses(size in 1u64..1024 * 1024) {
        let mut space = AddressSpace::with_gib(1);
        let a = space.allocate(size).unwrap();
        let addr = a.addr;
        space.free(a);
        let b = space.allocate(size).unwrap();
        prop_assert_eq!(b.addr, addr, "first-fit must reuse the freed region");
        prop_assert_eq!(space.allocated(), b.len);
    }

    #[test]
    fn buffer_round_trips_data(values in proptest::collection::vec(any::<f32>(), 1..4096)) {
        let space = SharedAddressSpace::with_gib(1);
        let mut buf = UnifiedBuffer::<f32>::allocate(&space, values.len(), StorageMode::Shared).unwrap();
        buf.copy_from_slice(&values).unwrap();
        let read = buf.as_slice().unwrap();
        for (a, b) in read.iter().zip(values.iter()) {
            prop_assert!(a == b || (a.is_nan() && b.is_nan()));
        }
    }

    #[test]
    fn stream_bandwidth_bounded_by_theoretical(
        gen in any_generation(),
        kernel in any_kernel(),
        threads in 0u32..32,
    ) {
        let m = BandwidthModel::of(gen);
        for agent in [Agent::Cpu, Agent::Gpu] {
            let gbs = m.stream_gbs(agent, kernel, threads);
            prop_assert!(gbs >= 0.0);
            prop_assert!(gbs <= gen.spec().memory_bandwidth_gbs + 1e-9);
        }
    }

    #[test]
    fn more_threads_never_less_bandwidth(
        gen in any_generation(),
        kernel in any_kernel(),
        t in 1u32..16,
    ) {
        let m = BandwidthModel::of(gen);
        let lo = m.stream_gbs(Agent::Cpu, kernel, t);
        let hi = m.stream_gbs(Agent::Cpu, kernel, t + 1);
        prop_assert!(hi + 1e-12 >= lo);
    }

    #[test]
    fn transfer_time_monotone_in_bytes(
        gen in any_generation(),
        a in 1u64..1 << 32,
        b in 1u64..1 << 32,
    ) {
        let m = BandwidthModel::of(gen);
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        let ts = m.transfer_time(Agent::Gpu, StreamKernelKind::Triad, 0, small);
        let tl = m.transfer_time(Agent::Gpu, StreamKernelKind::Triad, 0, large);
        prop_assert!(tl >= ts);
    }

    #[test]
    fn pattern_bytes_account(r in 0u64..1 << 30, w in 0u64..1 << 30, seq in any::<bool>()) {
        let p = AccessPattern { read_bytes: r, write_bytes: w, sequential: seq };
        prop_assert_eq!(p.total_bytes(), r + w);
        prop_assert!(p.pattern_factor() > 0.0 && p.pattern_factor() <= 1.0);
    }
}
