//! Page geometry of Apple Silicon unified memory.
//!
//! macOS on Apple Silicon uses 16 KiB pages. The paper's GEMM harness
//! allocates all matrices with `aligned_alloc` against this page size and
//! rounds lengths up to page multiples so Metal can wrap them zero-copy
//! (§3.2). Every allocation in this crate follows the same discipline.

/// The Apple Silicon page size: 16384 bytes.
pub const PAGE_SIZE: u64 = 16_384;

/// Round a byte length up to the next page multiple.
///
/// Zero stays zero (the allocator rejects zero-length requests separately).
pub const fn round_up_to_page(bytes: u64) -> u64 {
    match bytes % PAGE_SIZE {
        0 => bytes,
        rem => bytes + (PAGE_SIZE - rem),
    }
}

/// Number of pages covering a byte length.
pub const fn pages_for(bytes: u64) -> u64 {
    round_up_to_page(bytes) / PAGE_SIZE
}

/// Whether an address or length is page-aligned.
pub const fn is_page_aligned(value: u64) -> bool {
    value.is_multiple_of(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_matches_the_paper() {
        assert_eq!(PAGE_SIZE, 16_384);
    }

    #[test]
    fn round_up_exact_multiples_unchanged() {
        assert_eq!(round_up_to_page(0), 0);
        assert_eq!(round_up_to_page(PAGE_SIZE), PAGE_SIZE);
        assert_eq!(round_up_to_page(3 * PAGE_SIZE), 3 * PAGE_SIZE);
    }

    #[test]
    fn round_up_partial_pages() {
        assert_eq!(round_up_to_page(1), PAGE_SIZE);
        assert_eq!(round_up_to_page(PAGE_SIZE - 1), PAGE_SIZE);
        assert_eq!(round_up_to_page(PAGE_SIZE + 1), 2 * PAGE_SIZE);
    }

    #[test]
    fn pages_for_counts() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
    }

    #[test]
    fn alignment_check() {
        assert!(is_page_aligned(0));
        assert!(is_page_aligned(PAGE_SIZE * 7));
        assert!(!is_page_aligned(PAGE_SIZE + 4));
    }

    #[test]
    fn matrix_sizes_from_the_paper_round_cleanly() {
        // A 1024×1024 f32 matrix is exactly 4 MiB = 256 pages.
        let bytes = 1024u64 * 1024 * 4;
        assert_eq!(round_up_to_page(bytes), bytes);
        assert_eq!(pages_for(bytes), 256);
        // A 100×100 f32 matrix (40,000 B) rounds up to 3 pages (49,152 B).
        assert_eq!(round_up_to_page(40_000), 49_152);
    }
}
