//! Simulated physical address space.
//!
//! Buffers carry *simulated* page-aligned physical addresses (the backing
//! data lives in host `Vec`s). The allocator is a bump allocator with a
//! free list — allocation patterns in the benchmarks are simple
//! (allocate three matrices, run, free), so first-fit reuse is enough, but
//! the free list keeps long example programs from leaking simulated space.

use crate::error::UmemError;
use crate::page::{round_up_to_page, PAGE_SIZE};

/// A page-aligned region of simulated physical memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Simulated physical base address (page-aligned).
    pub addr: u64,
    /// Length in bytes (page multiple).
    pub len: u64,
}

/// Simulated physical address space of one SoC.
#[derive(Debug)]
pub struct AddressSpace {
    capacity: u64,
    cursor: u64,
    free: Vec<Allocation>,
    allocated_bytes: u64,
}

impl AddressSpace {
    /// A space of `capacity_bytes` (rounded down to whole pages).
    pub fn new(capacity_bytes: u64) -> Self {
        AddressSpace {
            capacity: capacity_bytes - capacity_bytes % PAGE_SIZE,
            cursor: 0,
            free: Vec::new(),
            allocated_bytes: 0,
        }
    }

    /// A space sized like a device's unified memory (GiB).
    pub fn with_gib(gib: u32) -> Self {
        AddressSpace::new(gib as u64 * 1024 * 1024 * 1024)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated_bytes
    }

    /// Bytes available (capacity − allocated).
    pub fn available(&self) -> u64 {
        self.capacity - self.allocated_bytes
    }

    /// Allocate `bytes` (rounded up to pages), returning a page-aligned
    /// region. First-fit from the free list, else bump.
    pub fn allocate(&mut self, bytes: u64) -> Result<Allocation, UmemError> {
        if bytes == 0 {
            return Err(UmemError::ZeroLength);
        }
        let len = round_up_to_page(bytes);
        // First fit from the free list.
        if let Some(pos) = self.free.iter().position(|f| f.len >= len) {
            let region = self.free[pos];
            let alloc = Allocation {
                addr: region.addr,
                len,
            };
            if region.len > len {
                self.free[pos] = Allocation {
                    addr: region.addr + len,
                    len: region.len - len,
                };
            } else {
                self.free.swap_remove(pos);
            }
            self.allocated_bytes += len;
            return Ok(alloc);
        }
        // Bump.
        if self.cursor + len > self.capacity {
            return Err(UmemError::OutOfMemory {
                requested: len,
                available: self.available(),
            });
        }
        let alloc = Allocation {
            addr: self.cursor,
            len,
        };
        self.cursor += len;
        self.allocated_bytes += len;
        Ok(alloc)
    }

    /// Return a region to the space. Adjacent free regions are coalesced.
    pub fn free(&mut self, alloc: Allocation) {
        self.allocated_bytes = self.allocated_bytes.saturating_sub(alloc.len);
        self.free.push(alloc);
        self.free.sort_by_key(|a| a.addr);
        let mut merged: Vec<Allocation> = Vec::with_capacity(self.free.len());
        for region in self.free.drain(..) {
            match merged.last_mut() {
                Some(last) if last.addr + last.len == region.addr => last.len += region.len,
                _ => merged.push(region),
            }
        }
        self.free = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_page_aligned_and_rounded() {
        let mut space = AddressSpace::with_gib(1);
        let a = space.allocate(100).unwrap();
        assert_eq!(a.addr % PAGE_SIZE, 0);
        assert_eq!(a.len, PAGE_SIZE);
        let b = space.allocate(PAGE_SIZE + 1).unwrap();
        assert_eq!(b.len, 2 * PAGE_SIZE);
        assert_eq!(b.addr, PAGE_SIZE, "bump allocator packs pages");
    }

    #[test]
    fn zero_length_rejected() {
        let mut space = AddressSpace::with_gib(1);
        assert_eq!(space.allocate(0), Err(UmemError::ZeroLength));
    }

    #[test]
    fn exhaustion_reports_out_of_memory() {
        let mut space = AddressSpace::new(4 * PAGE_SIZE);
        space.allocate(3 * PAGE_SIZE).unwrap();
        let err = space.allocate(2 * PAGE_SIZE).unwrap_err();
        assert!(matches!(err, UmemError::OutOfMemory { .. }));
    }

    #[test]
    fn free_list_reuses_space() {
        let mut space = AddressSpace::new(4 * PAGE_SIZE);
        let a = space.allocate(2 * PAGE_SIZE).unwrap();
        let _b = space.allocate(2 * PAGE_SIZE).unwrap();
        space.free(a);
        // Space is full via bump, but the freed region satisfies this.
        let c = space.allocate(PAGE_SIZE).unwrap();
        assert_eq!(c.addr, a.addr);
        // Remainder of the split region still usable.
        let d = space.allocate(PAGE_SIZE).unwrap();
        assert_eq!(d.addr, a.addr + PAGE_SIZE);
    }

    #[test]
    fn adjacent_free_regions_coalesce() {
        let mut space = AddressSpace::new(8 * PAGE_SIZE);
        let a = space.allocate(2 * PAGE_SIZE).unwrap();
        let b = space.allocate(2 * PAGE_SIZE).unwrap();
        let _guard = space.allocate(PAGE_SIZE).unwrap();
        space.free(a);
        space.free(b);
        // A 4-page request fits only if a+b coalesced.
        let big = space.allocate(4 * PAGE_SIZE).unwrap();
        assert_eq!(big.addr, a.addr);
    }

    #[test]
    fn accounting_tracks_allocated_bytes() {
        let mut space = AddressSpace::new(10 * PAGE_SIZE);
        assert_eq!(space.allocated(), 0);
        let a = space.allocate(PAGE_SIZE).unwrap();
        let b = space.allocate(3 * PAGE_SIZE).unwrap();
        assert_eq!(space.allocated(), 4 * PAGE_SIZE);
        assert_eq!(space.available(), 6 * PAGE_SIZE);
        space.free(a);
        space.free(b);
        assert_eq!(space.allocated(), 0);
    }

    #[test]
    fn capacity_rounds_down_to_pages() {
        let space = AddressSpace::new(PAGE_SIZE + 100);
        assert_eq!(space.capacity(), PAGE_SIZE);
    }
}
