//! Typed, page-aligned unified-memory buffers.
//!
//! A [`UnifiedBuffer`] mirrors what the paper's harness builds with
//! `aligned_alloc` + `newBufferWithBytesNoCopy`: a page-aligned allocation
//! whose length is rounded up to a 16 KiB multiple so the GPU can wrap the
//! same physical pages without copying. Storage modes follow Metal (§2.4):
//!
//! - [`StorageMode::Shared`] — visible to CPU and GPU (zero-copy);
//! - [`StorageMode::Private`] — GPU-optimal, CPU access is an error.
//!
//! The element data is an ordinary host `Vec<T>` (real arithmetic happens
//! on it); the *address* is simulated and always page-aligned.

use crate::address::{AddressSpace, Allocation};
use crate::error::UmemError;
use crate::page::is_page_aligned;
use parking_lot::Mutex;
use std::sync::Arc;

/// Metal-style storage mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageMode {
    /// `MTLResourceStorageModeShared`: one physical copy, CPU- and
    /// GPU-visible. The mode every zero-copy benchmark buffer uses.
    Shared,
    /// `MTLResourceStorageModePrivate`: GPU-only.
    Private,
}

/// A shared handle to one SoC's address space.
#[derive(Debug, Clone)]
pub struct SharedAddressSpace {
    inner: Arc<Mutex<AddressSpace>>,
}

impl SharedAddressSpace {
    /// Wrap an address space for shared use.
    pub fn new(space: AddressSpace) -> Self {
        SharedAddressSpace {
            inner: Arc::new(Mutex::new(space)),
        }
    }

    /// A space sized in GiB (like a device's unified memory).
    pub fn with_gib(gib: u32) -> Self {
        SharedAddressSpace::new(AddressSpace::with_gib(gib))
    }

    /// Allocate a page-rounded region.
    pub fn allocate(&self, bytes: u64) -> Result<Allocation, UmemError> {
        self.inner.lock().allocate(bytes)
    }

    /// Free a region.
    pub fn free(&self, alloc: Allocation) {
        self.inner.lock().free(alloc);
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.inner.lock().allocated()
    }

    /// Bytes available.
    pub fn available(&self) -> u64 {
        self.inner.lock().available()
    }
}

/// A typed, page-aligned unified-memory allocation.
#[derive(Debug)]
pub struct UnifiedBuffer<T: Copy + Default> {
    space: SharedAddressSpace,
    allocation: Allocation,
    mode: StorageMode,
    /// Requested length in elements (the logical length).
    len: usize,
    /// Host backing store. Its byte length equals the page-rounded
    /// allocation so GPU wraps see whole pages, like the paper's harness.
    data: Vec<T>,
}

impl<T: Copy + Default> UnifiedBuffer<T> {
    /// Allocate `len` elements in `space` with the given storage mode.
    ///
    /// The underlying allocation is rounded up to whole pages and the
    /// padding elements are zero-initialized — exactly the paper's
    /// "allocation lengths were automatically extended to the nearest page
    /// multiple" discipline.
    pub fn allocate(
        space: &SharedAddressSpace,
        len: usize,
        mode: StorageMode,
    ) -> Result<Self, UmemError> {
        let elem = std::mem::size_of::<T>() as u64;
        let requested_bytes = len as u64 * elem;
        let allocation = space.allocate(requested_bytes)?;
        let padded_len = (allocation.len / elem) as usize;
        Ok(UnifiedBuffer {
            space: space.clone(),
            allocation,
            mode,
            len,
            data: vec![T::default(); padded_len],
        })
    }

    /// Logical length in elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the logical length is zero (cannot happen through
    /// [`UnifiedBuffer::allocate`], which rejects zero-length requests).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Requested bytes (logical length × element size).
    pub fn byte_len(&self) -> u64 {
        self.len as u64 * std::mem::size_of::<T>() as u64
    }

    /// Allocated bytes (page multiple ≥ [`UnifiedBuffer::byte_len`]).
    pub fn capacity_bytes(&self) -> u64 {
        self.allocation.len
    }

    /// Simulated physical base address (always page-aligned).
    pub fn base_address(&self) -> u64 {
        self.allocation.addr
    }

    /// Storage mode.
    pub fn storage_mode(&self) -> StorageMode {
        self.mode
    }

    /// Whether a Metal no-copy wrap of this buffer succeeds without a
    /// fallback copy: base is page-aligned (always true here) and the
    /// *allocated* length is a page multiple (always true here). Exposed
    /// because callers wrapping arbitrary sub-ranges must check.
    pub fn supports_no_copy_wrap(&self) -> bool {
        is_page_aligned(self.allocation.addr) && is_page_aligned(self.allocation.len)
    }

    /// CPU view of the logical elements. Errors on `Private` buffers.
    pub fn as_slice(&self) -> Result<&[T], UmemError> {
        match self.mode {
            StorageMode::Shared => Ok(&self.data[..self.len]),
            StorageMode::Private => Err(UmemError::StorageModeViolation {
                operation: "CPU read of Private buffer",
            }),
        }
    }

    /// Mutable CPU view of the logical elements. Errors on `Private`.
    pub fn as_mut_slice(&mut self) -> Result<&mut [T], UmemError> {
        match self.mode {
            StorageMode::Shared => Ok(&mut self.data[..self.len]),
            StorageMode::Private => Err(UmemError::StorageModeViolation {
                operation: "CPU write of Private buffer",
            }),
        }
    }

    /// Device-side view (GPU executors may read any mode, including the
    /// page padding — they see whole pages).
    pub fn device_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable device-side view over the full padded extent.
    pub fn device_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copy from a host slice into the buffer (CPU path, `Shared` only).
    pub fn copy_from_slice(&mut self, src: &[T]) -> Result<(), UmemError> {
        if src.len() > self.len {
            return Err(UmemError::OutOfBounds {
                index: src.len(),
                len: self.len,
            });
        }
        let dst = self.as_mut_slice()?;
        dst[..src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Fill the logical extent with a value.
    pub fn fill(&mut self, value: T) -> Result<(), UmemError> {
        self.as_mut_slice()?.fill(value);
        Ok(())
    }
}

impl<T: Copy + Default> Drop for UnifiedBuffer<T> {
    fn drop(&mut self) {
        self.space.free(self.allocation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    fn space() -> SharedAddressSpace {
        SharedAddressSpace::with_gib(1)
    }

    #[test]
    fn allocation_rounds_to_pages_and_pads_with_zeros() {
        let s = space();
        let buf = UnifiedBuffer::<f32>::allocate(&s, 100, StorageMode::Shared).unwrap();
        assert_eq!(buf.len(), 100);
        assert_eq!(buf.byte_len(), 400);
        assert_eq!(buf.capacity_bytes(), PAGE_SIZE);
        assert_eq!(buf.device_slice().len(), PAGE_SIZE as usize / 4);
        assert!(buf.device_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn base_addresses_are_page_aligned() {
        let s = space();
        for _ in 0..10 {
            let buf = UnifiedBuffer::<f64>::allocate(&s, 1000, StorageMode::Shared).unwrap();
            assert_eq!(buf.base_address() % PAGE_SIZE, 0);
            assert!(buf.supports_no_copy_wrap());
        }
    }

    #[test]
    fn shared_mode_allows_cpu_access() {
        let s = space();
        let mut buf = UnifiedBuffer::<f32>::allocate(&s, 8, StorageMode::Shared).unwrap();
        buf.copy_from_slice(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(&buf.as_slice().unwrap()[..3], &[1.0, 2.0, 3.0]);
        buf.fill(7.5).unwrap();
        assert!(buf.as_slice().unwrap().iter().all(|&x| x == 7.5));
    }

    #[test]
    fn private_mode_blocks_cpu_access() {
        let s = space();
        let mut buf = UnifiedBuffer::<f32>::allocate(&s, 8, StorageMode::Private).unwrap();
        assert!(matches!(
            buf.as_slice(),
            Err(UmemError::StorageModeViolation { .. })
        ));
        assert!(matches!(
            buf.as_mut_slice(),
            Err(UmemError::StorageModeViolation { .. })
        ));
        // The device still sees it.
        assert_eq!(buf.device_slice().len(), PAGE_SIZE as usize / 4);
        buf.device_mut_slice()[0] = 3.0;
        assert_eq!(buf.device_slice()[0], 3.0);
    }

    #[test]
    fn copy_too_long_is_out_of_bounds() {
        let s = space();
        let mut buf = UnifiedBuffer::<f32>::allocate(&s, 2, StorageMode::Shared).unwrap();
        let err = buf.copy_from_slice(&[0.0; 5]).unwrap_err();
        assert!(matches!(err, UmemError::OutOfBounds { index: 5, len: 2 }));
    }

    #[test]
    fn drop_returns_space() {
        let s = space();
        let before = s.allocated();
        {
            let _buf = UnifiedBuffer::<f64>::allocate(&s, 1 << 20, StorageMode::Shared).unwrap();
            assert!(s.allocated() > before);
        }
        assert_eq!(s.allocated(), before);
    }

    #[test]
    fn logical_vs_device_extents() {
        let s = space();
        let buf = UnifiedBuffer::<f64>::allocate(&s, 3000, StorageMode::Shared).unwrap();
        // 3000 × 8 B = 24,000 B → 2 pages = 32,768 B → 4096 f64 elements.
        assert_eq!(buf.as_slice().unwrap().len(), 3000);
        assert_eq!(buf.device_slice().len(), 4096);
    }

    #[test]
    fn zero_len_propagates_error() {
        let s = space();
        assert!(matches!(
            UnifiedBuffer::<f32>::allocate(&s, 0, StorageMode::Shared),
            Err(UmemError::ZeroLength)
        ));
    }
}
