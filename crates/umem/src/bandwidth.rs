//! Effective-bandwidth model — the engine behind Figure 1.
//!
//! STREAM measures *effective* bandwidth, which differs from the
//! theoretical channel bandwidth by an agent- and kernel-dependent
//! efficiency. The model here is:
//!
//! ```text
//! BW(chip, agent, kernel, threads) =
//!     theoretical(chip) × η(chip, agent, kernel) × s(threads)
//! ```
//!
//! where `η` is a calibration table anchored to the paper's published
//! measurements (M1–M4 CPU max 59/78/92/103 GB/s, GPU max 60/91/92/100
//! GB/s, all ≈85% of peak; the M2 CPU Copy/Scale deficit of 20–30 GB/s),
//! and `s` is the CPU thread-scaling curve: one core cannot fill the
//! memory controller, so bandwidth grows concavely until the P-cluster
//! saturates the link (the reason the paper sweeps `OMP_NUM_THREADS`).
//!
//! `η` anchors are *measurements reported by the paper*, recorded as model
//! constants; the crossover behaviour, thread scaling and multi-agent
//! arbitration are produced by the model.

use crate::controller::{Agent, MemoryController};
use oranges_soc::chip::ChipGeneration;
use oranges_soc::cores::CpuComplex;
use oranges_soc::time::SimDuration;
use serde::Serialize;

/// The four STREAM kernels (McCalpin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum StreamKernelKind {
    /// `c[i] = a[i]` — 1 read + 1 write per element.
    Copy,
    /// `b[i] = q * c[i]` — 1 read + 1 write.
    Scale,
    /// `c[i] = a[i] + b[i]` — 2 reads + 1 write.
    Add,
    /// `a[i] = b[i] + q * c[i]` — 2 reads + 1 write.
    Triad,
}

impl StreamKernelKind {
    /// All kernels in the STREAM reporting order.
    pub const ALL: [StreamKernelKind; 4] = [
        StreamKernelKind::Copy,
        StreamKernelKind::Scale,
        StreamKernelKind::Add,
        StreamKernelKind::Triad,
    ];

    /// Kernel name as printed by stream.c.
    pub const fn name(&self) -> &'static str {
        match self {
            StreamKernelKind::Copy => "Copy",
            StreamKernelKind::Scale => "Scale",
            StreamKernelKind::Add => "Add",
            StreamKernelKind::Triad => "Triad",
        }
    }

    /// Bytes moved per element of array length, for element size `elem`
    /// (stream.c counts 2 arrays for Copy/Scale, 3 for Add/Triad).
    pub const fn bytes_per_element(&self, elem: usize) -> u64 {
        match self {
            StreamKernelKind::Copy | StreamKernelKind::Scale => 2 * elem as u64,
            StreamKernelKind::Add | StreamKernelKind::Triad => 3 * elem as u64,
        }
    }

    /// FLOPs per element (Scale and Triad multiply; Add adds; Copy none).
    pub const fn flops_per_element(&self) -> u64 {
        match self {
            StreamKernelKind::Copy => 0,
            StreamKernelKind::Scale => 1,
            StreamKernelKind::Add => 1,
            StreamKernelKind::Triad => 2,
        }
    }
}

/// Generic access-pattern descriptor for non-STREAM workloads (GEMM uses
/// this to account its DRAM traffic).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AccessPattern {
    /// Bytes read from DRAM.
    pub read_bytes: u64,
    /// Bytes written to DRAM.
    pub write_bytes: u64,
    /// Whether accesses are sequential (streaming) or strided/random.
    pub sequential: bool,
}

impl AccessPattern {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Efficiency penalty for non-sequential traffic.
    pub fn pattern_factor(&self) -> f64 {
        if self.sequential {
            1.0
        } else {
            0.55
        }
    }
}

/// Calibration: efficiency (fraction of theoretical bandwidth) for
/// (chip, agent, kernel), at full thread count / full occupancy.
///
/// Anchors (paper §5.1): CPU best 59/78/92/103 GB/s, GPU best
/// 60/91/92/100 GB/s on M1/M2/M3/M4 against theoretical 67/100/100/120;
/// the M2 CPU shows a 20–30 GB/s Copy/Scale deficit.
fn efficiency(chip: ChipGeneration, agent: Agent, kernel: StreamKernelKind) -> f64 {
    use ChipGeneration::*;
    use StreamKernelKind::*;
    match (chip, agent) {
        (M1, Agent::Cpu) => match kernel {
            Copy => 0.830,
            Scale => 0.840,
            Add => 0.860,
            Triad => 0.880, // 59.0 GB/s
        },
        (M2, Agent::Cpu) => match kernel {
            // The anomaly: Copy/Scale land 20–30 GB/s under Add/Triad.
            Copy => 0.520,
            Scale => 0.540,
            Add => 0.760,
            Triad => 0.780, // 78.0 GB/s
        },
        (M3, Agent::Cpu) => match kernel {
            Copy => 0.870,
            Scale => 0.880,
            Add => 0.900,
            Triad => 0.920, // 92.0 GB/s
        },
        (M4, Agent::Cpu) => match kernel {
            Copy => 0.810,
            Scale => 0.820,
            Add => 0.840,
            Triad => 0.858, // 103.0 GB/s
        },
        (M1, Agent::Gpu) => match kernel {
            Copy => 0.870,
            Scale => 0.870,
            Add => 0.890,
            Triad => 0.895, // 60.0 GB/s
        },
        (M2, Agent::Gpu) => match kernel {
            Copy => 0.880,
            Scale => 0.880,
            Add => 0.900,
            Triad => 0.910, // 91.0 GB/s
        },
        (M3, Agent::Gpu) => match kernel {
            Copy => 0.890,
            Scale => 0.890,
            Add => 0.910,
            Triad => 0.920, // 92.0 GB/s
        },
        (M4, Agent::Gpu) => match kernel {
            Copy => 0.800,
            Scale => 0.800,
            Add => 0.820,
            Triad => 0.833, // 100.0 GB/s
        },
        // The ANE is never benchmarked by the paper; give it a GPU-like
        // streaming efficiency for arbitration modeling.
        (_, Agent::NeuralEngine) => 0.80,
    }
}

/// The effective-bandwidth model for one chip.
#[derive(Debug, Clone, Serialize)]
pub struct BandwidthModel {
    controller: MemoryController,
    #[serde(skip)]
    cpu: CpuComplex,
}

impl BandwidthModel {
    /// Model for a chip generation.
    pub fn of(chip: ChipGeneration) -> Self {
        BandwidthModel {
            controller: MemoryController::of(chip),
            cpu: CpuComplex::of(chip.spec()),
        }
    }

    /// The underlying controller.
    pub fn controller(&self) -> &MemoryController {
        &self.controller
    }

    /// CPU thread-scaling factor in (0, 1]: a concave saturating curve on
    /// the core-weighted memory demand. One P-core reaches ~35–40% of the
    /// saturated link; the P-cluster (4 threads) ~85%; all cores ≈100%.
    pub fn thread_scaling(&self, threads: u32) -> f64 {
        if threads == 0 {
            return 0.0;
        }
        let w = self.cpu.memory_demand_weight(threads);
        const K: f64 = 0.35;
        w / (w + K * (1.0 - w))
    }

    /// Effective STREAM bandwidth in GB/s for an agent running `kernel`
    /// with `threads` CPU threads (ignored for GPU agents — a full-size
    /// dispatch saturates occupancy).
    pub fn stream_gbs(&self, agent: Agent, kernel: StreamKernelKind, threads: u32) -> f64 {
        let eta = efficiency(self.controller.chip(), agent, kernel);
        let scale = match agent {
            Agent::Cpu => self.thread_scaling(threads),
            Agent::Gpu | Agent::NeuralEngine => 1.0,
        };
        self.controller.theoretical_gbs() * eta * scale
    }

    /// Effective bandwidth for a generic access pattern at full occupancy,
    /// GB/s. Uses the agent's Triad-class streaming efficiency degraded by
    /// the pattern factor.
    pub fn pattern_gbs(&self, agent: Agent, pattern: &AccessPattern) -> f64 {
        let eta = efficiency(self.controller.chip(), agent, StreamKernelKind::Triad);
        self.controller.theoretical_gbs() * eta * pattern.pattern_factor()
    }

    /// Time to move `bytes` at the modeled STREAM bandwidth.
    pub fn transfer_time(
        &self,
        agent: Agent,
        kernel: StreamKernelKind,
        threads: u32,
        bytes: u64,
    ) -> SimDuration {
        let gbs = self.stream_gbs(agent, kernel, threads);
        if gbs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / (gbs * 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(gen: ChipGeneration) -> BandwidthModel {
        BandwidthModel::of(gen)
    }

    #[test]
    fn kernel_byte_accounting_matches_stream_c() {
        assert_eq!(StreamKernelKind::Copy.bytes_per_element(8), 16);
        assert_eq!(StreamKernelKind::Scale.bytes_per_element(8), 16);
        assert_eq!(StreamKernelKind::Add.bytes_per_element(8), 24);
        assert_eq!(StreamKernelKind::Triad.bytes_per_element(8), 24);
        assert_eq!(StreamKernelKind::Triad.bytes_per_element(4), 12);
    }

    #[test]
    fn flops_per_element() {
        assert_eq!(StreamKernelKind::Copy.flops_per_element(), 0);
        assert_eq!(StreamKernelKind::Triad.flops_per_element(), 2);
    }

    #[test]
    fn cpu_peak_bandwidth_matches_paper_anchors() {
        // Paper §5.1: 59 / 78 / 92 / 103 GB/s for M1..M4 CPU (best kernel,
        // full thread sweep).
        let expected = [
            (ChipGeneration::M1, 59.0),
            (ChipGeneration::M2, 78.0),
            (ChipGeneration::M3, 92.0),
            (ChipGeneration::M4, 103.0),
        ];
        for (gen, gbs) in expected {
            let m = model(gen);
            let best = StreamKernelKind::ALL
                .iter()
                .map(|k| m.stream_gbs(Agent::Cpu, *k, gen.spec().total_cores()))
                .fold(0.0, f64::max);
            assert!((best - gbs).abs() / gbs < 0.01, "{gen}: {best} vs {gbs}");
        }
    }

    #[test]
    fn gpu_peak_bandwidth_matches_paper_anchors() {
        // Paper §5.1: 60 / 91 / 92 / 100 GB/s for M1..M4 GPU.
        let expected = [
            (ChipGeneration::M1, 60.0),
            (ChipGeneration::M2, 91.0),
            (ChipGeneration::M3, 92.0),
            (ChipGeneration::M4, 100.0),
        ];
        for (gen, gbs) in expected {
            let m = model(gen);
            let best = StreamKernelKind::ALL
                .iter()
                .map(|k| m.stream_gbs(Agent::Gpu, *k, 0))
                .fold(0.0, f64::max);
            assert!((best - gbs).abs() / gbs < 0.01, "{gen}: {best} vs {gbs}");
        }
    }

    #[test]
    fn m2_cpu_copy_scale_anomaly() {
        // Paper: "The M2 CPU deviates with a 20-30 GB/s gap comparing the
        // Copy and Scale to other kernels".
        let m = model(ChipGeneration::M2);
        let threads = ChipGeneration::M2.spec().total_cores();
        let copy = m.stream_gbs(Agent::Cpu, StreamKernelKind::Copy, threads);
        let triad = m.stream_gbs(Agent::Cpu, StreamKernelKind::Triad, threads);
        let gap = triad - copy;
        assert!((20.0..=30.0).contains(&gap), "gap {gap} GB/s");
        // No other chip shows a gap anywhere near that.
        for gen in [ChipGeneration::M1, ChipGeneration::M3, ChipGeneration::M4] {
            let m = model(gen);
            let t = gen.spec().total_cores();
            let gap = m.stream_gbs(Agent::Cpu, StreamKernelKind::Triad, t)
                - m.stream_gbs(Agent::Cpu, StreamKernelKind::Copy, t);
            assert!(gap < 10.0, "{gen} gap {gap}");
        }
    }

    #[test]
    fn all_chips_reach_about_85_percent_of_peak() {
        // Paper: "All chips get to ≈ 85% of theoretical peak bandwidth".
        for gen in ChipGeneration::ALL {
            let m = model(gen);
            let best_any = StreamKernelKind::ALL
                .iter()
                .flat_map(|k| {
                    [
                        m.stream_gbs(Agent::Cpu, *k, gen.spec().total_cores()),
                        m.stream_gbs(Agent::Gpu, *k, 0),
                    ]
                })
                .fold(0.0, f64::max);
            let frac = best_any / gen.spec().memory_bandwidth_gbs;
            assert!((0.82..=0.95).contains(&frac), "{gen}: {frac}");
        }
    }

    #[test]
    fn thread_scaling_is_concave_and_saturating() {
        let m = model(ChipGeneration::M1);
        assert_eq!(m.thread_scaling(0), 0.0);
        let s1 = m.thread_scaling(1);
        let s2 = m.thread_scaling(2);
        let s3 = m.thread_scaling(3);
        let s4 = m.thread_scaling(4);
        let s8 = m.thread_scaling(8);
        assert!(s1 > 0.3 && s1 < 0.45, "single core ~35-40%: {s1}");
        assert!(s2 > s1 && s3 > s2 && s4 > s3 && s8 > s4);
        assert!((s8 - 1.0).abs() < 1e-9, "all cores saturate: {s8}");
        // Diminishing returns per added thread (concavity).
        assert!(s2 - s1 > s3 - s2 - 1e-12);
    }

    #[test]
    fn transfer_time_scales_linearly_with_bytes() {
        let m = model(ChipGeneration::M3);
        let t1 = m.transfer_time(Agent::Gpu, StreamKernelKind::Copy, 0, 1 << 30);
        let t2 = m.transfer_time(Agent::Gpu, StreamKernelKind::Copy, 0, 2 << 30);
        let ratio = t2.as_secs_f64() / t1.as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    fn pattern_bandwidth_penalizes_random_access() {
        let m = model(ChipGeneration::M4);
        let seq = AccessPattern {
            read_bytes: 1 << 20,
            write_bytes: 1 << 20,
            sequential: true,
        };
        let rand = AccessPattern {
            read_bytes: 1 << 20,
            write_bytes: 1 << 20,
            sequential: false,
        };
        assert!(m.pattern_gbs(Agent::Gpu, &seq) > m.pattern_gbs(Agent::Gpu, &rand));
        assert_eq!(seq.total_bytes(), 2 << 20);
    }

    #[test]
    fn bandwidth_never_exceeds_theoretical() {
        for gen in ChipGeneration::ALL {
            let m = model(gen);
            for agent in [Agent::Cpu, Agent::Gpu, Agent::NeuralEngine] {
                for kernel in StreamKernelKind::ALL {
                    for threads in [1, 2, 4, 8, 16] {
                        let gbs = m.stream_gbs(agent, kernel, threads);
                        assert!(gbs <= gen.spec().memory_bandwidth_gbs);
                        assert!(gbs >= 0.0);
                    }
                }
            }
        }
    }
}
