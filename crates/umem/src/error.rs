//! Error type for the unified-memory subsystem.

use std::fmt;

/// Errors produced by allocation and buffer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UmemError {
    /// The address space cannot satisfy the allocation.
    OutOfMemory {
        /// Bytes requested (after page round-up).
        requested: u64,
        /// Bytes remaining in the space.
        available: u64,
    },
    /// A zero-length allocation was requested.
    ZeroLength,
    /// A no-copy wrap requires page-divisible length and alignment
    /// (`newBufferWithBytesNoCopy` semantics).
    NotPageDivisible {
        /// The offending length in bytes.
        length: u64,
    },
    /// Buffer accessed with the wrong storage mode (e.g. CPU touching a
    /// `Private` buffer).
    StorageModeViolation {
        /// What was attempted.
        operation: &'static str,
    },
    /// Index or range outside the buffer.
    OutOfBounds {
        /// Requested index/offset.
        index: usize,
        /// Buffer length in elements.
        len: usize,
    },
}

impl fmt::Display for UmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UmemError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "out of unified memory: requested {requested} B, available {available} B"
                )
            }
            UmemError::ZeroLength => write!(f, "zero-length allocation"),
            UmemError::NotPageDivisible { length } => {
                write!(
                    f,
                    "length {length} B is not a multiple of the 16384 B page size"
                )
            }
            UmemError::StorageModeViolation { operation } => {
                write!(f, "storage-mode violation: {operation}")
            }
            UmemError::OutOfBounds { index, len } => {
                write!(f, "access at {index} outside buffer of length {len}")
            }
        }
    }
}

impl std::error::Error for UmemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = UmemError::OutOfMemory {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("requested 100"));
        assert!(UmemError::ZeroLength.to_string().contains("zero-length"));
        assert!(UmemError::NotPageDivisible { length: 5 }
            .to_string()
            .contains("16384"));
        assert!(UmemError::StorageModeViolation {
            operation: "cpu read of private buffer"
        }
        .to_string()
        .contains("cpu read"));
        assert!(UmemError::OutOfBounds { index: 9, len: 3 }
            .to_string()
            .contains("9"));
    }
}
