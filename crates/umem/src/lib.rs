//! # oranges-umem — unified memory subsystem
//!
//! Apple Silicon's unified memory (paper §2.4) is a single LPDDR pool on the
//! SoC package, shared by CPU, GPU, Neural Engine and coprocessors through
//! one memory controller. This crate simulates that subsystem:
//!
//! - [`page`]: the 16384-byte page geometry the paper allocates against
//!   (§3.2: `aligned_alloc` with 16,384-byte pages, lengths rounded up to
//!   page multiples "such that the GPU could bypass memory copying");
//! - [`address`]: a simulated physical address space handing out
//!   page-aligned allocations;
//! - [`buffer`]: [`buffer::UnifiedBuffer`] — a typed, page-aligned
//!   allocation with Metal-style storage modes (`Shared` / `Private`);
//! - [`controller`]: the per-chip memory controller — LPDDR channel math,
//!   per-agent arbitration;
//! - [`bandwidth`]: the effective-bandwidth model calibrated against the
//!   paper's Figure 1 (STREAM), including the M2 CPU Copy/Scale anomaly and
//!   CPU thread-count scaling.
//!
//! Functional data lives in ordinary host `Vec`s; *addresses* and *timing*
//! are simulated. That split lets kernels compute real results while
//! bandwidth/latency numbers stay deterministic and faithful to the modeled
//! hardware.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod bandwidth;
pub mod buffer;
pub mod controller;
pub mod error;
pub mod page;

pub use address::AddressSpace;
pub use bandwidth::{BandwidthModel, StreamKernelKind};
pub use buffer::{StorageMode, UnifiedBuffer};
pub use controller::{Agent, MemoryController};
pub use error::UmemError;
pub use page::{round_up_to_page, PAGE_SIZE};

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::address::AddressSpace;
    pub use crate::bandwidth::{AccessPattern, BandwidthModel, StreamKernelKind};
    pub use crate::buffer::{StorageMode, UnifiedBuffer};
    pub use crate::controller::{Agent, MemoryController};
    pub use crate::error::UmemError;
    pub use crate::page::{round_up_to_page, PAGE_SIZE};
}
