//! The unified-memory controller.
//!
//! One controller per SoC arbitrates CPU, GPU and accelerator traffic into
//! the LPDDR channels (§2.4: "the memory controller dynamically allocates
//! resources across different compute units"). The controller owns the
//! theoretical-bandwidth math (channel count × transfer rate × bus width)
//! and the arbitration policy used when several agents stream at once.

use oranges_soc::chip::{ChipGeneration, ChipSpec, MemoryTechnology};
use serde::Serialize;

/// A bus agent — a client of the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Agent {
    /// The CPU complex (both clusters; AMX loads/stores also arrive here).
    Cpu,
    /// The GPU.
    Gpu,
    /// The Neural Engine (modeled for arbitration completeness; the paper
    /// runs no ANE workloads).
    NeuralEngine,
}

impl Agent {
    /// Display label.
    pub const fn label(&self) -> &'static str {
        match self {
            Agent::Cpu => "CPU",
            Agent::Gpu => "GPU",
            Agent::NeuralEngine => "ANE",
        }
    }
}

/// The memory controller of one chip.
#[derive(Debug, Clone, Serialize)]
pub struct MemoryController {
    chip: ChipGeneration,
    /// Total bus width in bits (128 on all baseline M-series chips).
    bus_width_bits: u32,
    /// Theoretical bandwidth, GB/s (Table 1).
    theoretical_gbs: f64,
}

impl MemoryController {
    /// Controller for a chip generation.
    pub fn of(chip: ChipGeneration) -> Self {
        let spec = chip.spec();
        MemoryController {
            chip,
            bus_width_bits: 128,
            theoretical_gbs: spec.memory_bandwidth_gbs,
        }
    }

    /// The chip this controller belongs to.
    pub fn chip(&self) -> ChipGeneration {
        self.chip
    }

    /// Theoretical bandwidth, GB/s.
    pub fn theoretical_gbs(&self) -> f64 {
        self.theoretical_gbs
    }

    /// Theoretical bandwidth from first principles:
    /// `transfer rate × bus width / 8`. Table 1's numbers are these values
    /// rounded to marketing figures; the derivation is exposed so tests can
    /// assert consistency.
    pub fn derived_gbs(&self) -> f64 {
        let spec: &ChipSpec = self.chip.spec();
        spec.memory.transfer_rate_mts() as f64 * 1e6 * (self.bus_width_bits as f64 / 8.0) / 1e9
    }

    /// The memory technology backing the pool.
    pub fn technology(&self) -> MemoryTechnology {
        self.chip.spec().memory
    }

    /// Share of bandwidth granted to each of `n` simultaneously streaming
    /// agents. Arbitration is near-fair with a small loss to switching
    /// overhead (3% per extra agent).
    pub fn arbitration_share(&self, active_agents: u32) -> f64 {
        if active_agents == 0 {
            return 0.0;
        }
        let fair = 1.0 / active_agents as f64;
        let overhead = 0.03 * (active_agents.saturating_sub(1)) as f64;
        fair * (1.0 - overhead).max(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theoretical_matches_table1() {
        assert_eq!(
            MemoryController::of(ChipGeneration::M1).theoretical_gbs(),
            67.0
        );
        assert_eq!(
            MemoryController::of(ChipGeneration::M2).theoretical_gbs(),
            100.0
        );
        assert_eq!(
            MemoryController::of(ChipGeneration::M3).theoretical_gbs(),
            100.0
        );
        assert_eq!(
            MemoryController::of(ChipGeneration::M4).theoretical_gbs(),
            120.0
        );
    }

    #[test]
    fn derived_bandwidth_is_close_to_published() {
        // LPDDR4X-4266 × 128 bit = 68.3 GB/s vs published 67 (±3%).
        // LPDDR5-6400 × 128 bit = 102.4 vs 100; LPDDR5X-7500 × 128 = 120.
        for gen in ChipGeneration::ALL {
            let c = MemoryController::of(gen);
            let rel = (c.derived_gbs() - c.theoretical_gbs()).abs() / c.theoretical_gbs();
            assert!(
                rel < 0.03,
                "{gen}: derived {} vs published {}",
                c.derived_gbs(),
                c.theoretical_gbs()
            );
        }
    }

    #[test]
    fn technology_per_generation() {
        assert_eq!(
            MemoryController::of(ChipGeneration::M1).technology().name(),
            "LPDDR4X"
        );
        assert_eq!(
            MemoryController::of(ChipGeneration::M4).technology().name(),
            "LPDDR5X"
        );
    }

    #[test]
    fn arbitration_is_near_fair() {
        let c = MemoryController::of(ChipGeneration::M2);
        assert_eq!(c.arbitration_share(0), 0.0);
        assert_eq!(c.arbitration_share(1), 1.0);
        let two = c.arbitration_share(2);
        assert!(two < 0.5 && two > 0.45, "{two}");
        let three = c.arbitration_share(3);
        assert!(three < two);
    }

    #[test]
    fn agent_labels() {
        assert_eq!(Agent::Cpu.label(), "CPU");
        assert_eq!(Agent::Gpu.label(), "GPU");
        assert_eq!(Agent::NeuralEngine.label(), "ANE");
    }
}
