//! Property tests: statistics, CSV round-trips, JSON validity, tables,
//! and the MetricSet serialization contract (lossless round-trips, unit
//! labels never dropped).

use oranges_harness::csv::{parse, CsvWriter};
use oranges_harness::experiment::RepetitionProtocol;
use oranges_harness::json::to_json_string;
use oranges_harness::metric::{self, MetricRow, MetricSet, MetricValue, PowerContext};
use oranges_harness::stats::{best_of, geometric_mean, Summary};
use oranges_harness::table::TextTable;
use oranges_harness::transport::Endpoint;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Drawn ingredients → one typed value. Kind cycles through all four
/// variants; floats are drawn finite (non-finite serializes as JSON
/// null by design and cannot round-trip).
fn assemble_value(
    kind: u8,
    floats: &[f64],
    ints: &[i64],
    texts: &[String],
    i: usize,
) -> MetricValue {
    match kind % 4 {
        0 => MetricValue::Float(floats[i % floats.len()]),
        1 => MetricValue::Int(ints[i % ints.len()]),
        2 => MetricValue::Bool(ints[i % ints.len()] % 2 == 0),
        _ => MetricValue::Text(texts[i % texts.len()].clone()),
    }
}

/// Drawn ingredients → arbitrary-but-valid rows. Names/units/labels
/// exercise commas, quotes, spaces and unicode — everything the CSV and
/// JSON escapers must survive.
#[allow(clippy::too_many_arguments)]
fn assemble_rows(
    kinds: &[u8],
    names: &[String],
    units: &[String],
    floats: &[f64],
    ints: &[i64],
    texts: &[String],
    ns: &[u64],
) -> Vec<MetricRow> {
    kinds
        .iter()
        .enumerate()
        .map(|(i, &kind)| MetricRow {
            experiment: format!("exp{}", kind % 3),
            chip: match kind % 5 {
                0 => None,
                variant => Some(format!("M{variant}")),
            },
            implementation: if kind % 3 == 0 {
                None
            } else {
                Some(texts[i % texts.len()].clone()).filter(|t| !t.is_empty())
            },
            n: if kind % 2 == 0 {
                Some(ns[i % ns.len()])
            } else {
                None
            },
            metric: names[i % names.len()].clone(),
            value: assemble_value(kind / 4, floats, ints, texts, i),
            unit: units[i % units.len()].clone(),
        })
        .collect()
}

proptest! {
    #[test]
    fn summary_bounds(samples in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
        let s = Summary::of(&samples).unwrap();
        prop_assert_eq!(s.count, samples.len());
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.stddev >= 0.0);
        prop_assert!(s.stddev <= (s.max - s.min) + 1e-9);
    }

    #[test]
    fn best_of_is_max(samples in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
        let best = best_of(&samples).unwrap();
        for v in &samples {
            prop_assert!(best >= *v);
        }
        prop_assert!(samples.contains(&best));
    }

    #[test]
    fn geometric_mean_between_min_and_max(
        samples in proptest::collection::vec(1e-3f64..1e6, 1..32)
    ) {
        let g = geometric_mean(&samples).unwrap();
        let min = samples.iter().copied().fold(f64::MAX, f64::min);
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
    }

    #[test]
    fn csv_round_trips_arbitrary_cells(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-zA-Z0-9 ,\"']{0,20}", 3..4), 0..12)
    ) {
        let mut writer = CsvWriter::new(&["a", "b", "c"]);
        for row in &rows {
            let cells: Vec<String> = row.clone();
            writer.row(&cells);
        }
        let text = writer.finish();
        let parsed = parse(&text);
        prop_assert_eq!(parsed.len(), rows.len() + 1);
        for (parsed_row, row) in parsed[1..].iter().zip(&rows) {
            prop_assert_eq!(parsed_row, row);
        }
    }

    #[test]
    fn json_emits_valid_maps(entries in proptest::collection::btree_map(
        "[a-z]{1,8}", -1e9f64..1e9, 0..16))
    {
        let map: BTreeMap<String, f64> = entries;
        let json = to_json_string(&map).unwrap();
        let well_formed = json.starts_with('{') && json.ends_with('}');
        prop_assert!(well_formed, "not an object: {}", json);
        // Each key appears quoted exactly once.
        for key in map.keys() {
            let needle = format!("\"{key}\":");
            prop_assert!(json.contains(&needle), "missing {}", needle);
        }
    }

    #[test]
    fn protocol_runs_exact_count(reps in 1u32..30, warmup in 0u32..10) {
        let protocol = RepetitionProtocol { reps, warmup };
        let mut calls = 0u32;
        let kept = protocol.run(|_| {
            calls += 1;
            calls
        });
        prop_assert_eq!(calls, reps + warmup);
        prop_assert_eq!(kept.len(), reps as usize);
        // The kept values are the last `reps` calls.
        prop_assert_eq!(kept[0], warmup + 1);
    }

    #[test]
    fn metric_rows_csv_round_trips_and_keeps_units(
        kinds in proptest::collection::vec(0u8..20, 1..24),
        names in proptest::collection::vec("[a-z_]{1,10}", 1..8),
        units in proptest::collection::vec("[a-zA-Z/%° ,\"]{1,6}", 1..8),
        floats in proptest::collection::vec(-1e9f64..1e9, 1..8),
        ints in proptest::collection::vec(any::<i64>(), 1..8),
        texts in proptest::collection::vec("[a-zA-Z0-9 ,\"'/-]{0,12}", 1..8),
        ns in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        let rows = assemble_rows(&kinds, &names, &units, &floats, &ints, &texts, &ns);
        let csv = metric::rows_to_csv(&rows);
        let reloaded = metric::rows_from_csv(&csv).expect("own CSV parses");
        // Lossless: typed values, coordinates and unit labels all survive.
        prop_assert_eq!(&reloaded, &rows);
        for row in &reloaded {
            prop_assert!(!row.unit.is_empty(), "unit label dropped: {:?}", row);
        }
        // Re-emission is byte-identical (canonical form).
        prop_assert_eq!(metric::rows_to_csv(&reloaded), csv);
    }

    #[test]
    fn metric_sets_json_round_trips_and_keeps_units(
        kinds in proptest::collection::vec(0u8..20, 1..16),
        names in proptest::collection::vec("[a-z_]{1,10}", 1..8),
        units in proptest::collection::vec("[a-zA-Z/%° ,\"]{1,6}", 1..8),
        floats in proptest::collection::vec(-1e9f64..1e9, 2..8),
        ints in proptest::collection::vec(any::<i64>(), 1..8),
        texts in proptest::collection::vec("[a-zA-Z0-9 ,\"'/-]{0,12}", 1..8),
        ns in proptest::collection::vec(any::<u64>(), 1..8),
        params in "[a-z0-9=;,]{0,20}",
    ) {
        // One set per drawn kind, each with 0..3 metrics and (half the
        // time) a power context.
        let sets: Vec<MetricSet> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                let mut set = match kind % 3 {
                    0 => MetricSet::new(&format!("exp{}", kind % 5), &params),
                    variant => MetricSet::for_chip(
                        &format!("exp{}", kind % 5),
                        &params,
                        &format!("M{variant}"),
                    ),
                };
                if kind % 4 == 1 {
                    set = set.with_implementation(&format!("impl-{}", texts[i % texts.len()]));
                }
                if kind % 2 == 0 {
                    set = set.with_n(ns[i % ns.len()]);
                }
                if kind % 4 >= 2 {
                    set = set.with_power(PowerContext {
                        package_watts: floats[i % floats.len()].abs(),
                        energy_j: floats[(i + 1) % floats.len()].abs(),
                        window_s: floats[i % floats.len()].abs() + 1e-3,
                        dvfs_cap: if kind % 8 >= 4 { 1.0 } else { 0.5 },
                    });
                }
                for m in 0..(kind % 3) {
                    let index = i + m as usize;
                    set = set.metric(
                        &names[index % names.len()],
                        assemble_value(kind / 3 + m, &floats, &ints, &texts, index),
                        &units[index % units.len()],
                    );
                }
                set
            })
            .collect();

        let json = metric::sets_to_json(&sets).expect("serializes");
        let reloaded = metric::sets_from_json(&json).expect("own JSON parses");
        prop_assert_eq!(&reloaded, &sets);
        // Unit labels are never dropped anywhere in the pipeline.
        for set in &reloaded {
            for m in &set.metrics {
                prop_assert!(!m.unit.is_empty(), "unit label dropped: {:?}", m);
            }
        }
        // Re-emission is byte-identical (canonical form).
        prop_assert_eq!(metric::sets_to_json(&reloaded).expect("serializes"), json);
    }

    #[test]
    fn tables_render_rectangles(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-zA-Z0-9 ]{0,12}", 2..3), 0..10)
    ) {
        let mut table = TextTable::new(vec!["col1", "col2"]);
        for row in &rows {
            table.row(row.clone());
        }
        let text = table.render();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), rows.len() + 2);
        let width = lines[0].chars().count();
        for line in &lines {
            prop_assert_eq!(line.chars().count(), width);
        }
    }
}

proptest! {
    /// `Endpoint` display and parse are exact inverses: any `unix:` path
    /// and any `tcp:host:port` authority survives a full
    /// display → parse → display cycle byte-for-byte, and the typed
    /// value survives parse → display → parse. (The transport layer
    /// leans on this: fleet lists, `--listen` flags, and resolved
    /// listener endpoints all travel as strings.)
    #[test]
    fn endpoints_round_trip_between_display_and_parse(
        path in "[a-zA-Z0-9_. /-]{1,32}",
        host in "[a-z0-9.-]{1,20}",
        port in 0u32..65536,
    ) {
        let unix_text = format!("unix:/{path}");
        let unix: Endpoint = unix_text.parse().expect("unix endpoint parses");
        prop_assert_eq!(&unix.to_string(), &unix_text);
        prop_assert_eq!(&unix.to_string().parse::<Endpoint>().expect("re-parses"), &unix);

        let tcp_text = format!("tcp:{host}:{port}");
        let tcp: Endpoint = tcp_text.parse().expect("tcp endpoint parses");
        prop_assert_eq!(&tcp.to_string(), &tcp_text);
        prop_assert_eq!(&tcp.to_string().parse::<Endpoint>().expect("re-parses"), &tcp);
        prop_assert_eq!(tcp.scheme(), "tcp");
    }
}
