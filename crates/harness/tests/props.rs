//! Property tests: statistics, CSV round-trips, JSON validity, tables.

use oranges_harness::csv::{parse, CsvWriter};
use oranges_harness::experiment::RepetitionProtocol;
use oranges_harness::json::to_json_string;
use oranges_harness::stats::{best_of, geometric_mean, Summary};
use oranges_harness::table::TextTable;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #[test]
    fn summary_bounds(samples in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
        let s = Summary::of(&samples).unwrap();
        prop_assert_eq!(s.count, samples.len());
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.stddev >= 0.0);
        prop_assert!(s.stddev <= (s.max - s.min) + 1e-9);
    }

    #[test]
    fn best_of_is_max(samples in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
        let best = best_of(&samples).unwrap();
        for v in &samples {
            prop_assert!(best >= *v);
        }
        prop_assert!(samples.contains(&best));
    }

    #[test]
    fn geometric_mean_between_min_and_max(
        samples in proptest::collection::vec(1e-3f64..1e6, 1..32)
    ) {
        let g = geometric_mean(&samples).unwrap();
        let min = samples.iter().copied().fold(f64::MAX, f64::min);
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
    }

    #[test]
    fn csv_round_trips_arbitrary_cells(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-zA-Z0-9 ,\"']{0,20}", 3..4), 0..12)
    ) {
        let mut writer = CsvWriter::new(&["a", "b", "c"]);
        for row in &rows {
            let cells: Vec<String> = row.clone();
            writer.row(&cells);
        }
        let text = writer.finish();
        let parsed = parse(&text);
        prop_assert_eq!(parsed.len(), rows.len() + 1);
        for (parsed_row, row) in parsed[1..].iter().zip(&rows) {
            prop_assert_eq!(parsed_row, row);
        }
    }

    #[test]
    fn json_emits_valid_maps(entries in proptest::collection::btree_map(
        "[a-z]{1,8}", -1e9f64..1e9, 0..16))
    {
        let map: BTreeMap<String, f64> = entries;
        let json = to_json_string(&map).unwrap();
        let well_formed = json.starts_with('{') && json.ends_with('}');
        prop_assert!(well_formed, "not an object: {}", json);
        // Each key appears quoted exactly once.
        for key in map.keys() {
            let needle = format!("\"{key}\":");
            prop_assert!(json.contains(&needle), "missing {}", needle);
        }
    }

    #[test]
    fn protocol_runs_exact_count(reps in 1u32..30, warmup in 0u32..10) {
        let protocol = RepetitionProtocol { reps, warmup };
        let mut calls = 0u32;
        let kept = protocol.run(|_| {
            calls += 1;
            calls
        });
        prop_assert_eq!(calls, reps + warmup);
        prop_assert_eq!(kept.len(), reps as usize);
        // The kept values are the last `reps` calls.
        prop_assert_eq!(kept[0], warmup + 1);
    }

    #[test]
    fn tables_render_rectangles(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-zA-Z0-9 ]{0,12}", 2..3), 0..10)
    ) {
        let mut table = TextTable::new(vec!["col1", "col2"]);
        for row in &rows {
            table.row(row.clone());
        }
        let text = table.render();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), rows.len() + 2);
        let width = lines[0].chars().count();
        for line in &lines {
            prop_assert_eq!(line.chars().count(), width);
        }
    }
}
