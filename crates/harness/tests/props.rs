//! Property tests: statistics, CSV round-trips, JSON validity, tables,
//! and the MetricSet serialization contract (lossless round-trips, unit
//! labels never dropped).

use oranges_harness::csv::{parse, CsvWriter};
use oranges_harness::envelope::{Request, Response};
use oranges_harness::experiment::RepetitionProtocol;
use oranges_harness::json::{to_json_string, JsonValue};
use oranges_harness::metric::{self, MetricRow, MetricSet, MetricValue, PowerContext};
use oranges_harness::obs::{
    escape_label_value, log_spaced_buckets, sanitize_label_name, sanitize_metric_name, Exposition,
    Histogram,
};
use oranges_harness::reactor::{FrameBuffer, WriteQueue};
use oranges_harness::stats::{best_of, geometric_mean, Summary};
use oranges_harness::table::TextTable;
use oranges_harness::transport::Endpoint;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Drawn ingredients → one typed value. Kind cycles through all four
/// variants; floats are drawn finite (non-finite serializes as JSON
/// null by design and cannot round-trip).
fn assemble_value(
    kind: u8,
    floats: &[f64],
    ints: &[i64],
    texts: &[String],
    i: usize,
) -> MetricValue {
    match kind % 4 {
        0 => MetricValue::Float(floats[i % floats.len()]),
        1 => MetricValue::Int(ints[i % ints.len()]),
        2 => MetricValue::Bool(ints[i % ints.len()] % 2 == 0),
        _ => MetricValue::Text(texts[i % texts.len()].clone()),
    }
}

/// Drawn ingredients → arbitrary-but-valid rows. Names/units/labels
/// exercise commas, quotes, spaces and unicode — everything the CSV and
/// JSON escapers must survive.
#[allow(clippy::too_many_arguments)]
fn assemble_rows(
    kinds: &[u8],
    names: &[String],
    units: &[String],
    floats: &[f64],
    ints: &[i64],
    texts: &[String],
    ns: &[u64],
) -> Vec<MetricRow> {
    kinds
        .iter()
        .enumerate()
        .map(|(i, &kind)| MetricRow {
            experiment: format!("exp{}", kind % 3),
            chip: match kind % 5 {
                0 => None,
                variant => Some(format!("M{variant}")),
            },
            implementation: if kind % 3 == 0 {
                None
            } else {
                Some(texts[i % texts.len()].clone()).filter(|t| !t.is_empty())
            },
            n: if kind % 2 == 0 {
                Some(ns[i % ns.len()])
            } else {
                None
            },
            metric: names[i % names.len()].clone(),
            value: assemble_value(kind / 4, floats, ints, texts, i),
            unit: units[i % units.len()].clone(),
        })
        .collect()
}

proptest! {
    #[test]
    fn summary_bounds(samples in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
        let s = Summary::of(&samples).unwrap();
        prop_assert_eq!(s.count, samples.len());
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.stddev >= 0.0);
        prop_assert!(s.stddev <= (s.max - s.min) + 1e-9);
    }

    #[test]
    fn best_of_is_max(samples in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
        let best = best_of(&samples).unwrap();
        for v in &samples {
            prop_assert!(best >= *v);
        }
        prop_assert!(samples.contains(&best));
    }

    #[test]
    fn geometric_mean_between_min_and_max(
        samples in proptest::collection::vec(1e-3f64..1e6, 1..32)
    ) {
        let g = geometric_mean(&samples).unwrap();
        let min = samples.iter().copied().fold(f64::MAX, f64::min);
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
    }

    #[test]
    fn csv_round_trips_arbitrary_cells(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-zA-Z0-9 ,\"']{0,20}", 3..4), 0..12)
    ) {
        let mut writer = CsvWriter::new(&["a", "b", "c"]);
        for row in &rows {
            let cells: Vec<String> = row.clone();
            writer.row(&cells);
        }
        let text = writer.finish();
        let parsed = parse(&text);
        prop_assert_eq!(parsed.len(), rows.len() + 1);
        for (parsed_row, row) in parsed[1..].iter().zip(&rows) {
            prop_assert_eq!(parsed_row, row);
        }
    }

    #[test]
    fn json_emits_valid_maps(entries in proptest::collection::btree_map(
        "[a-z]{1,8}", -1e9f64..1e9, 0..16))
    {
        let map: BTreeMap<String, f64> = entries;
        let json = to_json_string(&map).unwrap();
        let well_formed = json.starts_with('{') && json.ends_with('}');
        prop_assert!(well_formed, "not an object: {}", json);
        // Each key appears quoted exactly once.
        for key in map.keys() {
            let needle = format!("\"{key}\":");
            prop_assert!(json.contains(&needle), "missing {}", needle);
        }
    }

    #[test]
    fn protocol_runs_exact_count(reps in 1u32..30, warmup in 0u32..10) {
        let protocol = RepetitionProtocol { reps, warmup };
        let mut calls = 0u32;
        let kept = protocol.run(|_| {
            calls += 1;
            calls
        });
        prop_assert_eq!(calls, reps + warmup);
        prop_assert_eq!(kept.len(), reps as usize);
        // The kept values are the last `reps` calls.
        prop_assert_eq!(kept[0], warmup + 1);
    }

    #[test]
    fn metric_rows_csv_round_trips_and_keeps_units(
        kinds in proptest::collection::vec(0u8..20, 1..24),
        names in proptest::collection::vec("[a-z_]{1,10}", 1..8),
        units in proptest::collection::vec("[a-zA-Z/%° ,\"]{1,6}", 1..8),
        floats in proptest::collection::vec(-1e9f64..1e9, 1..8),
        ints in proptest::collection::vec(any::<i64>(), 1..8),
        texts in proptest::collection::vec("[a-zA-Z0-9 ,\"'/-]{0,12}", 1..8),
        ns in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        let rows = assemble_rows(&kinds, &names, &units, &floats, &ints, &texts, &ns);
        let csv = metric::rows_to_csv(&rows);
        let reloaded = metric::rows_from_csv(&csv).expect("own CSV parses");
        // Lossless: typed values, coordinates and unit labels all survive.
        prop_assert_eq!(&reloaded, &rows);
        for row in &reloaded {
            prop_assert!(!row.unit.is_empty(), "unit label dropped: {:?}", row);
        }
        // Re-emission is byte-identical (canonical form).
        prop_assert_eq!(metric::rows_to_csv(&reloaded), csv);
    }

    #[test]
    fn metric_sets_json_round_trips_and_keeps_units(
        kinds in proptest::collection::vec(0u8..20, 1..16),
        names in proptest::collection::vec("[a-z_]{1,10}", 1..8),
        units in proptest::collection::vec("[a-zA-Z/%° ,\"]{1,6}", 1..8),
        floats in proptest::collection::vec(-1e9f64..1e9, 2..8),
        ints in proptest::collection::vec(any::<i64>(), 1..8),
        texts in proptest::collection::vec("[a-zA-Z0-9 ,\"'/-]{0,12}", 1..8),
        ns in proptest::collection::vec(any::<u64>(), 1..8),
        params in "[a-z0-9=;,]{0,20}",
    ) {
        // One set per drawn kind, each with 0..3 metrics and (half the
        // time) a power context.
        let sets: Vec<MetricSet> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                let mut set = match kind % 3 {
                    0 => MetricSet::new(&format!("exp{}", kind % 5), &params),
                    variant => MetricSet::for_chip(
                        &format!("exp{}", kind % 5),
                        &params,
                        &format!("M{variant}"),
                    ),
                };
                if kind % 4 == 1 {
                    set = set.with_implementation(&format!("impl-{}", texts[i % texts.len()]));
                }
                if kind % 2 == 0 {
                    set = set.with_n(ns[i % ns.len()]);
                }
                if kind % 4 >= 2 {
                    set = set.with_power(PowerContext {
                        package_watts: floats[i % floats.len()].abs(),
                        energy_j: floats[(i + 1) % floats.len()].abs(),
                        window_s: floats[i % floats.len()].abs() + 1e-3,
                        dvfs_cap: if kind % 8 >= 4 { 1.0 } else { 0.5 },
                    });
                }
                for m in 0..(kind % 3) {
                    let index = i + m as usize;
                    set = set.metric(
                        &names[index % names.len()],
                        assemble_value(kind / 3 + m, &floats, &ints, &texts, index),
                        &units[index % units.len()],
                    );
                }
                set
            })
            .collect();

        let json = metric::sets_to_json(&sets).expect("serializes");
        let reloaded = metric::sets_from_json(&json).expect("own JSON parses");
        prop_assert_eq!(&reloaded, &sets);
        // Unit labels are never dropped anywhere in the pipeline.
        for set in &reloaded {
            for m in &set.metrics {
                prop_assert!(!m.unit.is_empty(), "unit label dropped: {:?}", m);
            }
        }
        // Re-emission is byte-identical (canonical form).
        prop_assert_eq!(metric::sets_to_json(&reloaded).expect("serializes"), json);
    }

    #[test]
    fn tables_render_rectangles(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-zA-Z0-9 ]{0,12}", 2..3), 0..10)
    ) {
        let mut table = TextTable::new(vec!["col1", "col2"]);
        for row in &rows {
            table.row(row.clone());
        }
        let text = table.render();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), rows.len() + 2);
        let width = lines[0].chars().count();
        for line in &lines {
            prop_assert_eq!(line.chars().count(), width);
        }
    }
}

proptest! {
    /// `Endpoint` display and parse are exact inverses: any `unix:` path
    /// and any `tcp:host:port` authority survives a full
    /// display → parse → display cycle byte-for-byte, and the typed
    /// value survives parse → display → parse. (The transport layer
    /// leans on this: fleet lists, `--listen` flags, and resolved
    /// listener endpoints all travel as strings.)
    #[test]
    fn endpoints_round_trip_between_display_and_parse(
        path in "[a-zA-Z0-9_. /-]{1,32}",
        host in "[a-z0-9.-]{1,20}",
        port in 0u32..65536,
    ) {
        let unix_text = format!("unix:/{path}");
        let unix: Endpoint = unix_text.parse().expect("unix endpoint parses");
        prop_assert_eq!(&unix.to_string(), &unix_text);
        prop_assert_eq!(&unix.to_string().parse::<Endpoint>().expect("re-parses"), &unix);

        let tcp_text = format!("tcp:{host}:{port}");
        let tcp: Endpoint = tcp_text.parse().expect("tcp endpoint parses");
        prop_assert_eq!(&tcp.to_string(), &tcp_text);
        prop_assert_eq!(&tcp.to_string().parse::<Endpoint>().expect("re-parses"), &tcp);
        prop_assert_eq!(tcp.scheme(), "tcp");
    }
}

// ---------------------------------------------------------------------------
// Metrics exposition: hostile names and values always emit parseable text
// ---------------------------------------------------------------------------

/// A deliberately small parser for the exposition sample-line grammar
/// (`name{key="value",...} number`). It accepts exactly what a scraper
/// would: names in `[a-zA-Z_:][a-zA-Z0-9_:]*`, label names without the
/// colon, label values with `\\`/`\"`/`\n` escapes, and `+Inf`/`-Inf`/
/// `NaN` specials. Anything else is an error — so the property below
/// proves the writer's sanitizers cover *every* input.
type Sample = (String, Vec<(String, String)>, f64);

fn parse_sample(line: &str) -> Result<Sample, String> {
    let mut chars = line.chars().peekable();
    let mut name = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            name.push(c);
            chars.next();
        } else {
            break;
        }
    }
    if name.is_empty() {
        return Err(format!("no metric name in {line:?}"));
    }
    if name.starts_with(|c: char| c.is_ascii_digit()) {
        return Err(format!("metric name starts with a digit in {line:?}"));
    }
    let mut labels = Vec::new();
    if chars.peek() == Some(&'{') {
        chars.next();
        loop {
            if chars.peek() == Some(&'}') {
                chars.next();
                break;
            }
            let mut key = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    key.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            if key.is_empty() || key.starts_with(|c: char| c.is_ascii_digit()) {
                return Err(format!("bad label name in {line:?}"));
            }
            if chars.next() != Some('=') || chars.next() != Some('"') {
                return Err(format!("label {key} is not key=\"value\" in {line:?}"));
            }
            let mut value = String::new();
            loop {
                match chars.next() {
                    Some('\\') => match chars.next() {
                        Some('\\') => value.push('\\'),
                        Some('"') => value.push('"'),
                        Some('n') => value.push('\n'),
                        other => return Err(format!("bad escape {other:?} in {line:?}")),
                    },
                    Some('"') => break,
                    Some(c) => value.push(c),
                    None => return Err(format!("unterminated label value in {line:?}")),
                }
            }
            labels.push((key, value));
            match chars.peek() {
                Some(',') => {
                    chars.next();
                }
                Some('}') => {}
                other => return Err(format!("bad label separator {other:?} in {line:?}")),
            }
        }
    }
    if chars.next() != Some(' ') {
        return Err(format!("no space before the value in {line:?}"));
    }
    let value_text: String = chars.collect();
    let value = match value_text.as_str() {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .parse()
            .map_err(|e| format!("bad value {other:?} in {line:?}: {e}"))?,
    };
    Ok((name, labels, value))
}

proptest! {
    /// The exposition writer's whole-surface property: **arbitrary**
    /// metric names, label names, and label values — any unicode,
    /// including quotes, braces, backslashes, and newlines — emit text
    /// where every sample line re-parses, the sanitized names land in
    /// the exposition alphabet, and label values round-trip exactly
    /// through escape → parse. This is what makes `metrics` safe to
    /// build from user-influenced strings (experiment ids, endpoints).
    #[test]
    fn hostile_names_and_values_emit_a_parseable_exposition(
        raw_name in "[a-z0-9_:{}\",= éµ\n\\\\\\]]{0,12}",
        raw_label in "[a-z0-9_:{}\",= éµ\n\\\\\\]]{0,8}",
        raw_value in "[a-z0-9_:{}\",= éµ\n\\\\\\]]{0,16}",
        counter_value in 0u64..1_000_000,
        gauge_value in -1e9f64..1e9,
        observations in proptest::collection::vec(1e-5f64..1e3, 0..8),
    ) {
        let mut exposition = Exposition::new();
        exposition.counter(&raw_name, "hostile counter", &[(&raw_label, &raw_value)], counter_value);
        exposition.gauge(&format!("g_{raw_name}"), "hostile gauge", &[(&raw_label, &raw_value)], gauge_value);
        let histogram = Histogram::new(log_spaced_buckets(1e-4, 10.0, 4));
        for v in &observations {
            histogram.observe(*v);
        }
        exposition.histogram(
            &format!("h_{raw_name}"),
            "hostile histogram",
            &[(&raw_label, &raw_value)],
            &histogram.snapshot(),
        );
        let text = exposition.finish();

        // Every sample line parses; collect them for the checks below.
        let mut samples = Vec::new();
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_sample(line) {
                Ok(sample) => samples.push(sample),
                Err(e) => prop_assert!(false, "{e}"),
            }
        }

        // The counter round-trips: sanitized name, sanitized label
        // name, and the label *value* exactly as it went in.
        let counter_name = sanitize_metric_name(&raw_name);
        let (_, labels, value) = samples
            .iter()
            .find(|(name, _, _)| name == &counter_name)
            .expect("counter sample present");
        prop_assert_eq!(labels, &vec![(sanitize_label_name(&raw_label), raw_value.clone())]);
        prop_assert_eq!(*value, counter_value as f64);

        // The gauge value survives text exactly (shortest round-trip
        // float formatting).
        let gauge_name = sanitize_metric_name(&format!("g_{raw_name}"));
        let (_, _, value) = samples
            .iter()
            .find(|(name, _, _)| name == &gauge_name)
            .expect("gauge sample present");
        prop_assert_eq!(*value, gauge_value);

        // The histogram renders its full shape: one bucket per bound
        // plus +Inf, and a _count equal to the observations.
        let histogram_name = sanitize_metric_name(&format!("h_{raw_name}"));
        let buckets: Vec<_> = samples
            .iter()
            .filter(|(name, _, _)| name == &format!("{histogram_name}_bucket"))
            .collect();
        prop_assert_eq!(buckets.len(), 5);
        let inf = buckets
            .iter()
            .find(|(_, labels, _)| labels.iter().any(|(k, v)| k == "le" && v == "+Inf"))
            .expect("+Inf bucket present");
        prop_assert_eq!(inf.2, observations.len() as f64);
        let (_, _, count) = samples
            .iter()
            .find(|(name, _, _)| name == &format!("{histogram_name}_count"))
            .expect("_count sample present");
        prop_assert_eq!(*count, observations.len() as f64);

        // And the escaper itself is injective where it must be: the
        // escaped form never contains a bare quote or newline.
        let escaped = escape_label_value(&raw_value);
        prop_assert!(!escaped.contains('\n'));
        prop_assert!(!escaped.replace("\\\"", "").contains('"'));
    }
}

// ---------------------------------------------------------------------
// Nonblocking wire framing: the reactor's FrameBuffer and WriteQueue
// ---------------------------------------------------------------------

/// A writer that accepts only as many bytes per call as its script
/// allows — 0 means `WouldBlock` — cycling through the script: a peer
/// whose socket buffer fills at awkward moments.
struct ShortWriter {
    accepted: Vec<u8>,
    script: Vec<usize>,
    calls: usize,
}

impl std::io::Write for ShortWriter {
    fn write(&mut self, chunk: &[u8]) -> std::io::Result<usize> {
        let cap = self.script[self.calls % self.script.len()];
        self.calls += 1;
        if cap == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "send buffer full",
            ));
        }
        let take = cap.min(chunk.len());
        self.accepted.extend_from_slice(&chunk[..take]);
        Ok(take)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A recorded wire session: alternating request/response envelope
/// lines whose payloads mix ASCII with 2-, 3-, and 4-byte UTF-8
/// sequences, so arbitrary byte cuts land mid-character and
/// mid-envelope.
fn record_session(entries: &[(u64, String, String)]) -> Vec<String> {
    entries
        .iter()
        .enumerate()
        .map(|(i, (id, method, payload))| {
            let body = JsonValue::Object(vec![(
                "payload".to_string(),
                JsonValue::String(payload.clone()),
            )]);
            if i % 2 == 0 {
                Request::new(*id, method).with_body(body).to_line()
            } else {
                Response::ok(*id, method).with_body(body).to_line()
            }
        })
        .collect()
}

proptest! {
    /// The framing invariant the whole nonblocking service rests on:
    /// a recorded wire session cut at **arbitrary** byte boundaries —
    /// mid-envelope, mid-UTF-8 sequence, empty segments — reassembles
    /// through [`FrameBuffer`] into the exact original lines, each of
    /// which still parses as its envelope. When the session ends
    /// without a trailing newline (a peer that sends its last line and
    /// hangs up), `take_remainder` recovers that final line too.
    #[test]
    fn wire_sessions_reassemble_across_arbitrary_segmentation(
        entries in proptest::collection::vec(
            (
                proptest::prelude::any::<u64>(),
                "[a-z_]{1,8}",
                "[ -~éµλ中𝄞]{0,24}",
            ),
            1..8,
        ),
        raw_cuts in proptest::collection::vec(proptest::prelude::any::<usize>(), 0..16),
        truncate_final_newline in proptest::prelude::any::<bool>(),
    ) {
        let lines = record_session(&entries);
        let mut stream: Vec<u8> = lines.iter().flat_map(|l| l.bytes()).collect();
        if truncate_final_newline {
            stream.pop();
        }

        // Arbitrary segmentation: sorted unique cut indices into the
        // byte stream, segments fed one at a time.
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % (stream.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        cuts.push(stream.len());

        let mut buffer = FrameBuffer::new();
        let mut reassembled = Vec::new();
        let mut start = 0;
        for cut in cuts {
            buffer.extend(&stream[start..cut]);
            start = cut;
            while let Some(line) = buffer.next_line().expect("session bytes are valid UTF-8") {
                reassembled.push(line);
            }
        }
        if let Some(tail) = buffer.take_remainder().expect("tail is valid UTF-8") {
            reassembled.push(tail);
        }
        prop_assert_eq!(buffer.buffered(), 0);

        let expected: Vec<String> = lines
            .iter()
            .map(|l| l.trim_end_matches('\n').to_string())
            .collect();
        prop_assert_eq!(&reassembled, &expected, "byte-identical reassembly");
        for (i, line) in reassembled.iter().enumerate() {
            if i % 2 == 0 {
                let request = Request::from_line(line).expect("request re-parses");
                prop_assert_eq!(request.id, entries[i].0);
                prop_assert_eq!(&request.method, &entries[i].1);
            } else {
                let response = Response::from_line(line).expect("response re-parses");
                prop_assert_eq!(response.id, entries[i].0);
                prop_assert_eq!(&response.kind, &entries[i].1);
            }
        }
    }

    /// The writer-side twin: a [`WriteQueue`] flushed into a peer that
    /// takes arbitrarily few bytes per call (including `WouldBlock`
    /// stalls) delivers the byte stream intact and in order, and the
    /// queue's accounting (`pending`/`is_empty`) stays truthful
    /// throughout.
    #[test]
    fn write_queue_delivers_exact_bytes_through_short_writes(
        chunks in proptest::collection::vec("[ -~éµλ中𝄞]{0,48}", 1..12),
        mut script in proptest::collection::vec(0usize..17, 1..8),
    ) {
        // Guarantee progress: at least one nonzero capacity per cycle.
        script.push(16);
        let mut queue = WriteQueue::new();
        let mut writer = ShortWriter { accepted: Vec::new(), script, calls: 0 };
        let mut expected = Vec::new();
        for chunk in &chunks {
            queue.enqueue(chunk.as_bytes());
            expected.extend_from_slice(chunk.as_bytes());
            // Interleave flush attempts with enqueues, as the reactor does.
            queue.flush_into(&mut writer).expect("short writes are not errors");
            prop_assert!(queue.pending() <= expected.len());
        }
        let mut spins = 0;
        while !queue.is_empty() {
            queue.flush_into(&mut writer).expect("short writes are not errors");
            spins += 1;
            prop_assert!(spins < 100_000, "flush loop must make progress");
        }
        prop_assert_eq!(&writer.accepted, &expected, "exact bytes, in order");
        prop_assert_eq!(queue.pending(), 0);
    }
}
