//! ASCII figure rendering.
//!
//! Two chart types cover the paper's four figures:
//!
//! - [`grouped_bar_chart`]: Figure 1 — grouped bars per chip with a
//!   reference line (theoretical bandwidth);
//! - [`series_chart`]: Figures 2–4 — one series per implementation over
//!   the matrix-size axis, linear or log-10 y-scale.

use std::fmt::Write as _;

/// One bar in a group.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Series label (e.g. "Copy (CPU)").
    pub label: String,
    /// Value in the chart's unit.
    pub value: f64,
}

/// One group of bars (e.g. one chip).
#[derive(Debug, Clone)]
pub struct BarGroup {
    /// Group label (e.g. "M1").
    pub label: String,
    /// Bars in legend order.
    pub bars: Vec<Bar>,
    /// Optional reference value rendered as a marker line (theoretical
    /// bandwidth in Figure 1).
    pub reference: Option<f64>,
}

/// Render grouped horizontal bars with an optional reference marker.
pub fn grouped_bar_chart(title: &str, unit: &str, groups: &[BarGroup], width: usize) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    let max_value = groups
        .iter()
        .flat_map(|g| g.bars.iter().map(|b| b.value).chain(g.reference))
        .fold(0.0f64, f64::max);
    if max_value <= 0.0 {
        writeln!(out, "(no data)").unwrap();
        return out;
    }
    let label_width = groups
        .iter()
        .flat_map(|g| g.bars.iter().map(|b| b.label.chars().count()))
        .max()
        .unwrap_or(0);
    let scale = width as f64 / max_value;
    for group in groups {
        writeln!(out, "{}", group.label).unwrap();
        let reference_col = group.reference.map(|r| (r * scale).round() as usize);
        for bar in &group.bars {
            let mut cells: Vec<char> = vec![' '; width + 1];
            let filled = ((bar.value * scale).round() as usize).min(width);
            for cell in cells.iter_mut().take(filled) {
                *cell = '#';
            }
            if let Some(col) = reference_col {
                let col = col.min(width);
                cells[col] = '|';
            }
            let bar_text: String = cells.into_iter().collect();
            writeln!(
                out,
                "  {:<label_width$} {} {:>8.1} {unit}",
                bar.label, bar_text, bar.value
            )
            .unwrap();
        }
        if let Some(reference) = group.reference {
            writeln!(
                out,
                "  {:<label_width$} (| = theoretical {reference:.0} {unit})",
                ""
            )
            .unwrap();
        }
    }
    out
}

/// One series of a line chart.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points `(x, y)`; `y = None` marks a skipped size (§4 skip rules).
    pub points: Vec<(f64, Option<f64>)>,
}

/// Series-chart configuration.
#[derive(Debug, Clone, Copy)]
pub struct SeriesChartConfig {
    /// Plot height in rows.
    pub height: usize,
    /// Plot width in columns.
    pub width: usize,
    /// Log-10 y axis (Figures 2 and 4).
    pub log_y: bool,
}

impl Default for SeriesChartConfig {
    fn default() -> Self {
        SeriesChartConfig {
            height: 16,
            width: 64,
            log_y: true,
        }
    }
}

/// Render series as a scatter/line grid with per-series glyphs.
pub fn series_chart(
    title: &str,
    y_unit: &str,
    series: &[Series],
    config: SeriesChartConfig,
) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '@', '%', '^', '~'];
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();

    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().filter_map(|(_, y)| *y))
        .filter(|y| !config.log_y || *y > 0.0)
        .collect();
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| *x))
        .collect();
    if ys.is_empty() || xs.is_empty() {
        writeln!(out, "(no data)").unwrap();
        return out;
    }
    let transform = |y: f64| if config.log_y { y.log10() } else { y };
    let (y_min, y_max) = ys
        .iter()
        .map(|y| transform(*y))
        .fold((f64::MAX, f64::MIN), |(lo, hi), y| (lo.min(y), hi.max(y)));
    let (x_min, x_max) = xs
        .iter()
        .map(|x| x.log2())
        .fold((f64::MAX, f64::MIN), |(lo, hi), x| (lo.min(x), hi.max(x)));
    let y_span = (y_max - y_min).max(1e-9);
    let x_span = (x_max - x_min).max(1e-9);

    let mut grid = vec![vec![' '; config.width + 1]; config.height + 1];
    for (index, s) in series.iter().enumerate() {
        let glyph = GLYPHS[index % GLYPHS.len()];
        for (x, y) in &s.points {
            let Some(y) = y else { continue };
            if config.log_y && *y <= 0.0 {
                continue;
            }
            let col = (((x.log2() - x_min) / x_span) * config.width as f64).round() as usize;
            let row_from_bottom =
                (((transform(*y) - y_min) / y_span) * config.height as f64).round() as usize;
            let row = config.height - row_from_bottom.min(config.height);
            grid[row][col.min(config.width)] = glyph;
        }
    }

    let y_label_top = if config.log_y {
        format!("1e{y_max:.1}")
    } else {
        format!("{y_max:.1}")
    };
    let y_label_bottom = if config.log_y {
        format!("1e{y_min:.1}")
    } else {
        format!("{y_min:.1}")
    };
    for (row_index, row) in grid.iter().enumerate() {
        let label = if row_index == 0 {
            format!("{y_label_top:>10}")
        } else if row_index == config.height {
            format!("{y_label_bottom:>10}")
        } else {
            " ".repeat(10)
        };
        let line: String = row.iter().collect();
        writeln!(out, "{label} |{line}").unwrap();
    }
    writeln!(out, "{:>10} +{}", "", "-".repeat(config.width + 1)).unwrap();
    writeln!(
        out,
        "{:>10}  n = {:.0} .. {:.0} ({y_unit})",
        "",
        2f64.powf(x_min),
        2f64.powf(x_max)
    )
    .unwrap();
    for (index, s) in series.iter().enumerate() {
        writeln!(out, "{:>12} = {}", GLYPHS[index % GLYPHS.len()], s.label).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_and_marks_reference() {
        let groups = vec![BarGroup {
            label: "M1".into(),
            bars: vec![
                Bar {
                    label: "Copy (CPU)".into(),
                    value: 55.6,
                },
                Bar {
                    label: "Triad (CPU)".into(),
                    value: 59.0,
                },
            ],
            reference: Some(67.0),
        }];
        let text = grouped_bar_chart("Fig 1", "GB/s", &groups, 40);
        assert!(text.contains("Fig 1"));
        assert!(text.contains("M1"));
        assert!(text.contains("#"));
        assert!(text.contains("|"), "reference marker missing:\n{text}");
        assert!(text.contains("59.0 GB/s"));
        assert!(text.contains("theoretical 67"));
    }

    #[test]
    fn empty_bar_chart_degrades_gracefully() {
        let text = grouped_bar_chart("empty", "x", &[], 20);
        assert!(text.contains("(no data)"));
    }

    #[test]
    fn series_chart_renders_all_series() {
        let series = vec![
            Series {
                label: "GPU-MPS".into(),
                points: vec![
                    (256.0, Some(100.0)),
                    (1024.0, Some(1000.0)),
                    (4096.0, Some(2400.0)),
                ],
            },
            Series {
                label: "CPU-Single".into(),
                points: vec![(256.0, Some(1.2)), (1024.0, Some(1.0)), (4096.0, None)],
            },
        ];
        let text = series_chart(
            "Fig 2 (M2)",
            "GFLOPS",
            &series,
            SeriesChartConfig::default(),
        );
        assert!(text.contains("GPU-MPS"));
        assert!(text.contains("CPU-Single"));
        assert!(text.contains('*'));
        assert!(text.contains('o'));
        assert!(text.contains("n = 256 .. 4096"));
    }

    #[test]
    fn log_scale_skips_nonpositive_values() {
        let series = vec![Series {
            label: "zeroes".into(),
            points: vec![(32.0, Some(0.0)), (64.0, Some(10.0))],
        }];
        let text = series_chart(
            "t",
            "u",
            &series,
            SeriesChartConfig {
                height: 4,
                width: 16,
                log_y: true,
            },
        );
        assert!(text.contains('*'));
    }

    #[test]
    fn empty_series_chart_degrades() {
        let text = series_chart("t", "u", &[], SeriesChartConfig::default());
        assert!(text.contains("(no data)"));
    }
}
