//! CSV output — the paper distributes its raw results as text files
//! parsed by plotting scripts; the harness writes the same shape.

/// A CSV writer over an in-memory string (callers persist it).
#[derive(Debug, Default, Clone)]
pub struct CsvWriter {
    out: String,
    columns: usize,
}

impl CsvWriter {
    /// Start a CSV with a header row.
    pub fn new(header: &[&str]) -> Self {
        let mut w = CsvWriter {
            out: String::new(),
            columns: header.len(),
        };
        w.raw_row(header.iter().map(|s| s.to_string()).collect());
        w
    }

    /// Append a row of cells (stringified; quoted when needed).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.columns, "row width must match the header");
        self.raw_row(cells.to_vec());
        self
    }

    /// Append a row of displayable values.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    fn raw_row(&mut self, cells: Vec<String>) {
        let escaped: Vec<String> = cells.iter().map(|c| escape(c)).collect();
        self.out.push_str(&escaped.join(","));
        self.out.push('\n');
    }

    /// The CSV text.
    pub fn finish(self) -> String {
        self.out
    }

    /// Rows written so far (including the header).
    pub fn line_count(&self) -> usize {
        self.out.lines().count()
    }
}

/// Quote a cell if it contains a comma, quote or newline.
fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Parse a simple CSV (quoted cells supported) — used by tests and by
/// examples that read results back.
pub fn parse(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let mut cells = Vec::new();
        let mut current = String::new();
        let mut in_quotes = false;
        let mut chars = line.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '"' if in_quotes && chars.peek() == Some(&'"') => {
                    current.push('"');
                    chars.next();
                }
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => cells.push(std::mem::take(&mut current)),
                other => current.push(other),
            }
        }
        cells.push(current);
        rows.push(cells);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_round_trip() {
        let mut w = CsvWriter::new(&["chip", "impl", "gflops"]);
        w.row(&["M1".into(), "GPU-MPS".into(), "1360".into()]);
        w.row(&["M2".into(), "has,comma".into(), "2240".into()]);
        let text = w.finish();
        let rows = parse(&text);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec!["chip", "impl", "gflops"]);
        assert_eq!(rows[2][1], "has,comma");
    }

    #[test]
    fn quotes_are_escaped() {
        let mut w = CsvWriter::new(&["a"]);
        w.row(&["say \"hi\"".into()]);
        let text = w.finish();
        assert!(text.contains("\"say \"\"hi\"\"\""));
        let rows = parse(&text);
        assert_eq!(rows[1][0], "say \"hi\"");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row(&["only one".into()]);
    }

    #[test]
    fn row_display_stringifies() {
        let mut w = CsvWriter::new(&["n", "gflops"]);
        w.row_display(&[256.0, 1234.5]);
        assert_eq!(w.line_count(), 2);
        assert!(w.finish().contains("256,1234.5"));
    }
}
