//! A minimal readiness-driven event loop for service connections.
//!
//! The campaign service used to park one OS thread per connection in a
//! blocking `read_line` — simple, but a daemon's connection ceiling
//! became its thread ceiling. This module is the replacement I/O plane:
//! every connection is a **table entry** on one reactor thread, and the
//! service's thread census is O(1) in the number of connections.
//!
//! The design is `poll(2)`-shaped but built entirely from safe std
//! primitives (the workspace forbids `unsafe`, so no raw descriptor
//! sets):
//!
//! - **Registration table** — the reactor *owns* each registered
//!   [`Stream`], switched to nonblocking mode. Each entry carries a
//!   [`FrameBuffer`] (incremental newline framing over arbitrary byte
//!   segmentation), a [`WriteQueue`] (short-write- and
//!   `WouldBlock`-tolerant output), a read-interest mode, and an
//!   optional timer.
//! - **Wakeup channel** — the `poll(2)` self-pipe, as an in-process
//!   channel: the accept thread posts new connections, engine
//!   completions post coalesced [`NotifyHandle`] wakes, and shutdown
//!   posts a drain signal. When the table is idle the reactor blocks
//!   on this channel and burns nothing.
//! - **Level-triggered dispatch** — [`Reactor::poll`] returns one
//!   [`Event`] at a time; readiness that has not been consumed
//!   (buffered complete lines, queued notifies) is re-reported until
//!   the owner acts on it.
//!
//! Readiness for *peer input* is discovered by nonblocking read scans
//! at an adaptive cadence: connections that spoke recently (or have
//! queued output) are scanned every millisecond-scale tick, idle ones
//! every few tens of milliseconds, and long-idle ones (the thousand
//! parked `subscribe` streams of a soak) a few times per second. That
//! bounds both the wake latency a chatty client sees and the scan work
//! a mostly-idle table costs. Engine completions never wait on a scan
//! at all — they arrive through the wakeup channel.
//!
//! What belongs to the reactor vs. its owner:
//!
//! - the reactor frames lines, flushes queued writes, detects EOF and
//!   I/O errors, fires timers, and forwards wakes;
//! - the owner (the campaign service) interprets lines, decides read
//!   interest per connection state, enqueues responses, and removes
//!   connections when the protocol says so.

use crate::transport::Stream;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A registered connection's identity in the reactor table.
///
/// Tokens are minted monotonically and never reused, so a stale token
/// (kept by a notify source after its connection died) can never alias
/// a live connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(u64);

impl Token {
    /// The raw table id, for diagnostics.
    pub fn id(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conn:{}", self.0)
    }
}

/// What a connection's read half is watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadInterest {
    /// Frame complete lines and emit [`Event::Line`] — the command
    /// state of a protocol connection.
    Framed,
    /// Read and discard peer bytes, watching only for EOF — a
    /// `subscribe` stream after its ack, where the peer's only
    /// remaining signal is hanging up.
    EofOnly,
    /// Do not read at all. Bytes already buffered stay buffered; bytes
    /// the peer sends wait in the kernel. The mid-run state, where the
    /// protocol is sequential and the next request must not be framed
    /// until the current response stream finishes.
    Paused,
}

/// One readiness occurrence, returned by [`Reactor::poll`].
#[derive(Debug)]
pub enum Event {
    /// A new connection was registered from the wakeup channel.
    Accepted(Token),
    /// A complete newline-framed line arrived (terminator stripped).
    Line(Token, String),
    /// The connection left the table. `None` is a clean close (peer
    /// EOF, or a requested close-after-flush that finished); `Some`
    /// describes an I/O failure. Either way the token is now dead and
    /// the stream is gone.
    Closed(Token, Option<String>),
    /// A [`NotifyHandle`] for this connection fired since the last
    /// time this event was reported. The notify flag is re-armed
    /// *before* this event is returned, so a source that fires during
    /// handling produces a fresh event rather than being lost.
    Notify(Token),
    /// The connection's timer (see [`Reactor::set_timer`]) expired.
    Timer(Token),
    /// A write queue that had been above the backpressure threshold
    /// drained back to empty — whatever was paused on it may resume.
    Writable(Token),
    /// A connection posted through the wakeup channel could not be
    /// registered (its switch to nonblocking mode failed). It was
    /// dropped without ever appearing in the table.
    Rejected(String),
    /// The shutdown wake was posted; the owner should begin its drain.
    Shutdown,
}

enum Wake<S> {
    NewConn(S),
    Notify(Token),
    Shutdown,
}

/// A clonable handle for posting wakes into the reactor from other
/// threads — the accept loop's and shutdown path's end of the wakeup
/// channel.
pub struct WakeHandle<S> {
    tx: Sender<Wake<S>>,
}

impl<S> Clone for WakeHandle<S> {
    fn clone(&self) -> Self {
        WakeHandle {
            tx: self.tx.clone(),
        }
    }
}

impl<S: Stream> WakeHandle<S> {
    /// Hand a freshly accepted connection to the reactor. The reactor
    /// takes ownership, switches it to nonblocking mode, and reports
    /// it as [`Event::Accepted`].
    pub fn accepted(&self, stream: S) {
        self.tx.send(Wake::NewConn(stream)).ok();
    }

    /// Post the shutdown wake ([`Event::Shutdown`]).
    pub fn shutdown(&self) {
        self.tx.send(Wake::Shutdown).ok();
    }
}

/// A coalescing completion-notify hook bound to one registered
/// connection.
///
/// `notify()` is cheap and idempotent-until-consumed: the first call
/// after the reactor last reported [`Event::Notify`] posts one wake;
/// further calls before the reactor re-arms the flag are free. This is
/// what the service installs as the engine's unit-completion hook — a
/// worker thread finishing a unit costs one atomic swap and at most
/// one channel send, never a syscall against the connection.
pub struct NotifyHandle {
    pending: Arc<AtomicBool>,
    send: Arc<dyn Fn() + Send + Sync>,
}

impl Clone for NotifyHandle {
    fn clone(&self) -> Self {
        NotifyHandle {
            pending: Arc::clone(&self.pending),
            send: Arc::clone(&self.send),
        }
    }
}

impl NotifyHandle {
    /// Request an [`Event::Notify`] for the bound connection.
    pub fn notify(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            (self.send)();
        }
    }

    /// This handle as a bare callback, the shape completion hooks take.
    pub fn callback(&self) -> Arc<dyn Fn() + Send + Sync> {
        let handle = self.clone();
        Arc::new(move || handle.notify())
    }
}

impl std::fmt::Debug for NotifyHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NotifyHandle")
            .field("pending", &self.pending.load(Ordering::Relaxed))
            .finish()
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Incremental newline framing over arbitrarily segmented bytes.
///
/// The wire protocol is newline-delimited JSON in which a raw `0x0A`
/// only ever means end-of-envelope (interior newlines are escaped), so
/// framing is a byte-level scan: split at `0x0A`, convert *complete*
/// lines to UTF-8. Because conversion happens only on complete lines,
/// a read boundary may fall anywhere — mid-envelope, mid-UTF-8
/// sequence — and reassembly is exact; the property tests in
/// `crates/harness/tests/props.rs` split recorded sessions at every
/// kind of boundary to prove it.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buffer: Vec<u8>,
    scanned: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Append a freshly read segment.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Pop the next complete line (terminator stripped), or `None` if
    /// no full line is buffered yet. A complete line that is not valid
    /// UTF-8 is a protocol error.
    pub fn next_line(&mut self) -> io::Result<Option<String>> {
        let Some(offset) = self.buffer[self.scanned..].iter().position(|&b| b == b'\n') else {
            // Remember how far we scanned so a long line arriving in
            // many segments is not rescanned from the start each time.
            self.scanned = self.buffer.len();
            return Ok(None);
        };
        let newline = self.scanned + offset;
        let line = self.buffer.drain(..=newline).take(newline).collect();
        self.scanned = 0;
        String::from_utf8(line)
            .map(Some)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "line is not valid UTF-8"))
    }

    /// Drain the unterminated tail at EOF, if any. A peer that sends a
    /// final line and closes without a trailing newline still gets it
    /// processed — the behavior a buffered blocking reader had.
    pub fn take_remainder(&mut self) -> io::Result<Option<String>> {
        if self.buffer.is_empty() {
            return Ok(None);
        }
        self.scanned = 0;
        String::from_utf8(std::mem::take(&mut self.buffer))
            .map(Some)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "line is not valid UTF-8"))
    }

    /// Bytes buffered and not yet framed.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

// ---------------------------------------------------------------------
// Write queue
// ---------------------------------------------------------------------

/// Buffered output for a nonblocking connection.
///
/// `flush_into` writes as much as the peer will take and keeps the
/// rest: short writes and `WouldBlock` are normal outcomes, not
/// errors. The reactor retries on its scan ticks until the queue
/// drains.
#[derive(Debug, Default)]
pub struct WriteQueue {
    buffer: Vec<u8>,
    offset: usize,
}

impl WriteQueue {
    /// An empty queue.
    pub fn new() -> Self {
        WriteQueue::default()
    }

    /// Append bytes to be written.
    pub fn enqueue(&mut self, bytes: &[u8]) {
        // Compact lazily: reclaim the flushed prefix once it dominates.
        if self.offset > 4096 && self.offset * 2 > self.buffer.len() {
            self.buffer.drain(..self.offset);
            self.offset = 0;
        }
        self.buffer.extend_from_slice(bytes);
    }

    /// Write as much as possible into `writer`. Returns the byte count
    /// actually written; `WouldBlock` stops the flush without error.
    pub fn flush_into<W: Write>(&mut self, writer: &mut W) -> io::Result<usize> {
        let mut written = 0;
        while self.offset < self.buffer.len() {
            match writer.write(&self.buffer[self.offset..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer accepts no bytes",
                    ));
                }
                Ok(n) => {
                    self.offset += n;
                    written += n;
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => break,
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                Err(error) => return Err(error),
            }
        }
        if self.offset == self.buffer.len() {
            self.buffer.clear();
            self.offset = 0;
        }
        Ok(written)
    }

    /// Bytes enqueued and not yet written.
    pub fn pending(&self) -> usize {
        self.buffer.len() - self.offset
    }

    /// Whether everything enqueued has been written.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }
}

// ---------------------------------------------------------------------
// The reactor
// ---------------------------------------------------------------------

/// How long after its last input a connection counts as *hot* and is
/// scanned every tick.
const HOT_WINDOW: Duration = Duration::from_millis(100);
/// A connection idle longer than this is *deep-idle* and scanned at
/// [`DEEP_IDLE_SCAN`] cadence.
const DEEP_IDLE_WINDOW: Duration = Duration::from_secs(10);
/// Scan cadences per idleness class.
const HOT_SCAN: Duration = Duration::from_millis(1);
const IDLE_SCAN: Duration = Duration::from_millis(25);
const DEEP_IDLE_SCAN: Duration = Duration::from_millis(250);
/// Per-scan read budget, so one firehose peer cannot starve the table.
const SCAN_READ_BUDGET: usize = 64 * 1024;

/// A write queue deeper than this counts as *backlogged*: the owner
/// should stop feeding it discretionary output (subscriber events)
/// until [`Event::Writable`] reports the drain.
pub const WRITE_BACKLOG_THRESHOLD: usize = 256 * 1024;

struct Registration<S> {
    stream: S,
    frame: FrameBuffer,
    writes: WriteQueue,
    interest: ReadInterest,
    last_input: Instant,
    next_scan: Option<Instant>,
    notify_pending: Arc<AtomicBool>,
    timer_generation: u64,
    close_after_flush: bool,
    backlogged: bool,
    peer_eof: bool,
}

/// The event loop: a registration table of owned nonblocking streams,
/// a wakeup channel, timers, and a level-triggered [`poll`].
///
/// [`poll`]: Reactor::poll
pub struct Reactor<S: Stream> {
    rx: Receiver<Wake<S>>,
    tx: Sender<Wake<S>>,
    table: HashMap<u64, Registration<S>>,
    next_token: u64,
    timers: BinaryHeap<Reverse<(Instant, u64, u64)>>,
    next_timer_generation: u64,
    pending: VecDeque<Event>,
    notify_wakeups: u64,
    timer_wakeups: u64,
}

impl<S: Stream> Default for Reactor<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Stream> Reactor<S> {
    /// A reactor with an empty table.
    pub fn new() -> Self {
        let (tx, rx) = channel();
        Reactor {
            rx,
            tx,
            table: HashMap::new(),
            next_token: 0,
            timers: BinaryHeap::new(),
            next_timer_generation: 0,
            pending: VecDeque::new(),
            notify_wakeups: 0,
            timer_wakeups: 0,
        }
    }

    /// A handle other threads use to post wakes.
    pub fn wake_handle(&self) -> WakeHandle<S> {
        WakeHandle {
            tx: self.tx.clone(),
        }
    }

    /// A coalescing notify hook bound to `token`. Firing it from any
    /// thread makes [`Reactor::poll`] report [`Event::Notify`] for the
    /// connection; fires are coalesced until that report happens.
    pub fn notify_handle(&self, token: Token) -> Option<NotifyHandle> {
        let registration = self.table.get(&token.0)?;
        let pending = Arc::clone(&registration.notify_pending);
        let tx = self.tx.clone();
        Some(NotifyHandle {
            pending,
            send: Arc::new(move || {
                tx.send(Wake::Notify(token)).ok();
            }),
        })
    }

    /// Directly register a stream (the in-thread form of
    /// [`WakeHandle::accepted`]); returns its token, or the underlying
    /// error if the stream refused nonblocking mode.
    pub fn register(&mut self, stream: S) -> io::Result<Token> {
        stream.set_nonblocking(true)?;
        let token = Token(self.next_token);
        self.next_token += 1;
        let now = Instant::now();
        self.table.insert(
            token.0,
            Registration {
                stream,
                frame: FrameBuffer::new(),
                writes: WriteQueue::new(),
                interest: ReadInterest::Framed,
                last_input: now,
                next_scan: Some(now),
                notify_pending: Arc::new(AtomicBool::new(false)),
                timer_generation: 0,
                close_after_flush: false,
                backlogged: false,
                peer_eof: false,
            },
        );
        Ok(token)
    }

    /// Live connections in the table.
    pub fn connections(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (the drain-complete condition).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Tokens of every live connection, for drain sweeps.
    pub fn tokens(&self) -> Vec<Token> {
        let mut tokens: Vec<Token> = self.table.keys().map(|&id| Token(id)).collect();
        tokens.sort();
        tokens
    }

    /// Whether `token` is still in the table. Owners use this after an
    /// [`enqueue_write`](Reactor::enqueue_write) to notice a write
    /// failure (the failure's [`Event::Closed`] is queued, but the
    /// registration is already gone) before producing more output.
    pub fn is_registered(&self, token: Token) -> bool {
        self.table.contains_key(&token.0)
    }

    /// Re-check an EOF-seen connection for clean close. Needed when the
    /// owner consumed a delivered line without producing any output —
    /// with nothing queued to flush, no flush completion will re-run
    /// the close check on its own.
    pub fn sweep_eof(&mut self, token: Token) {
        if registration_is_closable(self.table.get(&token.0)) {
            self.close_clean(token);
        }
    }

    /// Total notify wakes delivered as [`Event::Notify`].
    pub fn notify_wakeups(&self) -> u64 {
        self.notify_wakeups
    }

    /// Total timer expirations delivered as [`Event::Timer`].
    pub fn timer_wakeups(&self) -> u64 {
        self.timer_wakeups
    }

    /// Change what the connection's read half is watched for. Lines
    /// already buffered are (re-)framed immediately on a switch to
    /// [`ReadInterest::Framed`] — level triggering across pauses.
    pub fn set_read_interest(&mut self, token: Token, interest: ReadInterest) {
        let mut lines = Vec::new();
        let mut framing_error = None;
        {
            let Some(registration) = self.table.get_mut(&token.0) else {
                return;
            };
            registration.interest = interest;
            let now = Instant::now();
            match interest {
                ReadInterest::Framed => {
                    // Re-framing may surface buffered lines (a
                    // pipelined request that arrived during a run)
                    // without any new bytes; scan promptly either way.
                    registration.last_input = now;
                    registration.next_scan = Some(now);
                    loop {
                        match registration.frame.next_line() {
                            Ok(Some(line)) => lines.push(line),
                            Ok(None) => break,
                            Err(error) => {
                                framing_error = Some(error);
                                break;
                            }
                        }
                    }
                }
                ReadInterest::EofOnly => {
                    registration.next_scan = Some(now);
                }
                ReadInterest::Paused => {
                    registration.next_scan = if registration.writes.is_empty() {
                        None
                    } else {
                        Some(now)
                    };
                }
            }
        }
        for line in lines {
            self.pending.push_back(Event::Line(token, line));
        }
        if let Some(error) = framing_error {
            self.fail(token, error);
            return;
        }
        if interest != ReadInterest::Paused && registration_is_closable(self.table.get(&token.0)) {
            self.close_clean(token);
        }
    }

    /// Queue bytes for the connection and start flushing immediately.
    pub fn enqueue_write(&mut self, token: Token, bytes: &[u8]) {
        // Opportunistic immediate flush: the common case (responsive
        // peer, small response) completes here and never waits a tick.
        let flushed = {
            let Some(registration) = self.table.get_mut(&token.0) else {
                return;
            };
            registration.writes.enqueue(bytes);
            if registration.writes.pending() > WRITE_BACKLOG_THRESHOLD {
                registration.backlogged = true;
            }
            let result = registration.writes.flush_into(&mut registration.stream);
            if result.is_ok() && !registration.writes.is_empty() {
                registration.next_scan = Some(Instant::now());
            }
            result.map(|_| registration.writes.is_empty())
        };
        match flushed {
            Ok(true) => self.writes_drained(token),
            Ok(false) => {}
            Err(error) => self.fail(token, error),
        }
    }

    /// Unflushed output bytes queued for the connection (0 for dead
    /// tokens).
    pub fn write_backlog(&self, token: Token) -> usize {
        self.table
            .get(&token.0)
            .map(|r| r.writes.pending())
            .unwrap_or(0)
    }

    /// Close the connection once everything queued has been written.
    /// Reports [`Event::Closed`] with a clean reason when it happens.
    /// Read interest is dropped immediately — this is a goodbye.
    pub fn close_after_flush(&mut self, token: Token) {
        let flushed = {
            let Some(registration) = self.table.get_mut(&token.0) else {
                return;
            };
            registration.close_after_flush = true;
            registration.interest = ReadInterest::Paused;
            if registration.writes.is_empty() {
                true
            } else {
                registration.next_scan = Some(Instant::now());
                false
            }
        };
        if flushed {
            self.close_clean(token);
        }
    }

    /// Remove the connection immediately, dropping queued output. No
    /// [`Event::Closed`] is reported — the caller initiated this and
    /// already knows.
    pub fn close(&mut self, token: Token) {
        self.drop_registration(token);
    }

    /// Half-close the read side of every registered connection — the
    /// drain's first act, mirroring what the threaded service did to
    /// wake parked readers. Under the reactor nothing is parked, but
    /// the half-close still tells well-behaved peers no further
    /// requests will be read.
    pub fn shutdown_reads(&mut self) {
        for registration in self.table.values() {
            registration.stream.shutdown_read().ok();
        }
    }

    /// Arm (or re-arm) the connection's single timer to fire after
    /// `delay`. Replaces any previously armed timer.
    pub fn set_timer(&mut self, token: Token, delay: Duration) {
        let Some(registration) = self.table.get_mut(&token.0) else {
            return;
        };
        self.next_timer_generation += 1;
        registration.timer_generation = self.next_timer_generation;
        self.timers.push(Reverse((
            Instant::now() + delay,
            token.0,
            self.next_timer_generation,
        )));
    }

    /// Disarm the connection's timer.
    pub fn clear_timer(&mut self, token: Token) {
        if let Some(registration) = self.table.get_mut(&token.0) {
            self.next_timer_generation += 1;
            registration.timer_generation = self.next_timer_generation;
        }
    }

    /// Block until the next event. This is the dispatch loop's one
    /// call: wakes, timers, frame-complete lines, flush completions,
    /// EOFs, and errors all surface here, one at a time.
    pub fn poll(&mut self) -> Event {
        loop {
            if let Some(event) = self.pending.pop_front() {
                return event;
            }
            self.turn();
        }
    }

    /// Like [`poll`](Reactor::poll), but gives up after `timeout` and
    /// returns `None` — for owners that interleave the reactor with
    /// other periodic work.
    pub fn poll_timeout(&mut self, timeout: Duration) -> Option<Event> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(event) = self.pending.pop_front() {
                return Some(event);
            }
            if Instant::now() >= deadline {
                return None;
            }
            self.turn_until(Some(deadline));
        }
    }

    fn turn(&mut self) {
        self.turn_until(None);
    }

    /// One scheduling turn: fire due timers, scan due connections,
    /// then block on the wakeup channel until the earliest upcoming
    /// deadline (or forever, if the table is fully quiescent).
    fn turn_until(&mut self, cap: Option<Instant>) {
        let now = Instant::now();
        self.fire_due_timers(now);
        self.scan_due_connections(now);
        if !self.pending.is_empty() {
            return;
        }

        let mut deadline = cap;
        for registration in self.table.values() {
            if let Some(at) = registration.next_scan {
                deadline = Some(deadline.map_or(at, |d| d.min(at)));
            }
        }
        if let Some(Reverse((at, _, _))) = self.timers.peek() {
            deadline = Some(deadline.map_or(*at, |d| d.min(*at)));
        }

        let wake = match deadline {
            None => self.rx.recv().ok(),
            Some(at) => {
                let now = Instant::now();
                if at <= now {
                    self.rx.try_recv().ok()
                } else {
                    match self.rx.recv_timeout(at - now) {
                        Ok(wake) => Some(wake),
                        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                            None
                        }
                    }
                }
            }
        };
        if let Some(wake) = wake {
            self.process_wake(wake);
            // Batch whatever else is already queued before returning
            // to the scan loop.
            while let Ok(wake) = self.rx.try_recv() {
                self.process_wake(wake);
            }
        }
    }

    fn process_wake(&mut self, wake: Wake<S>) {
        match wake {
            Wake::NewConn(stream) => match self.register(stream) {
                Ok(token) => self.pending.push_back(Event::Accepted(token)),
                Err(error) => self.pending.push_back(Event::Rejected(format!(
                    "cannot switch accepted connection to nonblocking mode: {error}"
                ))),
            },
            Wake::Notify(token) => {
                if let Some(registration) = self.table.get(&token.0) {
                    // Re-arm before reporting: a notify that fires
                    // while the owner handles this event posts a fresh
                    // wake instead of being swallowed.
                    registration.notify_pending.store(false, Ordering::Release);
                    self.notify_wakeups += 1;
                    self.pending.push_back(Event::Notify(token));
                }
            }
            Wake::Shutdown => self.pending.push_back(Event::Shutdown),
        }
    }

    fn fire_due_timers(&mut self, now: Instant) {
        while let Some(Reverse((at, id, generation))) = self.timers.peek().copied() {
            if at > now {
                break;
            }
            self.timers.pop();
            let live = self
                .table
                .get(&id)
                .is_some_and(|r| r.timer_generation == generation);
            if live {
                self.timer_wakeups += 1;
                self.pending.push_back(Event::Timer(Token(id)));
            }
        }
    }

    fn scan_due_connections(&mut self, now: Instant) {
        let due: Vec<u64> = self
            .table
            .iter()
            .filter(|(_, r)| r.next_scan.is_some_and(|at| at <= now))
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            self.scan_connection(Token(id), now);
        }
    }

    /// One nonblocking service pass over a connection: flush queued
    /// writes, then read per interest, then reschedule.
    fn scan_connection(&mut self, token: Token, now: Instant) {
        // Writes first: a queued response should never wait on reads.
        let flush = {
            let Some(registration) = self.table.get_mut(&token.0) else {
                return;
            };
            if registration.writes.is_empty() {
                Ok(false)
            } else {
                registration
                    .writes
                    .flush_into(&mut registration.stream)
                    .map(|_| registration.writes.is_empty())
            }
        };
        match flush {
            Ok(true) => {
                self.writes_drained(token);
                if !self.table.contains_key(&token.0) {
                    return;
                }
            }
            Ok(false) => {}
            Err(error) => {
                self.fail(token, error);
                return;
            }
        }

        // Read per interest, collecting framed lines locally so the
        // table borrow never overlaps event emission.
        let mut lines: Vec<String> = Vec::new();
        let mut failure: Option<io::Error> = None;
        let saw_eof = {
            let registration = self
                .table
                .get_mut(&token.0)
                .expect("registration survives a clean flush");
            if !registration.peer_eof && registration.interest != ReadInterest::Paused {
                let mut scratch = [0u8; 4096];
                let mut total = 0;
                loop {
                    match registration.stream.read(&mut scratch) {
                        Ok(0) => {
                            registration.peer_eof = true;
                            break;
                        }
                        Ok(n) => {
                            registration.last_input = now;
                            if registration.interest == ReadInterest::Framed {
                                registration.frame.extend(&scratch[..n]);
                            }
                            total += n;
                            if total >= SCAN_READ_BUDGET {
                                break;
                            }
                        }
                        Err(error) if error.kind() == io::ErrorKind::WouldBlock => break,
                        Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                        Err(error) => {
                            failure = Some(error);
                            break;
                        }
                    }
                }
            }

            // Frame complete lines out of whatever is buffered.
            if registration.interest == ReadInterest::Framed && failure.is_none() {
                loop {
                    match registration.frame.next_line() {
                        Ok(Some(line)) => lines.push(line),
                        Ok(None) => break,
                        Err(error) => {
                            failure = Some(error);
                            break;
                        }
                    }
                }
                if registration.peer_eof && failure.is_none() {
                    match registration.frame.take_remainder() {
                        Ok(Some(tail)) => lines.push(tail),
                        Ok(None) => {}
                        Err(error) => failure = Some(error),
                    }
                }
            }

            // Reschedule by idleness class.
            registration.next_scan = if registration.writes.is_empty()
                && (registration.peer_eof || registration.interest == ReadInterest::Paused)
            {
                // Nothing left to read (EOF or paused), nothing to
                // flush: quiescent until the owner acts.
                None
            } else if !registration.writes.is_empty()
                || now.duration_since(registration.last_input) < HOT_WINDOW
            {
                Some(now + HOT_SCAN)
            } else if now.duration_since(registration.last_input) < DEEP_IDLE_WINDOW {
                Some(now + IDLE_SCAN)
            } else {
                Some(now + DEEP_IDLE_SCAN)
            };
            registration.peer_eof
        };

        let delivered_lines = !lines.is_empty();
        for line in lines {
            self.pending.push_back(Event::Line(token, line));
        }
        if let Some(error) = failure {
            self.fail(token, error);
            return;
        }
        // Close on EOF only when no lines were delivered this scan: a
        // peer that wrote a request and closed its write half still
        // gets its response — the close follows the response flush (or
        // an explicit [`sweep_eof`](Reactor::sweep_eof)) instead.
        if saw_eof && !delivered_lines && registration_is_closable(self.table.get(&token.0)) {
            self.close_clean(token);
        }
    }

    /// A write queue reached empty: resolve close-after-flush and
    /// backpressure release.
    fn writes_drained(&mut self, token: Token) {
        enum Then {
            Close,
            Writable,
            Nothing,
        }
        let then = {
            let Some(registration) = self.table.get_mut(&token.0) else {
                return;
            };
            if registration.close_after_flush
                || (registration.peer_eof
                    && (registration.interest != ReadInterest::Framed
                        || registration.frame.buffered() == 0)
                    && registration.interest != ReadInterest::Paused)
            {
                Then::Close
            } else if registration.backlogged {
                registration.backlogged = false;
                Then::Writable
            } else {
                Then::Nothing
            }
        };
        match then {
            Then::Close => self.close_clean(token),
            Then::Writable => self.pending.push_back(Event::Writable(token)),
            Then::Nothing => {}
        }
    }

    fn close_clean(&mut self, token: Token) {
        if self.drop_registration(token) {
            self.pending.push_back(Event::Closed(token, None));
        }
    }

    fn fail(&mut self, token: Token, error: io::Error) {
        if self.drop_registration(token) {
            self.pending
                .push_back(Event::Closed(token, Some(error.to_string())));
        }
    }

    fn drop_registration(&mut self, token: Token) -> bool {
        self.table.remove(&token.0).is_some()
    }
}

/// Whether an EOF-seen registration has nothing left to deliver and
/// should close cleanly: no queued output, no buffered input still
/// awaiting framing, and not paused (a paused connection belongs to an
/// in-flight run whose owner decides its fate).
fn registration_is_closable<S>(registration: Option<&Registration<S>>) -> bool {
    registration.is_some_and(|r| {
        r.peer_eof
            && r.writes.is_empty()
            && r.interest != ReadInterest::Paused
            && (r.interest != ReadInterest::Framed || r.frame.buffered() == 0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Endpoint, Listener, TcpTransport, Transport};
    use std::io::Read;
    use std::net::TcpStream;

    #[test]
    fn frame_buffer_reassembles_lines_across_arbitrary_segments() {
        let mut frame = FrameBuffer::new();
        // "héllo\nwörld\n" delivered one byte at a time — boundaries
        // fall inside the multi-byte UTF-8 sequences.
        for &byte in "héllo\nwörld\n".as_bytes() {
            frame.extend(&[byte]);
        }
        assert_eq!(frame.next_line().unwrap(), Some("héllo".to_string()));
        assert_eq!(frame.next_line().unwrap(), Some("wörld".to_string()));
        assert_eq!(frame.next_line().unwrap(), None);
        assert_eq!(frame.buffered(), 0);
    }

    #[test]
    fn frame_buffer_holds_partial_lines_and_drains_the_tail_at_eof() {
        let mut frame = FrameBuffer::new();
        frame.extend(b"complete\npart");
        assert_eq!(frame.next_line().unwrap(), Some("complete".to_string()));
        assert_eq!(frame.next_line().unwrap(), None);
        assert_eq!(frame.buffered(), 4);
        frame.extend(b"ial");
        assert_eq!(frame.next_line().unwrap(), None, "still unterminated");
        assert_eq!(
            frame.take_remainder().unwrap(),
            Some("partial".to_string()),
            "EOF flushes the unterminated tail"
        );
        assert_eq!(frame.take_remainder().unwrap(), None);
    }

    #[test]
    fn frame_buffer_rejects_invalid_utf8_only_on_complete_lines() {
        let mut frame = FrameBuffer::new();
        // A split multi-byte sequence is fine while incomplete…
        frame.extend(&[0xC3]);
        assert_eq!(frame.next_line().unwrap(), None);
        frame.extend(&[0xA9]);
        frame.extend(b"ok\n");
        assert_eq!(frame.next_line().unwrap(), Some("éok".to_string()));
        // …but a complete line with a stray continuation byte errors.
        frame.extend(&[b'x', 0x80, b'\n']);
        assert!(frame.next_line().is_err());
    }

    /// A writer that accepts at most `cap` bytes per call and
    /// interleaves `WouldBlock` refusals — the adversarial peer the
    /// write queue must tolerate.
    struct ShortWriter {
        cap: usize,
        refuse_next: bool,
        written: Vec<u8>,
    }

    impl Write for ShortWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.refuse_next {
                self.refuse_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "try later"));
            }
            self.refuse_next = true;
            let n = buf.len().min(self.cap);
            self.written.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_survives_short_writes_and_would_block() {
        let mut queue = WriteQueue::new();
        let mut writer = ShortWriter {
            cap: 3,
            refuse_next: false,
            written: Vec::new(),
        };
        queue.enqueue(b"the quick brown fox\n");
        queue.enqueue(b"jumps over\n");
        let mut rounds = 0;
        while !queue.is_empty() {
            queue.flush_into(&mut writer).expect("flush");
            rounds += 1;
            assert!(rounds < 100, "flush must make progress");
        }
        assert_eq!(writer.written, b"the quick brown fox\njumps over\n");
        assert_eq!(queue.pending(), 0);
    }

    fn pair() -> (Reactor<TcpStream>, Token, TcpStream) {
        let listener = TcpTransport::bind(&"tcp:127.0.0.1:0".parse::<Endpoint>().unwrap())
            .expect("bind loopback");
        let client = TcpTransport::connect(listener.local_endpoint()).expect("connect");
        let served = listener.accept().expect("accept");
        let mut reactor = Reactor::new();
        let token = reactor.register(served).expect("register");
        (reactor, token, client)
    }

    #[test]
    fn reactor_frames_segmented_requests_and_flushes_responses() {
        let (mut reactor, token, mut client) = pair();
        // The request arrives in two segments split mid-envelope.
        client.write_all(b"{\"id\":1,\"met").expect("first half");
        client.write_all(b"hod\":\"ping\"}\n").expect("second half");
        let line = loop {
            match reactor.poll() {
                Event::Line(t, line) => {
                    assert_eq!(t, token);
                    break line;
                }
                Event::Accepted(_) | Event::Writable(_) => continue,
                other => panic!("unexpected event {other:?}"),
            }
        };
        assert_eq!(line, "{\"id\":1,\"method\":\"ping\"}");

        reactor.enqueue_write(token, b"pong\n");
        let mut response = [0u8; 5];
        client.read_exact(&mut response).expect("response");
        assert_eq!(&response, b"pong\n");
    }

    #[test]
    fn reactor_reports_clean_eof_and_flushes_goodbyes() {
        let (mut reactor, token, mut client) = pair();
        reactor.enqueue_write(token, b"bye\n");
        reactor.close_after_flush(token);
        let mut all = Vec::new();
        client.read_to_end(&mut all).expect("drain to EOF");
        assert_eq!(all, b"bye\n", "goodbye flushed before the close");
        match reactor.poll() {
            Event::Closed(t, reason) => {
                assert_eq!(t, token);
                assert!(reason.is_none(), "clean close: {reason:?}");
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(reactor.is_empty());
    }

    #[test]
    fn reactor_delivers_final_unterminated_line_then_eof() {
        let (mut reactor, token, mut client) = pair();
        client.write_all(b"last words").expect("send tail");
        drop(client);
        let mut saw_line = false;
        loop {
            match reactor.poll() {
                Event::Line(t, line) => {
                    assert_eq!(t, token);
                    assert_eq!(line, "last words");
                    saw_line = true;
                    // A line delivered at EOF defers the close until the
                    // owner reacts; reacting with no output means an
                    // explicit sweep.
                    reactor.sweep_eof(t);
                }
                Event::Closed(t, reason) => {
                    assert_eq!(t, token);
                    assert!(reason.is_none(), "peer hangup is clean: {reason:?}");
                    break;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(saw_line, "the unterminated tail was still delivered");
    }

    #[test]
    fn notify_handles_coalesce_and_rearm() {
        let (mut reactor, token, _client) = pair();
        let notify = reactor.notify_handle(token).expect("live token");
        // A burst of fires before the reactor runs coalesces to one
        // event…
        for _ in 0..100 {
            notify.notify();
        }
        match reactor.poll() {
            Event::Notify(t) => assert_eq!(t, token),
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(reactor.notify_wakeups(), 1, "burst coalesced");
        // …and the flag re-armed: the next fire produces a fresh event.
        notify.notify();
        match reactor.poll() {
            Event::Notify(t) => assert_eq!(t, token),
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(reactor.notify_wakeups(), 2);
    }

    #[test]
    fn timers_fire_once_and_rearms_replace() {
        let (mut reactor, token, _client) = pair();
        // Re-arming replaces: only the second deadline fires.
        reactor.set_timer(token, Duration::from_millis(5));
        reactor.set_timer(token, Duration::from_millis(20));
        let started = Instant::now();
        match reactor.poll() {
            Event::Timer(t) => assert_eq!(t, token),
            other => panic!("unexpected event {other:?}"),
        }
        assert!(
            started.elapsed() >= Duration::from_millis(15),
            "the replaced 5 ms deadline must not fire"
        );
        assert_eq!(reactor.timer_wakeups(), 1, "one firing, not two");
        // A cleared timer never fires.
        reactor.set_timer(token, Duration::from_millis(5));
        reactor.clear_timer(token);
        assert!(
            reactor.poll_timeout(Duration::from_millis(40)).is_none(),
            "cleared timer stayed silent"
        );
    }

    #[test]
    fn paused_interest_defers_framing_until_resumed() {
        let (mut reactor, token, mut client) = pair();
        reactor.set_read_interest(token, ReadInterest::Paused);
        client.write_all(b"queued-while-paused\n").expect("send");
        assert!(
            reactor.poll_timeout(Duration::from_millis(50)).is_none(),
            "paused connections are not read"
        );
        reactor.set_read_interest(token, ReadInterest::Framed);
        let line = match reactor.poll() {
            Event::Line(t, line) => {
                assert_eq!(t, token);
                line
            }
            other => panic!("unexpected event {other:?}"),
        };
        assert_eq!(line, "queued-while-paused");
    }

    #[test]
    fn eof_only_interest_discards_input_but_reports_hangup() {
        let (mut reactor, token, mut client) = pair();
        reactor.set_read_interest(token, ReadInterest::EofOnly);
        client.write_all(b"ignored chatter\n").expect("send");
        assert!(
            reactor.poll_timeout(Duration::from_millis(50)).is_none(),
            "subscriber chatter is discarded, not framed"
        );
        drop(client);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match reactor.poll_timeout(Duration::from_millis(100)) {
                Some(Event::Closed(t, reason)) => {
                    assert_eq!(t, token);
                    assert!(reason.is_none(), "hangup is clean: {reason:?}");
                    break;
                }
                Some(other) => panic!("unexpected event {other:?}"),
                None => assert!(Instant::now() < deadline, "hangup never reported"),
            }
        }
    }

    #[test]
    fn wake_handle_registers_connections_and_shutdown_is_reported() {
        let listener = TcpTransport::bind(&"tcp:127.0.0.1:0".parse::<Endpoint>().unwrap())
            .expect("bind loopback");
        let endpoint = listener.local_endpoint().clone();
        let mut reactor: Reactor<TcpStream> = Reactor::new();
        let wake = reactor.wake_handle();
        let poster = std::thread::spawn(move || {
            let _client = TcpTransport::connect(&endpoint).expect("connect");
            let served = listener.accept().expect("accept");
            wake.accepted(served);
            wake.shutdown();
            _client
        });
        match reactor.poll() {
            Event::Accepted(_) => {}
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(reactor.connections(), 1);
        match reactor.poll() {
            Event::Shutdown => {}
            other => panic!("unexpected event {other:?}"),
        }
        poster.join().expect("poster thread");
    }
}
