//! The §4 environment discipline, as a recorded object.
//!
//! "All tests are carried out in a normal indoor environment with the
//! power supply connected … kept awake via `caffeinate` … conducted after
//! a system reboot, followed by an idle period until the system is fully
//! idle." The simulator cannot *do* those things to a laptop, but it can
//! record the discipline every run claims, so reports carry the same
//! provenance the paper's README does.

use serde::Serialize;

/// Power source during the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PowerSource {
    /// Mains power (the paper's requirement for max performance).
    Mains,
    /// Battery (would throttle; flagged in reports).
    Battery,
}

/// The recorded environment of one benchmark session.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EnvironmentRecord {
    /// Power supply state.
    pub power_source: PowerSource,
    /// Whether the machine is kept awake (`caffeinate`).
    pub caffeinated: bool,
    /// Whether the session started from a fresh reboot.
    pub rebooted: bool,
    /// Idle settle time before measuring, seconds.
    pub idle_settle_s: f64,
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// Free-form toolchain note (the paper points to its README).
    pub toolchain: String,
}

impl EnvironmentRecord {
    /// The paper's protocol.
    pub fn paper_protocol() -> Self {
        EnvironmentRecord {
            power_source: PowerSource::Mains,
            caffeinated: true,
            rebooted: true,
            idle_settle_s: 60.0,
            ambient_c: 22.0,
            toolchain: "oranges simulator (deterministic; no host interference)".to_string(),
        }
    }

    /// Whether the record satisfies the paper's max-performance rules.
    pub fn is_max_performance(&self) -> bool {
        self.power_source == PowerSource::Mains && self.caffeinated
    }

    /// One-line provenance string for report headers.
    pub fn summary_line(&self) -> String {
        format!(
            "env: {}{}{}, settle {:.0}s, ambient {:.0}C — {}",
            match self.power_source {
                PowerSource::Mains => "mains",
                PowerSource::Battery => "battery",
            },
            if self.caffeinated {
                ", caffeinated"
            } else {
                ""
            },
            if self.rebooted { ", fresh reboot" } else { "" },
            self.idle_settle_s,
            self.ambient_c,
            self.toolchain,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_protocol_is_max_performance() {
        let env = EnvironmentRecord::paper_protocol();
        assert!(env.is_max_performance());
        assert!(env.rebooted);
        let line = env.summary_line();
        assert!(line.contains("mains"));
        assert!(line.contains("caffeinated"));
        assert!(line.contains("fresh reboot"));
    }

    #[test]
    fn battery_is_not_max_performance() {
        let mut env = EnvironmentRecord::paper_protocol();
        env.power_source = PowerSource::Battery;
        assert!(!env.is_max_performance());
        assert!(env.summary_line().contains("battery"));
    }
}
