//! # oranges-harness — benchmark orchestration and reporting
//!
//! Everything the paper's experimental section (§4) needs that is not a
//! kernel: the repetition protocol (five repetitions per GEMM experiment,
//! ten/twenty for STREAM), summary statistics, aligned text tables,
//! ASCII renderings of the four figures, CSV files and JSON reports, and
//! the environment discipline (`caffeinate`, mains power, reboot + idle)
//! as a recorded object.
//!
//! - [`stats`]: min/max/mean/median/σ summaries and best-of-N;
//! - [`experiment`]: repetition protocol with warm-up and skip rules;
//! - [`table`]: aligned text tables (Tables 1–3 renderers live in the
//!   `oranges` crate; this is the generic engine);
//! - [`figure`]: ASCII grouped bars (Fig. 1) and log-scale series charts
//!   (Fig. 2–4);
//! - [`csv`]: CSV writer;
//! - [`json`]: a minimal JSON serializer over `serde::Serialize` plus a
//!   parser (kept in-tree so the approved dependency set stays small);
//! - [`metric`]: the unified typed measurement record ([`MetricSet`]) —
//!   provenance-stamped metrics with generic CSV/JSON/table emitters,
//!   the campaign pipeline's single result currency;
//! - [`obs`]: observability primitives — Prometheus-style text
//!   exposition, concurrent latency histograms, and a non-blocking
//!   campaign event broadcaster (what the service's `metrics` and
//!   `subscribe` methods are built from);
//! - [`envelope`]: newline-delimited JSON request/response envelopes —
//!   the wire framing the campaign service speaks over its socket;
//! - [`transport`]: pluggable byte transports ([`transport::Endpoint`]
//!   addressing, the [`transport::Transport`] trait, Unix-domain and
//!   TCP implementations) — what carries those envelopes between
//!   hosts;
//! - [`reactor`]: a minimal readiness event loop over nonblocking
//!   [`transport::Stream`]s — registration table, wakeup channel,
//!   level-triggered line framing, write queues, and timers — the I/O
//!   plane the campaign service multiplexes its connections on;
//! - [`env`](mod@env): the §4 environment record.
//!
//! Every measurement in the workspace flows through one typed record:
//!
//! ```text
//!  runner measurements
//!        │
//!        ▼
//!  MetricSet ──► rows() ──► MetricRow ──► CSV / JSON / TextTable
//!   (typed value + unit,         (flat emitter currency;
//!    provenance: chip, id,        lossless both ways via
//!    params digest, wall,         rows_from_csv / sets_from_json)
//!    power context)
//! ```
//!
//! ## Example: building and round-tripping a `MetricSet`
//!
//! ```
//! use oranges_harness::metric::{self, MetricSet};
//!
//! let set = MetricSet::for_chip("fig2", "chip=M4;sizes=256", "M4")
//!     .with_implementation("GPU-MPS")
//!     .with_n(256)
//!     .metric("gflops", 2375.0, "GFLOPS");
//! assert_eq!(set.value("gflops"), Some(2375.0));
//!
//! // Lossless JSON round-trip: parse(sets_to_json(x)) == x.
//! let json = metric::sets_to_json(&[set.clone()]).unwrap();
//! let back = metric::sets_from_json(&json).unwrap();
//! assert_eq!(back, vec![set]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod env;
pub mod envelope;
pub mod experiment;
pub mod figure;
pub mod json;
pub mod metric;
pub mod obs;
pub mod reactor;
pub mod stats;
pub mod table;
pub mod transport;

pub use experiment::{ExperimentMeta, RepetitionProtocol};
pub use metric::{Metric, MetricRow, MetricSet, MetricValue, PowerContext, Provenance};
pub use stats::Summary;
pub use table::TextTable;

/// FNV-1a 64-bit hash of `text`, rendered as 16 lowercase hex
/// characters — the workspace's one compact-digest format. Both the
/// campaign report fingerprint and the model-constants digest use this,
/// so the two token formats can never silently diverge.
pub fn fnv1a_64_hex(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Convenience prelude.
pub mod prelude {
    pub use crate::csv::CsvWriter;
    pub use crate::env::EnvironmentRecord;
    pub use crate::envelope::{Request, Response};
    pub use crate::experiment::{ExperimentMeta, RepetitionProtocol};
    pub use crate::figure::{grouped_bar_chart, series_chart, SeriesChartConfig};
    pub use crate::json::to_json_string;
    pub use crate::metric::{Metric, MetricRow, MetricSet, MetricValue, PowerContext, Provenance};
    pub use crate::obs::{CampaignEvent, EventBroadcaster, EventKind, Exposition, Histogram};
    pub use crate::stats::Summary;
    pub use crate::table::TextTable;
    pub use crate::transport::{Endpoint, Listener, Stream, Transport};
}
