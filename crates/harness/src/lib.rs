//! # oranges-harness — benchmark orchestration and reporting
//!
//! Everything the paper's experimental section (§4) needs that is not a
//! kernel: the repetition protocol (five repetitions per GEMM experiment,
//! ten/twenty for STREAM), summary statistics, aligned text tables,
//! ASCII renderings of the four figures, CSV files and JSON reports, and
//! the environment discipline (`caffeinate`, mains power, reboot + idle)
//! as a recorded object.
//!
//! - [`stats`]: min/max/mean/median/σ summaries and best-of-N;
//! - [`experiment`]: repetition protocol with warm-up and skip rules;
//! - [`table`]: aligned text tables (Tables 1–3 renderers live in the
//!   `oranges` crate; this is the generic engine);
//! - [`figure`]: ASCII grouped bars (Fig. 1) and log-scale series charts
//!   (Fig. 2–4);
//! - [`csv`]: CSV writer;
//! - [`json`]: a minimal JSON serializer over `serde::Serialize` plus a
//!   parser (kept in-tree so the approved dependency set stays small);
//! - [`metric`]: the unified typed measurement record ([`MetricSet`]) —
//!   provenance-stamped metrics with generic CSV/JSON/table emitters,
//!   the campaign pipeline's single result currency;
//! - [`env`]: the §4 environment record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod env;
pub mod experiment;
pub mod figure;
pub mod json;
pub mod metric;
pub mod stats;
pub mod table;

pub use experiment::{ExperimentMeta, RepetitionProtocol};
pub use metric::{Metric, MetricRow, MetricSet, MetricValue, PowerContext, Provenance};
pub use stats::Summary;
pub use table::TextTable;

/// Convenience prelude.
pub mod prelude {
    pub use crate::csv::CsvWriter;
    pub use crate::env::EnvironmentRecord;
    pub use crate::experiment::{ExperimentMeta, RepetitionProtocol};
    pub use crate::figure::{grouped_bar_chart, series_chart, SeriesChartConfig};
    pub use crate::json::to_json_string;
    pub use crate::metric::{Metric, MetricRow, MetricSet, MetricValue, PowerContext, Provenance};
    pub use crate::stats::Summary;
    pub use crate::table::TextTable;
}
