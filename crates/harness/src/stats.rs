//! Summary statistics over repetition samples.

use serde::Serialize;

/// Summary of a set of samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower-middle for even counts).
    pub median: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Summarize samples; `None` for an empty or non-finite input.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() || samples.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let count = samples.len();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let min = sorted[0];
        let max = sorted[count - 1];
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let median = sorted[(count - 1) / 2];
        let variance = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Some(Summary {
            count,
            min,
            max,
            mean,
            median,
            stddev: variance.sqrt(),
        })
    }

    /// Relative spread (σ / mean), 0 for a zero mean.
    pub fn relative_stddev(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean.abs()
        }
    }
}

/// The paper's STREAM reporting rule: the best (maximum) of N repetitions.
pub fn best_of(samples: &[f64]) -> Option<f64> {
    samples
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(None, |acc, v| {
            Some(match acc {
                Some(best) => best.max(v),
                None => v,
            })
        })
}

/// Geometric mean (for cross-size aggregation).
pub fn geometric_mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() || samples.iter().any(|v| *v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = samples.iter().map(|v| v.ln()).sum();
    Some((log_sum / samples.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert!((s.stddev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_nan_rejected() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.5]).unwrap();
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.relative_stddev(), 0.0);
    }

    #[test]
    fn even_count_median_is_lower_middle() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn best_of_takes_maximum() {
        assert_eq!(best_of(&[55.0, 59.0, 57.0]), Some(59.0));
        assert_eq!(best_of(&[]), None);
        assert_eq!(best_of(&[f64::NAN, 2.0]), Some(2.0));
    }

    #[test]
    fn geometric_mean_of_powers() {
        let g = geometric_mean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[]).is_none());
    }
}
