//! The repetition protocol of §4.
//!
//! "Each experiment was repeated five times" (GEMM); CPU STREAM ten times,
//! GPU STREAM twenty. CPU-Single and CPU-OMP skip 8192/16384. The protocol
//! object runs a closure N times (plus optional discarded warm-ups),
//! collects per-repetition values and summarizes them.

use crate::stats::Summary;
use serde::Serialize;

/// Metadata identifying an experiment (figure/table id + description).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ExperimentMeta {
    /// Paper artifact id, e.g. `"fig2"`, `"table1"`.
    pub id: &'static str,
    /// Human-readable description.
    pub description: &'static str,
}

/// How many repetitions and warm-ups an experiment takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RepetitionProtocol {
    /// Measured repetitions.
    pub reps: u32,
    /// Discarded warm-up repetitions before measuring.
    pub warmup: u32,
}

impl RepetitionProtocol {
    /// §4's GEMM protocol: five repetitions.
    pub const GEMM: RepetitionProtocol = RepetitionProtocol { reps: 5, warmup: 0 };
    /// §4's CPU STREAM protocol: ten repetitions.
    pub const STREAM_CPU: RepetitionProtocol = RepetitionProtocol {
        reps: 10,
        warmup: 0,
    };
    /// §4's GPU STREAM protocol: twenty repetitions.
    pub const STREAM_GPU: RepetitionProtocol = RepetitionProtocol {
        reps: 20,
        warmup: 0,
    };

    /// Run `body` `warmup + reps` times, keeping the last `reps` values.
    pub fn run<T>(&self, mut body: impl FnMut(u32) -> T) -> Vec<T> {
        let mut kept = Vec::with_capacity(self.reps as usize);
        for rep in 0..self.warmup + self.reps {
            let value = body(rep);
            if rep >= self.warmup {
                kept.push(value);
            }
        }
        kept
    }

    /// Run a fallible body; the first error aborts the experiment.
    pub fn try_run<T, E>(&self, mut body: impl FnMut(u32) -> Result<T, E>) -> Result<Vec<T>, E> {
        let mut kept = Vec::with_capacity(self.reps as usize);
        for rep in 0..self.warmup + self.reps {
            let value = body(rep)?;
            if rep >= self.warmup {
                kept.push(value);
            }
        }
        Ok(kept)
    }

    /// Run and summarize an f64-valued measurement.
    pub fn measure(&self, body: impl FnMut(u32) -> f64) -> Option<Summary> {
        let samples = self.run(body);
        Summary::of(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_protocols() {
        assert_eq!(RepetitionProtocol::GEMM.reps, 5);
        assert_eq!(RepetitionProtocol::STREAM_CPU.reps, 10);
        assert_eq!(RepetitionProtocol::STREAM_GPU.reps, 20);
    }

    #[test]
    fn run_keeps_only_measured_reps() {
        let protocol = RepetitionProtocol { reps: 3, warmup: 2 };
        let values = protocol.run(|rep| rep);
        assert_eq!(values, vec![2, 3, 4]);
    }

    #[test]
    fn try_run_propagates_errors() {
        let protocol = RepetitionProtocol { reps: 5, warmup: 0 };
        let result: Result<Vec<u32>, &str> =
            protocol.try_run(|rep| if rep == 2 { Err("boom") } else { Ok(rep) });
        assert_eq!(result, Err("boom"));
        let ok: Result<Vec<u32>, &str> = protocol.try_run(Ok);
        assert_eq!(ok.unwrap().len(), 5);
    }

    #[test]
    fn measure_summarizes() {
        let protocol = RepetitionProtocol::GEMM;
        let summary = protocol.measure(|rep| rep as f64).unwrap();
        assert_eq!(summary.count, 5);
        assert_eq!(summary.min, 0.0);
        assert_eq!(summary.max, 4.0);
    }

    #[test]
    fn meta_is_plain_data() {
        let meta = ExperimentMeta {
            id: "fig1",
            description: "STREAM bandwidth",
        };
        assert_eq!(meta.id, "fig1");
    }
}
