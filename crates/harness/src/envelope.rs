//! Newline-delimited JSON wire envelopes.
//!
//! The campaign service speaks a line protocol over a Unix-domain
//! socket: every message is one JSON object on one line. This module
//! owns the two envelope shapes — [`Request`] (client → server) and
//! [`Response`] (server → client) — and their lossless round-trip
//! through [`crate::json`]. The envelopes are deliberately generic:
//! `body` is an opaque [`JsonValue`] tree, so the harness stays ignorant
//! of campaign types while the campaign crate layers its spec/metric
//! payloads on top.
//!
//! Framing rules:
//!
//! - one message per `\n`-terminated line (the JSON emitter never
//!   produces raw newlines — strings escape them as `\n`);
//! - requests carry a client-chosen `id`; every response to that request
//!   echoes it, so a client can stream multi-part answers (`kind:
//!   "unit"` … `kind: "done"`) and still correlate;
//! - errors are in-band: a response with `error` set (see
//!   [`Response::failure`] / [`Response::is_err`]).
//!
//! ```
//! use oranges_harness::envelope::{Request, Response};
//! use oranges_harness::json::JsonValue;
//!
//! let request = Request::new(7, "run").with_body(JsonValue::Bool(true));
//! let line = request.to_line();
//! assert_eq!(line, "{\"id\":7,\"method\":\"run\",\"body\":true}\n");
//! assert_eq!(Request::from_line(&line).unwrap(), request);
//!
//! let response = Response::ok(7, "done").with_body(JsonValue::integer(4));
//! assert!(!response.is_err());
//! assert_eq!(Response::from_line(&response.to_line()).unwrap(), response);
//! ```

use crate::json::{self, JsonValue};
use std::fmt;

/// A malformed envelope line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvelopeError(String);

impl EnvelopeError {
    fn new(message: impl Into<String>) -> Self {
        EnvelopeError(message.into())
    }
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "envelope error: {}", self.0)
    }
}

impl std::error::Error for EnvelopeError {}

/// One client → server message: a correlation id, a method name, and an
/// optional method-specific body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id; responses echo it.
    pub id: u64,
    /// Method name (`"run"`, `"stats"`, …) — the server dispatches on it.
    pub method: String,
    /// Method-specific payload, if the method takes one.
    pub body: Option<JsonValue>,
}

impl Request {
    /// A body-less request.
    pub fn new(id: u64, method: &str) -> Self {
        Request {
            id,
            method: method.to_string(),
            body: None,
        }
    }

    /// Attach a payload.
    pub fn with_body(mut self, body: JsonValue) -> Self {
        self.body = Some(body);
        self
    }

    /// Emit as one newline-terminated JSON line.
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("id".to_string(), JsonValue::integer(self.id)),
            ("method".to_string(), JsonValue::String(self.method.clone())),
        ];
        if let Some(body) = &self.body {
            fields.push(("body".to_string(), body.clone()));
        }
        let mut line = JsonValue::Object(fields).to_json_string();
        line.push('\n');
        line
    }

    /// Parse one line back into a request.
    pub fn from_line(line: &str) -> Result<Request, EnvelopeError> {
        let value = parse_line(line)?;
        Ok(Request {
            id: require_id(&value)?,
            method: value
                .get("method")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| EnvelopeError::new("request has no string 'method'"))?
                .to_string(),
            body: value.get("body").cloned(),
        })
    }
}

/// One server → client message: the echoed request id, a response kind,
/// an optional in-band error, and an optional body.
///
/// Multi-part answers stream several responses with the same `id` and
/// distinct kinds; by convention the final part's kind is terminal
/// (`"done"` or `"error"`).
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    /// Response kind (`"unit"`, `"done"`, `"stats"`, `"error"`, …).
    pub kind: String,
    /// In-band failure, if the request could not be served.
    pub error: Option<String>,
    /// Kind-specific payload.
    pub body: Option<JsonValue>,
}

impl Response {
    /// A successful response of `kind`.
    pub fn ok(id: u64, kind: &str) -> Self {
        Response {
            id,
            kind: kind.to_string(),
            error: None,
            body: None,
        }
    }

    /// A failure response (kind `"error"`).
    pub fn failure(id: u64, message: impl Into<String>) -> Self {
        Response {
            id,
            kind: "error".to_string(),
            error: Some(message.into()),
            body: None,
        }
    }

    /// Attach a payload.
    pub fn with_body(mut self, body: JsonValue) -> Self {
        self.body = Some(body);
        self
    }

    /// Whether this response reports a failure.
    pub fn is_err(&self) -> bool {
        self.error.is_some()
    }

    /// Emit as one newline-terminated JSON line.
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("id".to_string(), JsonValue::integer(self.id)),
            ("kind".to_string(), JsonValue::String(self.kind.clone())),
        ];
        if let Some(error) = &self.error {
            fields.push(("error".to_string(), JsonValue::String(error.clone())));
        }
        if let Some(body) = &self.body {
            fields.push(("body".to_string(), body.clone()));
        }
        let mut line = JsonValue::Object(fields).to_json_string();
        line.push('\n');
        line
    }

    /// Parse one line back into a response.
    pub fn from_line(line: &str) -> Result<Response, EnvelopeError> {
        let value = parse_line(line)?;
        let error = match value.get("error") {
            None | Some(JsonValue::Null) => None,
            Some(JsonValue::String(message)) => Some(message.clone()),
            Some(other) => {
                return Err(EnvelopeError::new(format!(
                    "response 'error' is not a string: {other:?}"
                )))
            }
        };
        Ok(Response {
            id: require_id(&value)?,
            kind: value
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| EnvelopeError::new("response has no string 'kind'"))?
                .to_string(),
            error,
            body: value.get("body").cloned(),
        })
    }
}

fn parse_line(line: &str) -> Result<JsonValue, EnvelopeError> {
    let value = json::parse(line.trim_end_matches(['\n', '\r']))
        .map_err(|e| EnvelopeError::new(e.to_string()))?;
    match value {
        JsonValue::Object(_) => Ok(value),
        other => Err(EnvelopeError::new(format!(
            "envelope line is not an object: {other:?}"
        ))),
    }
}

fn require_id(value: &JsonValue) -> Result<u64, EnvelopeError> {
    value
        .get("id")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| EnvelopeError::new("envelope has no integer 'id'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_with_and_without_body() {
        let bare = Request::new(1, "stats");
        assert_eq!(Request::from_line(&bare.to_line()).unwrap(), bare);
        let with_body = Request::new(2, "run").with_body(JsonValue::Object(vec![(
            "chips".to_string(),
            JsonValue::Array(vec![JsonValue::String("M1".to_string())]),
        )]));
        let line = with_body.to_line();
        assert!(line.ends_with('\n'));
        assert_eq!(line.matches('\n').count(), 1, "one line per envelope");
        assert_eq!(Request::from_line(&line).unwrap(), with_body);
    }

    #[test]
    fn response_round_trips_success_and_failure() {
        let ok = Response::ok(9, "unit").with_body(JsonValue::number(1.5));
        assert!(!ok.is_err());
        assert_eq!(Response::from_line(&ok.to_line()).unwrap(), ok);

        let failure = Response::failure(9, "unknown method 'frobnicate'");
        assert!(failure.is_err());
        let back = Response::from_line(&failure.to_line()).unwrap();
        assert_eq!(back.error.as_deref(), Some("unknown method 'frobnicate'"));
        assert_eq!(back.kind, "error");
    }

    #[test]
    fn newlines_in_payload_strings_stay_escaped() {
        let response =
            Response::ok(3, "done").with_body(JsonValue::String("line one\nline two".to_string()));
        let line = response.to_line();
        assert_eq!(line.matches('\n').count(), 1, "payload newline is escaped");
        assert_eq!(Response::from_line(&line).unwrap(), response);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "not json",
            "[1,2]",
            "{\"method\":\"run\"}",
            "{\"id\":1}",
            "{\"id\":1.5,\"method\":\"run\"}",
        ] {
            assert!(Request::from_line(bad).is_err(), "accepted {bad:?}");
        }
        assert!(Response::from_line("{\"id\":1}").is_err());
        assert!(Response::from_line("{\"id\":1,\"kind\":\"x\",\"error\":7}").is_err());
    }

    #[test]
    fn correlation_ids_survive_exactly() {
        let request = Request::new(u64::MAX, "ping");
        assert_eq!(Request::from_line(&request.to_line()).unwrap().id, u64::MAX);
    }
}
