//! Observability primitives: Prometheus-style text exposition,
//! concurrent histograms, and a non-blocking campaign event stream.
//!
//! Three independent pieces, all dependency-free:
//!
//! - [`Exposition`]: a writer for the Prometheus *text exposition
//!   format* (`# HELP` / `# TYPE` headers emitted once per family,
//!   label values escaped per the format's rules, histograms rendered
//!   as cumulative `_bucket{le="…"}` series plus `_sum`/`_count`);
//! - [`Histogram`]: a lock-free fixed-bucket histogram safe to observe
//!   from many threads (per-bucket atomic counters, compare-exchange
//!   float sum), with [`log_spaced_buckets`] for latency-style
//!   distributions;
//! - [`CampaignEvent`] / [`EventBroadcaster`]: structured lifecycle
//!   events (unit started/completed/failed/cache-hit/coalesced,
//!   connection open/close, cache persist) fanned out over bounded
//!   channels. Publishing **never blocks**: a subscriber whose channel
//!   is full loses that event and the loss is counted in
//!   [`EventBroadcaster::events_dropped`].
//!
//! The campaign engine and service build their `metrics` endpoint and
//! `subscribe` stream out of these; nothing here knows about the wire
//! protocol.

use crate::json::{self, JsonValue};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

// ---------------------------------------------------------------------------
// Text exposition writer
// ---------------------------------------------------------------------------

/// Writer for the Prometheus text exposition format.
///
/// `# HELP` and `# TYPE` headers are emitted exactly once per metric
/// family (the first write wins; later writes to the same family append
/// samples only). Metric and label names are sanitized to the format's
/// legal character set, and label values are escaped (`\\`, `\"`,
/// `\n`), so arbitrary strings — unit parameter digests, experiment
/// names with spaces — always produce a parseable exposition.
///
/// ```
/// use oranges_harness::obs::Exposition;
///
/// let mut exp = Exposition::new();
/// exp.counter("units_total", "Units submitted.", &[("experiment", "fig4")], 16);
/// let text = exp.finish();
/// assert!(text.contains("# TYPE units_total counter"));
/// assert!(text.contains("units_total{experiment=\"fig4\"} 16"));
/// ```
#[derive(Debug, Default)]
pub struct Exposition {
    body: String,
    families: BTreeSet<String>,
}

impl Exposition {
    /// New empty exposition.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    /// Append a counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        let name = sanitize_metric_name(name);
        self.family(&name, "counter", help);
        let _ = writeln!(self.body, "{}{} {}", name, render_labels(labels), value);
    }

    /// Append a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let name = sanitize_metric_name(name);
        self.family(&name, "gauge", help);
        let _ = writeln!(
            self.body,
            "{}{} {}",
            name,
            render_labels(labels),
            render_float(value)
        );
    }

    /// Append a full histogram: one cumulative `_bucket` sample per
    /// upper bound plus the `+Inf` bucket, then `_sum` and `_count`.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snapshot: &HistogramSnapshot,
    ) {
        let name = sanitize_metric_name(name);
        self.family(&name, "histogram", help);
        for (upper, cumulative) in &snapshot.buckets {
            let mut with_le: Vec<(&str, String)> =
                labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect();
            with_le.push(("le", render_float(*upper)));
            let rendered: Vec<(&str, &str)> =
                with_le.iter().map(|(k, v)| (*k, v.as_str())).collect();
            let _ = writeln!(
                self.body,
                "{}_bucket{} {}",
                name,
                render_labels(&rendered),
                cumulative
            );
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        let _ = writeln!(
            self.body,
            "{}_bucket{} {}",
            name,
            render_labels(&with_inf),
            snapshot.count
        );
        let _ = writeln!(
            self.body,
            "{}_sum{} {}",
            name,
            render_labels(labels),
            render_float(snapshot.sum)
        );
        let _ = writeln!(
            self.body,
            "{}_count{} {}",
            name,
            render_labels(labels),
            snapshot.count
        );
    }

    /// Consume the writer and return the exposition text.
    pub fn finish(self) -> String {
        self.body
    }

    fn family(&mut self, name: &str, kind: &str, help: &str) {
        if self.families.insert(name.to_string()) {
            let _ = writeln!(self.body, "# HELP {} {}", name, escape_help(help));
            let _ = writeln!(self.body, "# TYPE {name} {kind}");
        }
    }
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_label_name(k), escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn render_float(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

/// Map `name` onto the exposition format's metric-name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every illegal character becomes `_`,
/// a leading digit is prefixed with `_`, and an empty name becomes
/// `_`. Deterministic, so distinct callers sanitize identically.
pub fn sanitize_metric_name(name: &str) -> String {
    sanitize_name(name, true)
}

/// Map `name` onto the label-name alphabet (`[a-zA-Z_][a-zA-Z0-9_]*` —
/// like metric names but without `:`).
pub fn sanitize_label_name(name: &str) -> String {
    sanitize_name(name, false)
}

fn sanitize_name(name: &str, allow_colon: bool) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let legal = ch.is_ascii_alphabetic()
            || ch == '_'
            || (allow_colon && ch == ':')
            || (i > 0 && ch.is_ascii_digit());
        if legal {
            out.push(ch);
        } else if i == 0 && ch.is_ascii_digit() {
            out.push('_');
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline become `\\`, `\"`, and `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for ch in help.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// `count` log-spaced upper bounds starting at `start`, each `factor`×
/// the previous. Panics if `start <= 0`, `factor <= 1`, or `count == 0`
/// — bucket layouts are compile-time decisions, not runtime inputs.
pub fn log_spaced_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(
        start > 0.0 && factor > 1.0 && count > 0,
        "degenerate bucket layout"
    );
    let mut bounds = Vec::with_capacity(count);
    let mut upper = start;
    for _ in 0..count {
        bounds.push(upper);
        upper *= factor;
    }
    bounds
}

/// The workspace's fixed latency bucket layout: 20 log-spaced bounds
/// from 100 µs to ~52 s (factor 2). Wide enough for both a cache-hit
/// lookup and a long simulated campaign unit; fixed so histograms from
/// different daemons are mergeable bucket-by-bucket.
pub fn default_latency_buckets() -> Vec<f64> {
    log_spaced_buckets(1e-4, 2.0, 20)
}

/// Fixed-bucket histogram observable from many threads without locks.
///
/// Per-bucket counts and the total count are plain atomic counters; the
/// running sum is an `f64` accumulated by compare-exchange on its bit
/// pattern (no `unsafe`, no mutex on the hot path). Reads take a
/// consistent-enough [`snapshot`](Histogram::snapshot) — exposition
/// scrapes tolerate the usual monotonic-counter skew.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// New histogram over ascending `bounds` (upper bucket edges; the
    /// `+Inf` bucket is implicit). Panics on empty or unsorted bounds.
    pub fn new(bounds: Vec<f64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts = bounds.iter().map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            total: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// New histogram with the [`default_latency_buckets`] layout.
    pub fn latency() -> Histogram {
        Histogram::new(default_latency_buckets())
    }

    /// Record one observation. Non-finite values count toward `_count`
    /// and the `+Inf` bucket but are excluded from the sum (a NaN sum
    /// would poison every later scrape).
    pub fn observe(&self, value: f64) {
        for (bound, count) in self.bounds.iter().zip(&self.counts) {
            if value <= *bound {
                count.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.total.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            let mut current = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(current) + value).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => current = seen,
                }
            }
        }
    }

    /// Point-in-time copy: cumulative per-bucket counts (already
    /// cumulative, ready for `_bucket{le=…}` rendering), total count,
    /// and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .bounds
                .iter()
                .zip(&self.counts)
                .map(|(b, c)| (*b, c.load(Ordering::Relaxed)))
                .collect(),
            count: self.total.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }

    /// Total number of observations so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

/// Frozen view of a [`Histogram`] for rendering or assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// `(upper_bound, cumulative_count)` per configured bucket,
    /// ascending; the implicit `+Inf` bucket is `count`.
    pub buckets: Vec<(f64, u64)>,
    /// Total observations (the `_count` sample and the `+Inf` bucket).
    pub count: u64,
    /// Sum of all finite observations (the `_sum` sample).
    pub sum: f64,
}

// ---------------------------------------------------------------------------
// Campaign events
// ---------------------------------------------------------------------------

/// What happened. One variant per lifecycle edge the engine and
/// service emit; [`EventKind::Heartbeat`] is a liveness tick injected
/// by long-lived `subscribe` streams so dead clients are detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A worker picked a unit off the queue and began computing.
    UnitStarted,
    /// A unit finished computing successfully.
    UnitCompleted,
    /// A unit's experiment panicked; the failure was contained.
    UnitFailed,
    /// A submitted unit was answered from the warm cache.
    CacheHit,
    /// A submitted unit joined an identical in-flight computation.
    Coalesced,
    /// The service accepted a client connection.
    ConnectionOpened,
    /// A client connection ended (EOF, error, or drain).
    ConnectionClosed,
    /// The service persisted its cache to disk.
    CachePersisted,
    /// Periodic liveness tick on a `subscribe` stream.
    Heartbeat,
    /// A queued, not-yet-started unit was abandoned because every
    /// subscriber waiting on it cancelled (or timed out).
    UnitCancelled,
    /// A subscription's deadline expired, failing one of its pending
    /// unit deliveries.
    DeadlineExpired,
    /// A whole submission was turned away at admission (queue full).
    SubmissionRejected,
}

impl EventKind {
    /// Stable wire token (snake_case).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::UnitStarted => "unit_started",
            EventKind::UnitCompleted => "unit_completed",
            EventKind::UnitFailed => "unit_failed",
            EventKind::CacheHit => "cache_hit",
            EventKind::Coalesced => "coalesced",
            EventKind::ConnectionOpened => "connection_opened",
            EventKind::ConnectionClosed => "connection_closed",
            EventKind::CachePersisted => "cache_persisted",
            EventKind::Heartbeat => "heartbeat",
            EventKind::UnitCancelled => "unit_cancelled",
            EventKind::DeadlineExpired => "deadline_expired",
            EventKind::SubmissionRejected => "submission_rejected",
        }
    }

    /// Inverse of [`as_str`](EventKind::as_str).
    pub fn parse(token: &str) -> Option<EventKind> {
        Some(match token {
            "unit_started" => EventKind::UnitStarted,
            "unit_completed" => EventKind::UnitCompleted,
            "unit_failed" => EventKind::UnitFailed,
            "cache_hit" => EventKind::CacheHit,
            "coalesced" => EventKind::Coalesced,
            "connection_opened" => EventKind::ConnectionOpened,
            "connection_closed" => EventKind::ConnectionClosed,
            "cache_persisted" => EventKind::CachePersisted,
            "heartbeat" => EventKind::Heartbeat,
            "unit_cancelled" => EventKind::UnitCancelled,
            "deadline_expired" => EventKind::DeadlineExpired,
            "submission_rejected" => EventKind::SubmissionRejected,
            _ => return None,
        })
    }
}

/// Milliseconds since the Unix epoch, for event timestamps.
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One structured lifecycle event. Serializes to a flat JSON object
/// (`kind`, `timestamp_ms`, then only the optional fields that are
/// set) and parses back losslessly — the `subscribe` wire body.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignEvent {
    /// What happened.
    pub kind: EventKind,
    /// When, in milliseconds since the Unix epoch.
    pub timestamp_ms: u64,
    /// The unit's cache key (`experiment` + params digest), for
    /// unit-lifecycle kinds.
    pub unit: Option<String>,
    /// The experiment name, for unit-lifecycle kinds.
    pub experiment: Option<String>,
    /// Service connection id, for connection kinds.
    pub connection: Option<u64>,
    /// Compute wall time in seconds, on [`EventKind::UnitCompleted`].
    pub wall_s: Option<f64>,
    /// Free-form context (failure message, cache path, …).
    pub detail: Option<String>,
}

impl CampaignEvent {
    /// New event of `kind` stamped with the current time.
    pub fn new(kind: EventKind) -> CampaignEvent {
        CampaignEvent {
            kind,
            timestamp_ms: now_ms(),
            unit: None,
            experiment: None,
            connection: None,
            wall_s: None,
            detail: None,
        }
    }

    /// New unit-lifecycle event carrying the unit's cache key and
    /// experiment name.
    pub fn unit(kind: EventKind, unit_key: &str, experiment: &str) -> CampaignEvent {
        let mut event = CampaignEvent::new(kind);
        event.unit = Some(unit_key.to_string());
        event.experiment = Some(experiment.to_string());
        event
    }

    /// Attach a connection id.
    pub fn with_connection(mut self, id: u64) -> CampaignEvent {
        self.connection = Some(id);
        self
    }

    /// Attach a compute wall time.
    pub fn with_wall(mut self, wall_s: f64) -> CampaignEvent {
        self.wall_s = Some(wall_s);
        self
    }

    /// Attach free-form detail text.
    pub fn with_detail(mut self, detail: &str) -> CampaignEvent {
        self.detail = Some(detail.to_string());
        self
    }

    /// Serialize to the wire JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            (
                "kind".to_string(),
                JsonValue::String(self.kind.as_str().to_string()),
            ),
            (
                "timestamp_ms".to_string(),
                JsonValue::integer(self.timestamp_ms),
            ),
        ];
        if let Some(unit) = &self.unit {
            fields.push(("unit".to_string(), JsonValue::String(unit.clone())));
        }
        if let Some(experiment) = &self.experiment {
            fields.push((
                "experiment".to_string(),
                JsonValue::String(experiment.clone()),
            ));
        }
        if let Some(connection) = self.connection {
            fields.push(("connection".to_string(), JsonValue::integer(connection)));
        }
        if let Some(wall_s) = self.wall_s {
            fields.push(("wall_s".to_string(), JsonValue::number(wall_s)));
        }
        if let Some(detail) = &self.detail {
            fields.push(("detail".to_string(), JsonValue::String(detail.clone())));
        }
        JsonValue::Object(fields)
    }

    /// Parse an event from its wire JSON object.
    pub fn from_json(value: &JsonValue) -> Result<CampaignEvent, String> {
        let kind_token = value
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "event missing string `kind`".to_string())?;
        let kind = EventKind::parse(kind_token)
            .ok_or_else(|| format!("unknown event kind {kind_token:?}"))?;
        let timestamp_ms = value
            .get("timestamp_ms")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| "event missing integer `timestamp_ms`".to_string())?;
        Ok(CampaignEvent {
            kind,
            timestamp_ms,
            unit: value
                .get("unit")
                .and_then(JsonValue::as_str)
                .map(String::from),
            experiment: value
                .get("experiment")
                .and_then(JsonValue::as_str)
                .map(String::from),
            connection: value.get("connection").and_then(JsonValue::as_u64),
            wall_s: value.get("wall_s").and_then(JsonValue::as_f64),
            detail: value
                .get("detail")
                .and_then(JsonValue::as_str)
                .map(String::from),
        })
    }

    /// Parse an event from a JSON source string.
    pub fn from_json_str(text: &str) -> Result<CampaignEvent, String> {
        let value = json::parse(text).map_err(|e| format!("event parse: {e}"))?;
        CampaignEvent::from_json(&value)
    }
}

// ---------------------------------------------------------------------------
// Event broadcasting
// ---------------------------------------------------------------------------

struct Subscriber {
    id: u64,
    sender: SyncSender<CampaignEvent>,
    notify: Option<Arc<dyn Fn() + Send + Sync>>,
}

#[derive(Default)]
struct BroadcasterInner {
    subscribers: Mutex<Vec<Subscriber>>,
    next_id: AtomicU64,
    dropped: AtomicU64,
}

/// Bounded fan-out of [`CampaignEvent`]s.
///
/// Each subscriber gets its own bounded channel;
/// [`publish`](EventBroadcaster::publish) delivers a clone to each
/// with a non-blocking `try_send`. A subscriber that cannot keep up
/// loses that event (counted in
/// [`events_dropped`](EventBroadcaster::events_dropped)) — a slow
/// dashboard can never
/// stall an engine worker. A dropped [`EventStream`] unregisters
/// itself, so abandoned subscriptions cost nothing.
///
/// Cloning the broadcaster is cheap and shares the subscriber set.
#[derive(Clone, Default)]
pub struct EventBroadcaster {
    inner: Arc<BroadcasterInner>,
}

impl EventBroadcaster {
    /// New broadcaster with no subscribers.
    pub fn new() -> EventBroadcaster {
        EventBroadcaster::default()
    }

    /// Register a subscriber whose channel buffers up to `capacity`
    /// events. Events published while the buffer is full are dropped
    /// for this subscriber (and counted), not queued.
    pub fn subscribe(&self, capacity: usize) -> EventStream {
        self.register(capacity, None)
    }

    /// Like [`subscribe`](EventBroadcaster::subscribe), but invoking
    /// `notify` after each successfully buffered event — the hook a
    /// readiness-driven consumer (the service reactor) installs so it
    /// is woken instead of polling
    /// [`try_recv`](EventStream::try_recv). Dropped (buffer-full)
    /// events do not notify: there is nothing new to read.
    pub fn subscribe_with_notify(
        &self,
        capacity: usize,
        notify: Arc<dyn Fn() + Send + Sync>,
    ) -> EventStream {
        self.register(capacity, Some(notify))
    }

    fn register(
        &self,
        capacity: usize,
        notify: Option<Arc<dyn Fn() + Send + Sync>>,
    ) -> EventStream {
        let (sender, receiver) = std::sync::mpsc::sync_channel(capacity.max(1));
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner
            .subscribers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(Subscriber { id, sender, notify });
        EventStream {
            id,
            receiver,
            registry: Arc::clone(&self.inner),
        }
    }

    /// Deliver `event` to every live subscriber without blocking.
    /// Full channels drop the event (counted); disconnected receivers
    /// are pruned.
    pub fn publish(&self, event: &CampaignEvent) {
        let mut subscribers = self
            .inner
            .subscribers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        subscribers.retain(|sub| match sub.sender.try_send(event.clone()) {
            Ok(()) => {
                if let Some(notify) = &sub.notify {
                    notify();
                }
                true
            }
            Err(TrySendError::Full(_)) => {
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        });
    }

    /// Current number of registered subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.inner
            .subscribers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// Lifetime count of events lost to full subscriber buffers.
    pub fn events_dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for EventBroadcaster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBroadcaster")
            .field("subscribers", &self.subscriber_count())
            .field("events_dropped", &self.events_dropped())
            .finish()
    }
}

/// Receiving end of one subscription. Dropping it unregisters the
/// subscriber from the broadcaster.
pub struct EventStream {
    id: u64,
    receiver: Receiver<CampaignEvent>,
    registry: Arc<BroadcasterInner>,
}

impl EventStream {
    /// Wait up to `timeout` for the next event. `Err(Timeout)` means
    /// no event arrived; `Err(Disconnected)` cannot happen while the
    /// broadcaster is alive (senders are pruned only on our drop).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<CampaignEvent, RecvTimeoutError> {
        self.receiver.recv_timeout(timeout)
    }

    /// Take the next buffered event without waiting.
    pub fn try_recv(&self) -> Result<CampaignEvent, TryRecvError> {
        self.receiver.try_recv()
    }

    /// Drain every currently buffered event.
    pub fn drain(&self) -> Vec<CampaignEvent> {
        let mut events = Vec::new();
        while let Ok(event) = self.receiver.try_recv() {
            events.push(event);
        }
        events
    }
}

impl Drop for EventStream {
    fn drop(&mut self) {
        self.registry
            .subscribers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .retain(|sub| sub.id != self.id);
    }
}

impl std::fmt::Debug for EventStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventStream").field("id", &self.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn exposition_emits_headers_once_per_family() {
        let mut exp = Exposition::new();
        exp.counter("hits", "Cache hits.", &[("chip", "M1")], 3);
        exp.counter("hits", "Cache hits.", &[("chip", "M3")], 5);
        let text = exp.finish();
        assert_eq!(text.matches("# HELP hits").count(), 1);
        assert_eq!(text.matches("# TYPE hits counter").count(), 1);
        assert!(text.contains("hits{chip=\"M1\"} 3"));
        assert!(text.contains("hits{chip=\"M3\"} 5"));
    }

    #[test]
    fn exposition_escapes_label_values_and_sanitizes_names() {
        let mut exp = Exposition::new();
        exp.gauge("queue depth!", "Queue.", &[("unit key", "a\"b\\c\nd")], 2.0);
        let text = exp.finish();
        assert!(text.contains("queue_depth_{unit_key=\"a\\\"b\\\\c\\nd\"} 2"));
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_label_name("le:gal"), "le_gal");
    }

    #[test]
    fn histogram_renders_cumulative_buckets_sum_and_count() {
        let hist = Histogram::new(vec![0.1, 1.0, 10.0]);
        hist.observe(0.05);
        hist.observe(0.5);
        hist.observe(5.0);
        hist.observe(50.0);
        let snap = hist.snapshot();
        assert_eq!(snap.buckets, vec![(0.1, 1), (1.0, 2), (10.0, 3)]);
        assert_eq!(snap.count, 4);
        assert!((snap.sum - 55.55).abs() < 1e-9);

        let mut exp = Exposition::new();
        exp.histogram(
            "latency_seconds",
            "Unit latency.",
            &[("experiment", "fig4")],
            &snap,
        );
        let text = exp.finish();
        assert!(text.contains("latency_seconds_bucket{experiment=\"fig4\",le=\"0.1\"} 1"));
        assert!(text.contains("latency_seconds_bucket{experiment=\"fig4\",le=\"+Inf\"} 4"));
        assert!(text.contains("latency_seconds_sum{experiment=\"fig4\"} 55.5"));
        assert!(text.contains("latency_seconds_count{experiment=\"fig4\"} 4"));
    }

    #[test]
    fn histogram_is_safe_under_concurrent_observation() {
        let hist = Arc::new(Histogram::latency());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        hist.observe(1e-4 * ((t * 1000 + i) as f64 % 17.0 + 1.0));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 4000);
        assert!(snap.sum > 0.0);
        // The widest bucket is cumulative over everything.
        assert_eq!(snap.buckets.last().unwrap().1, 4000);
    }

    #[test]
    fn log_spaced_buckets_grow_by_factor() {
        let b = log_spaced_buckets(1e-4, 2.0, 5);
        assert_eq!(b.len(), 5);
        assert!((b[0] - 1e-4).abs() < 1e-12);
        for w in b.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-9);
        }
        assert_eq!(default_latency_buckets().len(), 20);
    }

    #[test]
    fn events_round_trip_through_json() {
        let event = CampaignEvent::unit(EventKind::UnitCompleted, "fig4|abc123", "fig4")
            .with_connection(7)
            .with_wall(0.125)
            .with_detail("computed");
        let text = event.to_json().to_json_string();
        let back = CampaignEvent::from_json_str(&text).expect("parses");
        assert_eq!(back, event);

        // Every kind token survives the round trip.
        for kind in [
            EventKind::UnitStarted,
            EventKind::UnitCompleted,
            EventKind::UnitFailed,
            EventKind::CacheHit,
            EventKind::Coalesced,
            EventKind::ConnectionOpened,
            EventKind::ConnectionClosed,
            EventKind::CachePersisted,
            EventKind::Heartbeat,
            EventKind::UnitCancelled,
            EventKind::DeadlineExpired,
            EventKind::SubmissionRejected,
        ] {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::parse("no_such_kind"), None);
    }

    #[test]
    fn broadcast_reaches_every_subscriber() {
        let bus = EventBroadcaster::new();
        let a = bus.subscribe(8);
        let b = bus.subscribe(8);
        assert_eq!(bus.subscriber_count(), 2);
        bus.publish(&CampaignEvent::new(EventKind::CachePersisted));
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1);
        drop(a);
        assert_eq!(bus.subscriber_count(), 1);
        drop(b);
        assert_eq!(bus.subscriber_count(), 0);
        // Publishing into the void is fine.
        bus.publish(&CampaignEvent::new(EventKind::Heartbeat));
        assert_eq!(bus.events_dropped(), 0);
    }

    #[test]
    fn slow_subscriber_drops_events_and_never_blocks_the_publisher() {
        let bus = EventBroadcaster::new();
        let slow = bus.subscribe(1); // capacity 1, never read
        let started = Instant::now();
        for _ in 0..100 {
            bus.publish(&CampaignEvent::new(EventKind::Heartbeat));
        }
        // Non-blocking by construction: 100 publishes into a full
        // buffer complete immediately, dropping all but the first.
        assert!(started.elapsed() < Duration::from_secs(1));
        assert_eq!(bus.events_dropped(), 99);
        assert_eq!(slow.drain().len(), 1);
        // A fresh subscriber still receives events after the drops.
        let fresh = bus.subscribe(8);
        bus.publish(&CampaignEvent::new(EventKind::Heartbeat));
        assert_eq!(fresh.drain().len(), 1);
    }
}
