//! Pluggable byte transports for the campaign wire protocol.
//!
//! The campaign service speaks newline-delimited JSON envelopes
//! ([`crate::envelope`]) over a *bidirectional byte stream* — it does
//! not care whether that stream is an `AF_UNIX` socket on one host or a
//! TCP connection across a fleet of measurement machines. This module
//! owns that indifference:
//!
//! - [`Endpoint`] — a parseable/displayable address (`unix:/path` or
//!   `tcp:host:port`), the one form endpoints take in CLIs, configs,
//!   and fleet lists;
//! - [`Stream`] — a bidirectional, cloneable byte stream with
//!   **read-half shutdown** (the primitive the service's shutdown drain
//!   needs: wake a peer parked in a blocking read without cutting off a
//!   response still being written);
//! - [`Listener`] — accepts streams and knows its *resolved* local
//!   endpoint (so `tcp:127.0.0.1:0` gains its real port after bind)
//!   plus a self-dialable form ([`Listener::dial_endpoint`]: wildcard
//!   hosts become loopback);
//! - [`Transport`] — pairs the two with `bind`/`connect`, implemented
//!   by [`UnixTransport`], [`TcpTransport`], and the scheme-dispatching
//!   [`AnyTransport`].
//!
//! The traits are deliberately minimal: exactly the surface the service
//! stack uses (`Read` + `Write`, `try_clone`, `shutdown_read`, blocking
//! `accept`), nothing speculative. Code generic over [`Transport`] is
//! oblivious to the address family; code that must pick one at runtime
//! (a `--listen` flag, a `--fleet` list) uses [`AnyTransport`], which
//! dispatches on the endpoint's scheme.
//!
//! ## Addressing
//!
//! ```
//! use oranges_harness::transport::Endpoint;
//!
//! // The two schemes, round-tripping through their display form:
//! let tcp: Endpoint = "tcp:node-a.local:7771".parse()?;
//! assert_eq!(tcp.to_string(), "tcp:node-a.local:7771");
//! let unix: Endpoint = "unix:/tmp/oranges.sock".parse()?;
//! assert_eq!(unix.to_string(), "unix:/tmp/oranges.sock");
//! assert_eq!(unix.scheme(), "unix");
//! # Ok::<(), oranges_harness::transport::EndpointParseError>(())
//! ```
//!
//! ## A loopback round trip
//!
//! ```
//! use oranges_harness::transport::{Listener, Stream, TcpTransport, Transport};
//! use std::io::{Read, Write};
//!
//! // Port 0: the OS picks; the listener reports the resolved endpoint.
//! let listener = TcpTransport::bind(&"tcp:127.0.0.1:0".parse().unwrap())?;
//! let endpoint = listener.local_endpoint().clone();
//!
//! let echo = std::thread::spawn(move || -> std::io::Result<()> {
//!     let mut stream = listener.accept()?;
//!     let mut byte = [0u8; 1];
//!     stream.read_exact(&mut byte)?;
//!     stream.write_all(&byte)
//! });
//!
//! let mut client = TcpTransport::connect(&endpoint)?;
//! client.write_all(b"!")?;
//! let mut back = [0u8; 1];
//! client.read_exact(&mut back)?;
//! assert_eq!(&back, b"!");
//! echo.join().unwrap()?;
//! # Ok::<(), std::io::Error>(())
//! ```

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::fd::AsRawFd;
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// An opaque, connection-stable identity for readiness registration.
///
/// The reactor ([`crate::reactor`]) keys its registration table by its
/// own generationed tokens; this is the *transport-level* identity a
/// stream carries into that table — on unix targets it is the raw file
/// descriptor number, which is what a `poll(2)`-style readiness set
/// would be built from. Cloned handles of one connection share a
/// descriptor table entry but not necessarily a number, so tokens are
/// compared only for registration bookkeeping and diagnostics, never
/// for connection equality across clones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReadinessToken(pub u64);

impl fmt::Display for ReadinessToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd:{}", self.0)
    }
}

/// A malformed endpoint string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointParseError(String);

impl EndpointParseError {
    fn new(message: impl Into<String>) -> Self {
        EndpointParseError(message.into())
    }
}

impl fmt::Display for EndpointParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "endpoint error: {}", self.0)
    }
}

impl std::error::Error for EndpointParseError {}

/// A transport address: where a service listens or a client dials.
///
/// The textual form is `scheme:rest` — `unix:/path/to/socket` or
/// `tcp:host:port` — and [`FromStr`]/[`Display`](fmt::Display) are
/// exact inverses for any endpoint whose path is valid UTF-8 (a
/// property `crates/harness/tests/props.rs` checks by construction).
///
/// `tcp` hosts may be names (`node-a.local`), IPv4 literals, or
/// bracketed IPv6 literals (`tcp:[::1]:7771` — the port is whatever
/// follows the *last* colon). Port `0` is valid at bind time and means
/// "let the OS pick"; [`Listener::local_endpoint`] reports what it
/// picked.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A Unix-domain socket path (`unix:/path`). Only bindable/dialable
    /// on unix targets, though the address itself exists everywhere.
    Unix(PathBuf),
    /// A TCP authority (`tcp:host:port`), stored as `host:port`.
    Tcp(String),
}

impl Endpoint {
    /// The URI scheme: `"unix"` or `"tcp"`.
    pub fn scheme(&self) -> &'static str {
        match self {
            Endpoint::Unix(_) => "unix",
            Endpoint::Tcp(_) => "tcp",
        }
    }

    /// Dial this endpoint with the scheme-matching transport.
    ///
    /// Shorthand for [`AnyTransport::connect`].
    pub fn connect(&self) -> io::Result<AnyStream> {
        AnyTransport::connect(self)
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(authority) => write!(f, "tcp:{authority}"),
        }
    }
}

impl FromStr for Endpoint {
    type Err = EndpointParseError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        if let Some(path) = text.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(EndpointParseError::new("unix endpoint has an empty path"));
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        if let Some(authority) = text.strip_prefix("tcp:") {
            let (host, port) = authority.rsplit_once(':').ok_or_else(|| {
                EndpointParseError::new(format!(
                    "tcp endpoint '{authority}' needs host:port (the port follows the last ':')"
                ))
            })?;
            if host.is_empty() {
                return Err(EndpointParseError::new(format!(
                    "tcp endpoint '{authority}' has an empty host"
                )));
            }
            if port.parse::<u16>().is_err() {
                return Err(EndpointParseError::new(format!(
                    "tcp endpoint '{authority}' has a bad port '{port}' (want 0-65535)"
                )));
            }
            return Ok(Endpoint::Tcp(authority.to_string()));
        }
        Err(EndpointParseError::new(format!(
            "endpoint '{text}' has no scheme: want unix:/path or tcp:host:port"
        )))
    }
}

// Bare paths are unambiguous Unix-socket addresses; these conversions
// let path-shaped call sites (`ServiceConfig::new(&socket_path)`) stay
// terse. Strings are *not* converted implicitly — parse them, so a typo
// in a scheme is an error instead of a socket file named "tcp:…".
impl From<&Path> for Endpoint {
    fn from(path: &Path) -> Self {
        Endpoint::Unix(path.to_path_buf())
    }
}

impl From<PathBuf> for Endpoint {
    fn from(path: PathBuf) -> Self {
        Endpoint::Unix(path)
    }
}

impl From<&PathBuf> for Endpoint {
    fn from(path: &PathBuf) -> Self {
        Endpoint::Unix(path.clone())
    }
}

impl From<&Endpoint> for Endpoint {
    fn from(endpoint: &Endpoint) -> Self {
        endpoint.clone()
    }
}

fn scheme_mismatch(transport: &str, endpoint: &Endpoint) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!(
            "{transport} transport cannot use {endpoint} (scheme '{}')",
            endpoint.scheme()
        ),
    )
}

/// A bidirectional byte stream a service connection runs over.
///
/// `try_clone` yields an independently owned handle to the *same*
/// connection (one side may read while the other writes — the service
/// splits every connection this way). `shutdown_read` half-closes:
/// a peer parked in a blocking read on the other handle wakes with EOF,
/// while writes on this connection keep working — the primitive behind
/// the service's shutdown drain.
pub trait Stream: Read + Write + Send + Sized + 'static {
    /// A second owned handle to the same underlying connection.
    fn try_clone(&self) -> io::Result<Self>;

    /// Close the read half only; in-flight writes continue.
    fn shutdown_read(&self) -> io::Result<()>;

    /// Switch the connection between blocking and nonblocking I/O.
    ///
    /// In nonblocking mode `read`/`write` return
    /// [`io::ErrorKind::WouldBlock`] instead of parking the calling
    /// thread — the mode every stream registered with the reactor
    /// ([`crate::reactor`]) runs in. The mode is a property of the
    /// connection, not the handle: it applies to clones too.
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;

    /// The transport-level readiness identity of this connection (the
    /// raw descriptor number on unix targets). See [`ReadinessToken`].
    fn readiness_token(&self) -> ReadinessToken;
}

/// Accepts inbound [`Stream`]s for one bound endpoint.
pub trait Listener: Send + Sync + Sized + 'static {
    /// The stream type this listener produces.
    type Stream: Stream;

    /// Block until a peer connects.
    fn accept(&self) -> io::Result<Self::Stream>;

    /// The *resolved* local endpoint, faithful to the bind: port 0
    /// becomes the real port, but a wildcard host (`0.0.0.0`/`::`)
    /// stays a wildcard — this is the address to report to operators
    /// ("listening on all interfaces"), not necessarily one to dial.
    fn local_endpoint(&self) -> &Endpoint;

    /// An endpoint *this host* can dial to reach the listener: like
    /// [`local_endpoint`](Listener::local_endpoint), but with a
    /// wildcard host replaced by a loopback literal. This is what the
    /// service's shutdown self-dial uses; for listeners whose local
    /// endpoint is already dialable (unix paths, concrete hosts) the
    /// two are the same, which the default method reflects.
    fn dial_endpoint(&self) -> &Endpoint {
        self.local_endpoint()
    }

    /// Release any on-disk artifacts of the bind (the Unix listener's
    /// socket file). Called by the service after the drain; a no-op for
    /// transports without filesystem residue.
    fn cleanup(&self) {}
}

/// A connection-oriented transport: how to bind a [`Listener`] and how
/// to dial a [`Stream`], given an [`Endpoint`] of the matching scheme.
///
/// Implementations reject endpoints of a foreign scheme with
/// [`io::ErrorKind::InvalidInput`]; [`AnyTransport`] instead dispatches
/// on the scheme, which is what CLI surfaces use.
pub trait Transport: Send + Sync + 'static {
    /// The stream both sides of a connection hold.
    type Stream: Stream;
    /// The listening half.
    type Listener: Listener<Stream = Self::Stream>;

    /// Bind `endpoint` and start listening.
    fn bind(endpoint: &Endpoint) -> io::Result<Self::Listener>;

    /// Dial a listening `endpoint`.
    fn connect(endpoint: &Endpoint) -> io::Result<Self::Stream>;
}

// ---------------------------------------------------------------------
// Unix-domain sockets
// ---------------------------------------------------------------------

/// [`Transport`] over `AF_UNIX` sockets — the single-host default.
///
/// Binding removes a stale *socket* file at the path first (the daemon
/// owns its path; a previous incarnation that died without cleanup
/// leaves one behind), and [`Listener::cleanup`] removes the file
/// again after shutdown. A non-socket file at the path is **refused**,
/// never deleted — a mistyped path must not cost data.
#[cfg(unix)]
#[derive(Debug)]
pub struct UnixTransport;

/// [`UnixTransport`]'s listening half: the socket plus the path it owns.
#[cfg(unix)]
#[derive(Debug)]
pub struct UnixTransportListener {
    inner: UnixListener,
    local: Endpoint,
    path: PathBuf,
}

#[cfg(unix)]
impl Stream for UnixStream {
    fn try_clone(&self) -> io::Result<Self> {
        UnixStream::try_clone(self)
    }

    fn shutdown_read(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Read)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        UnixStream::set_nonblocking(self, nonblocking)
    }

    fn readiness_token(&self) -> ReadinessToken {
        ReadinessToken(self.as_raw_fd() as u64)
    }
}

#[cfg(unix)]
impl Listener for UnixTransportListener {
    type Stream = UnixStream;

    fn accept(&self) -> io::Result<Self::Stream> {
        self.inner.accept().map(|(stream, _)| stream)
    }

    fn local_endpoint(&self) -> &Endpoint {
        &self.local
    }

    fn cleanup(&self) {
        std::fs::remove_file(&self.path).ok();
    }
}

#[cfg(unix)]
impl Transport for UnixTransport {
    type Stream = UnixStream;
    type Listener = UnixTransportListener;

    fn bind(endpoint: &Endpoint) -> io::Result<Self::Listener> {
        let Endpoint::Unix(path) = endpoint else {
            return Err(scheme_mismatch("unix", endpoint));
        };
        // Replace only a *socket* left behind by a previous daemon.
        // Anything else at the path (a mistyped --listen pointing at a
        // data file, say) is not ours to delete — refuse loudly.
        if let Ok(metadata) = std::fs::symlink_metadata(path) {
            use std::os::unix::fs::FileTypeExt;
            if !metadata.file_type().is_socket() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!(
                        "{}: refusing to replace an existing non-socket file with a \
                         listener (remove it yourself if that is really the intent)",
                        path.display()
                    ),
                ));
            }
            std::fs::remove_file(path)?;
        }
        Ok(UnixTransportListener {
            inner: UnixListener::bind(path)?,
            local: endpoint.clone(),
            path: path.clone(),
        })
    }

    fn connect(endpoint: &Endpoint) -> io::Result<Self::Stream> {
        let Endpoint::Unix(path) = endpoint else {
            return Err(scheme_mismatch("unix", endpoint));
        };
        UnixStream::connect(path)
    }
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// How long a TCP dial may take before [`TcpTransport::connect`] gives
/// up on an address. An unreachable fleet host (powered off, firewall
/// dropping SYNs) must fail in seconds, not the OS retry window (~2
/// minutes), or one sick host would stall an entire fleet campaign.
pub const TCP_CONNECT_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

/// [`Transport`] over TCP — the fleet transport, for daemons and shard
/// workers on other hosts.
///
/// `TCP_NODELAY` is set on every stream (the protocol is small
/// newline-framed lines; Nagle buffering would serialize the streamed
/// `unit` responses behind artificial latency), and dials are bounded
/// by [`TCP_CONNECT_TIMEOUT`]. Reads are *not* bounded — a `run` over
/// a big spec legitimately streams for a long time.
#[derive(Debug)]
pub struct TcpTransport;

/// [`TcpTransport`]'s listening half, carrying the resolved local
/// endpoint (real port for `:0` binds) and its self-dialable form
/// (loopback for wildcard hosts).
#[derive(Debug)]
pub struct TcpTransportListener {
    inner: TcpListener,
    local: Endpoint,
    dial: Endpoint,
}

impl Stream for TcpStream {
    fn try_clone(&self) -> io::Result<Self> {
        TcpStream::try_clone(self)
    }

    fn shutdown_read(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Read)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        TcpStream::set_nonblocking(self, nonblocking)
    }

    fn readiness_token(&self) -> ReadinessToken {
        #[cfg(unix)]
        {
            ReadinessToken(self.as_raw_fd() as u64)
        }
        #[cfg(not(unix))]
        {
            ReadinessToken(0)
        }
    }
}

impl Listener for TcpTransportListener {
    type Stream = TcpStream;

    fn accept(&self) -> io::Result<Self::Stream> {
        let (stream, _) = self.inner.accept()?;
        stream.set_nodelay(true).ok();
        Ok(stream)
    }

    fn local_endpoint(&self) -> &Endpoint {
        &self.local
    }

    fn dial_endpoint(&self) -> &Endpoint {
        &self.dial
    }
}

/// `host:port` for a socket address, bracketing IPv6 literals.
fn tcp_authority(ip: &std::net::IpAddr, port: u16) -> String {
    if ip.is_ipv6() {
        format!("[{ip}]:{port}")
    } else {
        format!("{ip}:{port}")
    }
}

impl Transport for TcpTransport {
    type Stream = TcpStream;
    type Listener = TcpTransportListener;

    fn bind(endpoint: &Endpoint) -> io::Result<Self::Listener> {
        let Endpoint::Tcp(authority) = endpoint else {
            return Err(scheme_mismatch("tcp", endpoint));
        };
        let inner = TcpListener::bind(authority.as_str())?;
        let addr = inner.local_addr()?;
        // `local` is faithful to the bind (a wildcard stays a wildcard —
        // the operator should see "listening on all interfaces"), while
        // `dial` is an address this host can actually connect to, which
        // for a wildcard bind means loopback.
        let dial_ip: std::net::IpAddr = if addr.ip().is_unspecified() {
            if addr.is_ipv6() {
                std::net::Ipv6Addr::LOCALHOST.into()
            } else {
                std::net::Ipv4Addr::LOCALHOST.into()
            }
        } else {
            addr.ip()
        };
        Ok(TcpTransportListener {
            inner,
            local: Endpoint::Tcp(tcp_authority(&addr.ip(), addr.port())),
            dial: Endpoint::Tcp(tcp_authority(&dial_ip, addr.port())),
        })
    }

    fn connect(endpoint: &Endpoint) -> io::Result<Self::Stream> {
        use std::net::ToSocketAddrs;
        let Endpoint::Tcp(authority) = endpoint else {
            return Err(scheme_mismatch("tcp", endpoint));
        };
        // Bounded dial (see [`TCP_CONNECT_TIMEOUT`]): try every resolved
        // address, return the last failure if none answers.
        let mut last: Option<io::Error> = None;
        for addr in authority.as_str().to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, TCP_CONNECT_TIMEOUT) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    return Ok(stream);
                }
                Err(error) => last = Some(error),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                format!("{authority}: resolved to no addresses"),
            )
        }))
    }
}

// ---------------------------------------------------------------------
// Runtime scheme dispatch
// ---------------------------------------------------------------------

/// [`Transport`] that picks [`UnixTransport`] or [`TcpTransport`] from
/// the endpoint's scheme at runtime — the transport behind `--listen`
/// and `--fleet` flags, where the scheme arrives as user input.
#[derive(Debug)]
pub struct AnyTransport;

/// [`AnyTransport`]'s stream: whichever concrete stream the endpoint's
/// scheme produced.
#[derive(Debug)]
pub enum AnyStream {
    /// An `AF_UNIX` connection.
    #[cfg(unix)]
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

/// [`AnyTransport`]'s listener: whichever concrete listener the
/// endpoint's scheme produced.
#[derive(Debug)]
pub enum AnyListener {
    /// A bound Unix-domain socket.
    #[cfg(unix)]
    Unix(UnixTransportListener),
    /// A bound TCP socket.
    Tcp(TcpTransportListener),
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(stream) => stream.read(buf),
            AnyStream::Tcp(stream) => stream.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(stream) => stream.write(buf),
            AnyStream::Tcp(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(stream) => stream.flush(),
            AnyStream::Tcp(stream) => stream.flush(),
        }
    }
}

impl Stream for AnyStream {
    fn try_clone(&self) -> io::Result<Self> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(stream) => UnixStream::try_clone(stream).map(AnyStream::Unix),
            AnyStream::Tcp(stream) => TcpStream::try_clone(stream).map(AnyStream::Tcp),
        }
    }

    fn shutdown_read(&self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(stream) => stream.shutdown_read(),
            AnyStream::Tcp(stream) => Stream::shutdown_read(stream),
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(stream) => Stream::set_nonblocking(stream, nonblocking),
            AnyStream::Tcp(stream) => Stream::set_nonblocking(stream, nonblocking),
        }
    }

    fn readiness_token(&self) -> ReadinessToken {
        match self {
            #[cfg(unix)]
            AnyStream::Unix(stream) => stream.readiness_token(),
            AnyStream::Tcp(stream) => stream.readiness_token(),
        }
    }
}

impl Listener for AnyListener {
    type Stream = AnyStream;

    fn accept(&self) -> io::Result<Self::Stream> {
        match self {
            #[cfg(unix)]
            AnyListener::Unix(listener) => listener.accept().map(AnyStream::Unix),
            AnyListener::Tcp(listener) => listener.accept().map(AnyStream::Tcp),
        }
    }

    fn local_endpoint(&self) -> &Endpoint {
        match self {
            #[cfg(unix)]
            AnyListener::Unix(listener) => listener.local_endpoint(),
            AnyListener::Tcp(listener) => listener.local_endpoint(),
        }
    }

    fn dial_endpoint(&self) -> &Endpoint {
        match self {
            #[cfg(unix)]
            AnyListener::Unix(listener) => listener.dial_endpoint(),
            AnyListener::Tcp(listener) => listener.dial_endpoint(),
        }
    }

    fn cleanup(&self) {
        match self {
            #[cfg(unix)]
            AnyListener::Unix(listener) => listener.cleanup(),
            AnyListener::Tcp(listener) => listener.cleanup(),
        }
    }
}

impl Transport for AnyTransport {
    type Stream = AnyStream;
    type Listener = AnyListener;

    fn bind(endpoint: &Endpoint) -> io::Result<Self::Listener> {
        match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(_) => UnixTransport::bind(endpoint).map(AnyListener::Unix),
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("{endpoint}: unix sockets are unavailable on this platform"),
            )),
            Endpoint::Tcp(_) => TcpTransport::bind(endpoint).map(AnyListener::Tcp),
        }
    }

    fn connect(endpoint: &Endpoint) -> io::Result<Self::Stream> {
        match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(_) => UnixTransport::connect(endpoint).map(AnyStream::Unix),
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("{endpoint}: unix sockets are unavailable on this platform"),
            )),
            Endpoint::Tcp(_) => TcpTransport::connect(endpoint).map(AnyStream::Tcp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_parse_and_display_exactly() {
        for text in [
            "unix:/tmp/oranges.sock",
            "unix:relative/path.sock",
            "tcp:127.0.0.1:7771",
            "tcp:node-a.local:0",
            "tcp:[::1]:65535",
        ] {
            let endpoint: Endpoint = text.parse().expect(text);
            assert_eq!(endpoint.to_string(), text, "round trip");
        }
        assert_eq!(
            "unix:/a/b".parse::<Endpoint>().unwrap(),
            Endpoint::Unix(PathBuf::from("/a/b"))
        );
        assert_eq!(
            "tcp:[::1]:80".parse::<Endpoint>().unwrap(),
            Endpoint::Tcp("[::1]:80".to_string())
        );
    }

    #[test]
    fn malformed_endpoints_are_rejected_with_context() {
        for (bad, want) in [
            ("", "no scheme"),
            ("/tmp/plain-path.sock", "no scheme"),
            ("udp:1.2.3.4:5", "no scheme"),
            ("unix:", "empty path"),
            ("tcp:", "needs host:port"),
            ("tcp:hostonly", "needs host:port"),
            ("tcp::7771", "empty host"),
            ("tcp:host:notaport", "bad port"),
            ("tcp:host:65536", "bad port"),
            ("tcp:host:-1", "bad port"),
        ] {
            let error = bad.parse::<Endpoint>().expect_err(bad);
            assert!(error.to_string().contains(want), "{bad}: {error}");
        }
    }

    #[test]
    fn schemes_and_path_conversions() {
        assert_eq!(Endpoint::Unix(PathBuf::from("/x")).scheme(), "unix");
        assert_eq!(Endpoint::Tcp("h:1".into()).scheme(), "tcp");
        let from_path: Endpoint = Path::new("/tmp/a.sock").into();
        assert_eq!(from_path, Endpoint::Unix(PathBuf::from("/tmp/a.sock")));
        let from_buf: Endpoint = PathBuf::from("/tmp/b.sock").into();
        assert_eq!(from_buf.to_string(), "unix:/tmp/b.sock");
    }

    #[test]
    fn tcp_bind_resolves_port_zero_to_a_dialable_endpoint() {
        let listener = TcpTransport::bind(&"tcp:127.0.0.1:0".parse().unwrap()).expect("bind");
        let Endpoint::Tcp(authority) = listener.local_endpoint().clone() else {
            panic!("tcp listener must report a tcp endpoint");
        };
        let port: u16 = authority.rsplit_once(':').unwrap().1.parse().unwrap();
        assert_ne!(port, 0, "port 0 resolved to the real port");
        // The resolved endpoint is genuinely dialable.
        let _client = TcpTransport::connect(listener.local_endpoint()).expect("dialable");
    }

    #[test]
    fn wildcard_binds_stay_faithful_but_dial_as_loopback() {
        let listener = TcpTransport::bind(&"tcp:0.0.0.0:0".parse().unwrap()).expect("bind");
        // The reported endpoint tells the truth: all interfaces.
        let local = listener.local_endpoint().to_string();
        assert!(local.starts_with("tcp:0.0.0.0:"), "{local}");
        assert!(!local.ends_with(":0"), "port resolved");
        // The dial form is something this host can actually connect to.
        let dial = listener.dial_endpoint().to_string();
        assert!(dial.starts_with("tcp:127.0.0.1:"), "{dial}");
        let _client = TcpTransport::connect(listener.dial_endpoint()).expect("self-dialable");
        // Concrete-host binds dial as themselves.
        let concrete = TcpTransport::bind(&"tcp:127.0.0.1:0".parse().unwrap()).expect("bind");
        assert_eq!(concrete.local_endpoint(), concrete.dial_endpoint());
    }

    #[test]
    fn tcp_connects_to_closed_ports_fail_fast_with_io_errors() {
        // Reserve a port, close it, dial it: loopback refuses instantly
        // (well inside TCP_CONNECT_TIMEOUT) instead of hanging.
        let vacant = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("reserve");
            let port = listener.local_addr().expect("addr").port();
            drop(listener);
            format!("tcp:127.0.0.1:{port}").parse::<Endpoint>().unwrap()
        };
        let started = std::time::Instant::now();
        let error = TcpTransport::connect(&vacant).expect_err("nobody listening");
        assert!(started.elapsed() < TCP_CONNECT_TIMEOUT, "failed fast");
        assert_ne!(error.kind(), io::ErrorKind::InvalidInput, "{error}");
    }

    #[test]
    fn scheme_mismatches_are_invalid_input() {
        let tcp = "tcp:127.0.0.1:1".parse().unwrap();
        let unix = "unix:/tmp/never-bound.sock".parse().unwrap();
        for error in [
            TcpTransport::bind(&unix).expect_err("tcp cannot bind unix"),
            TcpTransport::connect(&unix).expect_err("tcp cannot dial unix"),
            #[cfg(unix)]
            UnixTransport::bind(&tcp).expect_err("unix cannot bind tcp"),
            #[cfg(unix)]
            UnixTransport::connect(&tcp).expect_err("unix cannot dial tcp"),
        ] {
            assert_eq!(error.kind(), io::ErrorKind::InvalidInput, "{error}");
        }
    }

    /// The contract the service's drain depends on: after
    /// `shutdown_read` on the server-held handle, a blocked read wakes
    /// with EOF while the write half still delivers.
    fn read_half_shutdown_contract<T: Transport>(endpoint: &Endpoint) {
        let listener = T::bind(endpoint).expect("bind");
        let local = listener.local_endpoint().clone();
        let server = std::thread::spawn(move || {
            let stream = listener.accept().expect("accept");
            let reader = stream.try_clone().expect("clone");
            stream.shutdown_read().expect("half-close");
            // The read half is gone: a read on *either* handle sees EOF…
            let mut buffer = [0u8; 8];
            let mut reader = reader;
            assert_eq!(reader.read(&mut buffer).expect("read after shutdown"), 0);
            // …but the write half still works.
            let mut writer = stream;
            writer
                .write_all(b"still-on\n")
                .expect("write after shutdown");
        });
        let mut client = T::connect(&local).expect("connect");
        let mut line = Vec::new();
        client.read_to_end(&mut line).expect("read response");
        assert_eq!(line, b"still-on\n");
        server.join().expect("server thread");
    }

    #[test]
    fn tcp_read_half_shutdown_keeps_the_write_half() {
        read_half_shutdown_contract::<TcpTransport>(&"tcp:127.0.0.1:0".parse().unwrap());
    }

    /// The contract the reactor depends on: in nonblocking mode a read
    /// from a silent peer returns `WouldBlock` instead of parking, data
    /// that has arrived is still readable, and readiness tokens are
    /// stable per connection and distinct across connections.
    fn nonblocking_readiness_contract<T: Transport>(endpoint: &Endpoint) {
        let listener = T::bind(endpoint).expect("bind");
        let dial = listener.dial_endpoint().clone();
        let mut client = T::connect(&dial).expect("connect");
        let mut server = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking mode");

        let mut buffer = [0u8; 8];
        let error = server.read(&mut buffer).expect_err("peer is silent");
        assert_eq!(error.kind(), io::ErrorKind::WouldBlock, "{error}");

        assert_eq!(server.readiness_token(), server.readiness_token());
        assert_ne!(server.readiness_token(), client.readiness_token());

        client.write_all(b"x").expect("send");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match server.read(&mut buffer) {
                Ok(n) => {
                    assert_eq!(&buffer[..n], b"x");
                    break;
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                    assert!(std::time::Instant::now() < deadline, "byte never arrived");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(error) => panic!("nonblocking read failed: {error}"),
            }
        }
        listener.cleanup();
    }

    #[test]
    fn tcp_nonblocking_reads_would_block_instead_of_parking() {
        nonblocking_readiness_contract::<TcpTransport>(&"tcp:127.0.0.1:0".parse().unwrap());
    }

    #[cfg(unix)]
    #[test]
    fn unix_nonblocking_reads_would_block_instead_of_parking() {
        let path = std::env::temp_dir().join(format!(
            "oranges-transport-nonblock-{}.sock",
            std::process::id()
        ));
        nonblocking_readiness_contract::<UnixTransport>(&Endpoint::Unix(path.clone()));
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn unix_read_half_shutdown_keeps_the_write_half() {
        let path = std::env::temp_dir().join(format!(
            "oranges-transport-halfclose-{}.sock",
            std::process::id()
        ));
        read_half_shutdown_contract::<UnixTransport>(&Endpoint::Unix(path.clone()));
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn unix_bind_replaces_stale_socket_files_and_cleanup_removes_them() {
        let path = std::env::temp_dir().join(format!(
            "oranges-transport-stale-{}.sock",
            std::process::id()
        ));
        let endpoint = Endpoint::Unix(path.clone());
        // A stale socket file from a daemon that died without cleanup…
        drop(UnixTransport::bind(&endpoint).expect("first bind"));
        assert!(path.exists(), "socket file left behind");
        // …is silently replaced by the next bind.
        let listener = UnixTransport::bind(&endpoint).expect("bind over stale socket");
        assert!(path.exists(), "socket file exists while bound");
        listener.cleanup();
        assert!(!path.exists(), "cleanup removes the socket file");
    }

    #[cfg(unix)]
    #[test]
    fn unix_bind_refuses_to_delete_non_socket_files() {
        let path = std::env::temp_dir().join(format!(
            "oranges-transport-precious-{}.txt",
            std::process::id()
        ));
        std::fs::write(&path, b"precious data").expect("plant a regular file");
        let error = UnixTransport::bind(&Endpoint::Unix(path.clone()))
            .expect_err("a regular file at the path is not ours to delete");
        assert_eq!(error.kind(), io::ErrorKind::AlreadyExists, "{error}");
        assert_eq!(
            std::fs::read(&path).expect("still readable"),
            b"precious data",
            "file untouched"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn any_transport_dispatches_on_scheme() {
        // TCP through the Any layer.
        let listener = AnyTransport::bind(&"tcp:127.0.0.1:0".parse().unwrap()).expect("bind tcp");
        assert_eq!(listener.local_endpoint().scheme(), "tcp");
        let local = listener.local_endpoint().clone();
        let server = std::thread::spawn(move || {
            let mut stream = listener.accept().expect("accept");
            let mut byte = [0u8; 1];
            stream.read_exact(&mut byte).expect("read");
            stream.write_all(&byte).expect("echo");
        });
        let mut client = local.connect().expect("Endpoint::connect dials");
        client.write_all(b"A").expect("send");
        let mut back = [0u8; 1];
        client.read_exact(&mut back).expect("recv");
        assert_eq!(&back, b"A");
        server.join().expect("server");

        // Unix through the Any layer.
        #[cfg(unix)]
        {
            let path = std::env::temp_dir()
                .join(format!("oranges-transport-any-{}.sock", std::process::id()));
            let listener = AnyTransport::bind(&Endpoint::Unix(path.clone())).expect("bind unix");
            assert_eq!(listener.local_endpoint().scheme(), "unix");
            let local = listener.local_endpoint().clone();
            let server = std::thread::spawn(move || {
                let mut stream = listener.accept().expect("accept");
                let mut byte = [0u8; 1];
                stream.read_exact(&mut byte).expect("read");
                stream.write_all(&byte).expect("echo");
                listener.cleanup();
            });
            let mut client = AnyTransport::connect(&local).expect("connect");
            client.write_all(b"U").expect("send");
            let mut back = [0u8; 1];
            client.read_exact(&mut back).expect("recv");
            assert_eq!(&back, b"U");
            server.join().expect("server");
        }
    }
}
