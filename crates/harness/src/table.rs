//! Aligned text tables (the rendering engine behind Tables 1–3).

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A text table builder.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a header row (all columns left-aligned; adjust
    /// with [`TextTable::align`]).
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; header.len()];
        TextTable {
            header,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Set one column's alignment.
    pub fn align(mut self, column: usize, align: Align) -> Self {
        if column < self.aligns.len() {
            self.aligns[column] = align;
        }
        self
    }

    /// Right-align every column except the first.
    pub fn numeric(mut self) -> Self {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Append a row (short rows are padded with empty cells; long rows are
    /// truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column separators and a header rule.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row =
            |out: &mut String, cells: &[String], widths: &[usize], aligns: &[Align]| {
                let mut parts = Vec::with_capacity(cells.len());
                for ((cell, width), align) in cells.iter().zip(widths).zip(aligns) {
                    let pad = width - cell.chars().count();
                    match align {
                        Align::Left => parts.push(format!("{cell}{}", " ".repeat(pad))),
                        Align::Right => parts.push(format!("{}{cell}", " ".repeat(pad))),
                    }
                }
                writeln!(out, "| {} |", parts.join(" | ")).unwrap();
            };
        render_row(&mut out, &self.header, &widths, &self.aligns);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(out, "|-{}-|", rule.join("-|-")).unwrap();
        for row in &self.rows {
            render_row(&mut out, row, &widths, &self.aligns);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Feature", "M1", "M2"]).numeric();
        t.row(vec!["Cores", "8", "8"]);
        t.row(vec!["Bandwidth (GB/s)", "67", "100"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "{text}");
        assert!(text.contains("| Feature"));
        assert!(text.contains("100 |"));
    }

    #[test]
    fn numeric_right_aligns() {
        let mut t = TextTable::new(vec!["k", "v"]).numeric();
        t.row(vec!["a", "1"]);
        t.row(vec!["b", "100"]);
        let text = t.render();
        assert!(text.contains("|   1 |"), "{text}");
    }

    #[test]
    fn short_rows_pad() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let text = t.render();
        assert!(text.lines().count() == 3);
    }

    #[test]
    fn unicode_widths_counted_by_chars() {
        let mut t = TextTable::new(vec!["η", "值"]);
        t.row(vec!["0.85", "x"]);
        let text = t.render();
        assert!(text.contains("0.85"));
    }
}
