//! Serializable run records — the campaign subsystem's lingua franca.
//!
//! Every experiment cell flattens to a [`RunRecord`]: one named metric of
//! one (experiment, chip, implementation, size) coordinate. Records are
//! `Serialize + PartialEq`, so campaign results can be emitted through the
//! CSV/JSON writers *and* compared value-for-value across runs (the
//! concurrent-equals-serial guarantee is checked over them).

use crate::csv::CsvWriter;
use crate::json::{to_json_string, JsonError};
use serde::Serialize;

/// One metric of one experiment cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunRecord {
    /// Paper artifact id (`"fig1"`, `"fig2"`, … or an extension id).
    pub experiment: String,
    /// Chip label (`"M1"`…), if the cell is chip-scoped.
    pub chip: Option<String>,
    /// Implementation legend name, if the cell is implementation-scoped.
    pub implementation: Option<String>,
    /// Problem size, if the cell is size-scoped.
    pub n: Option<u64>,
    /// Metric name (`"gbs"`, `"gflops"`, `"power_mw"`, …).
    pub metric: String,
    /// Metric value.
    pub value: f64,
    /// Unit label (`"GB/s"`, `"GFLOPS"`, `"mW"`, …).
    pub unit: String,
}

impl RunRecord {
    /// A record scoped only by experiment.
    pub fn global(experiment: &str, metric: &str, value: f64, unit: &str) -> Self {
        RunRecord {
            experiment: experiment.to_string(),
            chip: None,
            implementation: None,
            n: None,
            metric: metric.to_string(),
            value,
            unit: unit.to_string(),
        }
    }

    /// A chip-scoped record.
    pub fn for_chip(experiment: &str, chip: &str, metric: &str, value: f64, unit: &str) -> Self {
        RunRecord {
            chip: Some(chip.to_string()),
            ..RunRecord::global(experiment, metric, value, unit)
        }
    }

    /// Attach an implementation name.
    pub fn with_implementation(mut self, implementation: &str) -> Self {
        self.implementation = Some(implementation.to_string());
        self
    }

    /// Attach a problem size.
    pub fn with_n(mut self, n: u64) -> Self {
        self.n = Some(n);
        self
    }

    /// The deterministic sort key: (experiment, chip, implementation, n,
    /// metric). Value order inside an experiment never depends on worker
    /// interleaving once records are sorted by this.
    pub fn sort_key(&self) -> (String, String, String, u64, String) {
        (
            self.experiment.clone(),
            self.chip.clone().unwrap_or_default(),
            self.implementation.clone().unwrap_or_default(),
            self.n.unwrap_or(0),
            self.metric.clone(),
        )
    }
}

/// CSV of a record slice (`experiment,chip,implementation,n,metric,value,unit`).
pub fn records_to_csv(records: &[RunRecord]) -> String {
    let mut csv = CsvWriter::new(&[
        "experiment",
        "chip",
        "implementation",
        "n",
        "metric",
        "value",
        "unit",
    ]);
    for r in records {
        csv.row(&[
            r.experiment.clone(),
            r.chip.clone().unwrap_or_default(),
            r.implementation.clone().unwrap_or_default(),
            r.n.map(|n| n.to_string()).unwrap_or_default(),
            r.metric.clone(),
            format!("{:.6}", r.value),
            r.unit.clone(),
        ]);
    }
    csv.finish()
}

/// JSON array of a record slice.
pub fn records_to_json(records: &[RunRecord]) -> Result<String, JsonError> {
    to_json_string(&records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<RunRecord> {
        vec![
            RunRecord::for_chip("fig1", "M1", "gbs", 102.5, "GB/s").with_implementation("Triad"),
            RunRecord::for_chip("fig2", "M4", "gflops", 2900.0, "GFLOPS")
                .with_implementation("GPU-MPS")
                .with_n(16384),
            RunRecord::global("tables", "rows", 17.0, "rows"),
        ]
    }

    #[test]
    fn csv_shape() {
        let csv = records_to_csv(&sample());
        assert!(csv.starts_with("experiment,chip,implementation,n,metric,value,unit"));
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("fig2,M4,GPU-MPS,16384,gflops,2900.000000,GFLOPS"));
        assert!(csv.contains("tables,,,,rows,17.000000,rows"));
    }

    #[test]
    fn json_round_trips_fields() {
        let json = records_to_json(&sample()).unwrap();
        assert!(json.starts_with('['));
        assert!(json.contains(r#""experiment":"fig1""#));
        assert!(json.contains(r#""n":16384"#));
        assert!(json.contains(r#""chip":null"#));
    }

    #[test]
    fn sort_key_orders_cells_deterministically() {
        let mut records = sample();
        records.reverse();
        records.sort_by_key(|r| r.sort_key());
        assert_eq!(records[0].experiment, "fig1");
        assert_eq!(records.last().unwrap().experiment, "tables");
    }

    #[test]
    fn equality_is_value_identity() {
        assert_eq!(sample(), sample());
        let mut changed = sample();
        changed[0].value += 1e-9;
        assert_ne!(sample(), changed);
    }
}
