//! The unified measurement record — one typed currency from the
//! platform layer to the emitters.
//!
//! Every paper artifact is the same shape: (chip, experiment, params) →
//! {GFLOP/s, GB/s, watts, GFLOP/s/W, thermal state}. A [`MetricSet`] is
//! one coordinate of that grid: a provenance header (experiment id,
//! chip, parameter digest, wall-time, power/thermal context) plus the
//! typed, unit-carrying metrics measured there. Experiments return
//! `MetricSet`s; the campaign scheduler stamps wall-time into them; the
//! table/CSV/JSON emitters below consume them generically — no
//! per-figure row-building exists anywhere downstream.
//!
//! Serialization is lossless both ways: [`rows_to_csv`]/[`rows_from_csv`]
//! and [`sets_to_json`]/[`sets_from_json`] round-trip exactly (floats go
//! through the shortest-representation formatter), which is what makes
//! the disk-persistent result cache sound. Wall-time is deliberately
//! `#[serde(skip)]`ed: it varies run to run, and the campaign's
//! value-identity digest must not.

use crate::csv::{self, CsvWriter};
use crate::json::{self, to_json_string, JsonError, JsonValue};
use crate::table::TextTable;
use serde::Serialize;
use std::fmt;

/// A typed metric value.
///
/// JSON shape: `{"Float":1.5}`, `{"Int":3}`, `{"Bool":true}`,
/// `{"Text":"pass"}` (the serde newtype-variant convention).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum MetricValue {
    /// A real-valued measurement (finite; non-finite serializes as null
    /// and will not round-trip).
    Float(f64),
    /// A count or index.
    Int(i64),
    /// A verdict (e.g. functional verification).
    Bool(bool),
    /// A label (e.g. a thermal state name).
    Text(String),
}

impl MetricValue {
    /// Numeric projection: `Float` and `Int` values as `f64`, `Bool` as
    /// 0/1, `Text` as `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            MetricValue::Float(v) => Some(*v),
            MetricValue::Int(v) => Some(*v as f64),
            MetricValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            MetricValue::Text(_) => None,
        }
    }

    /// Lossless text rendering (floats via the shortest round-trip
    /// formatter — `"1.5"`, not `"1.500000"`).
    pub fn render(&self) -> String {
        match self {
            MetricValue::Float(v) => format!("{v}"),
            MetricValue::Int(v) => v.to_string(),
            MetricValue::Bool(b) => b.to_string(),
            MetricValue::Text(s) => s.clone(),
        }
    }

    /// The type tag used in the CSV `type` column.
    pub fn type_tag(&self) -> &'static str {
        match self {
            MetricValue::Float(_) => "float",
            MetricValue::Int(_) => "int",
            MetricValue::Bool(_) => "bool",
            MetricValue::Text(_) => "text",
        }
    }

    /// Parse a value back from its `(type_tag, render)` pair.
    pub fn from_tagged(tag: &str, text: &str) -> Result<Self, MetricParseError> {
        match tag {
            "float" => text
                .parse::<f64>()
                .map(MetricValue::Float)
                .map_err(|_| MetricParseError::new(format!("bad float '{text}'"))),
            "int" => text
                .parse::<i64>()
                .map(MetricValue::Int)
                .map_err(|_| MetricParseError::new(format!("bad int '{text}'"))),
            "bool" => text
                .parse::<bool>()
                .map(MetricValue::Bool)
                .map_err(|_| MetricParseError::new(format!("bad bool '{text}'"))),
            "text" => Ok(MetricValue::Text(text.to_string())),
            other => Err(MetricParseError::new(format!(
                "unknown value type '{other}'"
            ))),
        }
    }

    fn from_json(value: &JsonValue) -> Result<Self, MetricParseError> {
        let object = match value {
            JsonValue::Object(fields) if fields.len() == 1 => &fields[0],
            _ => {
                return Err(MetricParseError::new(
                    "metric value is not a variant object",
                ))
            }
        };
        match (object.0.as_str(), &object.1) {
            ("Float", JsonValue::Number(v)) => Ok(MetricValue::Float(v.as_f64())),
            ("Int", JsonValue::Number(v)) => v.as_i64().map(MetricValue::Int).ok_or_else(|| {
                MetricParseError::new(format!("Int value {v:?} is not an exact i64"))
            }),
            ("Bool", JsonValue::Bool(b)) => Ok(MetricValue::Bool(*b)),
            ("Text", JsonValue::String(s)) => Ok(MetricValue::Text(s.clone())),
            (variant, _) => Err(MetricParseError::new(format!(
                "bad metric value variant '{variant}'"
            ))),
        }
    }
}

impl From<f64> for MetricValue {
    fn from(v: f64) -> Self {
        MetricValue::Float(v)
    }
}

impl From<i64> for MetricValue {
    fn from(v: i64) -> Self {
        MetricValue::Int(v)
    }
}

impl From<bool> for MetricValue {
    fn from(v: bool) -> Self {
        MetricValue::Bool(v)
    }
}

impl From<&str> for MetricValue {
    fn from(v: &str) -> Self {
        MetricValue::Text(v.to_string())
    }
}

/// One named, unit-carrying measurement.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Metric {
    /// Metric name (`"gbs"`, `"gflops"`, `"power_mw"`, …).
    pub name: String,
    /// Typed value.
    pub value: MetricValue,
    /// Unit label (`"GB/s"`, `"GFLOPS"`, `"mW"`, …). Never empty — the
    /// constructors enforce it, so emitters can never drop a unit.
    pub unit: String,
}

impl Metric {
    /// Build a metric; panics on an empty name or unit (a unit-less
    /// number is a bug at the producer, not something to discover in a
    /// report).
    pub fn new(name: &str, value: impl Into<MetricValue>, unit: &str) -> Self {
        assert!(!name.is_empty(), "metric name must not be empty");
        assert!(!unit.is_empty(), "metric '{name}' must carry a unit label");
        Metric {
            name: name.to_string(),
            value: value.into(),
            unit: unit.to_string(),
        }
    }
}

/// Power/thermal context captured over the same window as the metrics it
/// accompanies — the provenance that makes a cross-chip efficiency claim
/// checkable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PowerContext {
    /// Window-averaged package power, watts.
    pub package_watts: f64,
    /// Energy over the window, joules.
    pub energy_j: f64,
    /// Measurement window, seconds.
    pub window_s: f64,
    /// DVFS cap at measurement time (1.0 = thermally nominal; below 1.0
    /// the chip was throttled).
    pub dvfs_cap: f64,
}

impl PowerContext {
    /// Whether the chip was thermally throttled during the window.
    pub fn throttled(&self) -> bool {
        self.dvfs_cap < 1.0
    }
}

/// Where a [`MetricSet`]'s numbers came from.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Provenance {
    /// Paper artifact id (`"fig1"`, …, or an extension id).
    pub experiment: String,
    /// Chip label (`"M1"`…) for chip-scoped measurements.
    pub chip: Option<String>,
    /// The producing experiment's full parameter digest — the same
    /// string the result cache keys on.
    pub params: String,
    /// Wall-clock seconds the producing unit took, stamped by the
    /// campaign scheduler. Excluded from serialization: wall-time varies
    /// run to run and must not perturb value-identity digests; the cache
    /// persists it out-of-band.
    #[serde(skip)]
    pub wall_time_s: Option<f64>,
    /// Power/thermal context of the measurement window, where measured.
    pub power: Option<PowerContext>,
}

/// One coordinate of an experiment grid: provenance + the typed metrics
/// measured there.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricSet {
    /// Measurement provenance.
    pub provenance: Provenance,
    /// Implementation legend name, if the coordinate is
    /// implementation-scoped.
    pub implementation: Option<String>,
    /// Problem size, if the coordinate is size-scoped.
    pub n: Option<u64>,
    /// The measurements, in producer order.
    pub metrics: Vec<Metric>,
}

impl MetricSet {
    /// A chip-independent set.
    pub fn new(experiment: &str, params: &str) -> Self {
        MetricSet {
            provenance: Provenance {
                experiment: experiment.to_string(),
                chip: None,
                params: params.to_string(),
                wall_time_s: None,
                power: None,
            },
            implementation: None,
            n: None,
            metrics: Vec::new(),
        }
    }

    /// A chip-scoped set.
    pub fn for_chip(experiment: &str, params: &str, chip: &str) -> Self {
        let mut set = MetricSet::new(experiment, params);
        set.provenance.chip = Some(chip.to_string());
        set
    }

    /// Attach an implementation name.
    pub fn with_implementation(mut self, implementation: &str) -> Self {
        self.implementation = Some(implementation.to_string());
        self
    }

    /// Attach a problem size.
    pub fn with_n(mut self, n: u64) -> Self {
        self.n = Some(n);
        self
    }

    /// Attach the power/thermal context of the measurement window.
    pub fn with_power(mut self, power: PowerContext) -> Self {
        self.provenance.power = Some(power);
        self
    }

    /// Append a metric (builder form).
    pub fn metric(mut self, name: &str, value: impl Into<MetricValue>, unit: &str) -> Self {
        self.metrics.push(Metric::new(name, value, unit));
        self
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Numeric value of a metric by name.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(|m| m.value.as_f64())
    }

    /// The deterministic sort key: (experiment, chip, implementation, n).
    pub fn sort_key(&self) -> (String, String, String, u64) {
        (
            self.provenance.experiment.clone(),
            self.provenance.chip.clone().unwrap_or_default(),
            self.implementation.clone().unwrap_or_default(),
            self.n.unwrap_or(0),
        )
    }

    /// Flatten to one row per metric.
    pub fn rows(&self) -> Vec<MetricRow> {
        self.metrics
            .iter()
            .map(|m| MetricRow {
                experiment: self.provenance.experiment.clone(),
                chip: self.provenance.chip.clone(),
                implementation: self.implementation.clone(),
                n: self.n,
                metric: m.name.clone(),
                value: m.value.clone(),
                unit: m.unit.clone(),
            })
            .collect()
    }
}

impl fmt::Display for MetricSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]",
            self.provenance.experiment, self.provenance.params
        )?;
        if let Some(implementation) = &self.implementation {
            write!(f, " {implementation}")?;
        }
        if let Some(n) = self.n {
            write!(f, " n={n}")?;
        }
        write!(f, ": {} metrics", self.metrics.len())
    }
}

/// One flattened (coordinate, metric) cell — what the CSV/JSON/table
/// emitters iterate over.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricRow {
    /// Paper artifact id.
    pub experiment: String,
    /// Chip label, if chip-scoped.
    pub chip: Option<String>,
    /// Implementation legend name, if implementation-scoped.
    pub implementation: Option<String>,
    /// Problem size, if size-scoped.
    pub n: Option<u64>,
    /// Metric name.
    pub metric: String,
    /// Typed value.
    pub value: MetricValue,
    /// Unit label.
    pub unit: String,
}

impl MetricRow {
    /// The deterministic sort key: (experiment, chip, implementation, n,
    /// metric). Row order never depends on worker interleaving once
    /// sorted by this.
    pub fn sort_key(&self) -> (String, String, String, u64, String) {
        (
            self.experiment.clone(),
            self.chip.clone().unwrap_or_default(),
            self.implementation.clone().unwrap_or_default(),
            self.n.unwrap_or(0),
            self.metric.clone(),
        )
    }

    /// Numeric projection of the value.
    pub fn value_f64(&self) -> Option<f64> {
        self.value.as_f64()
    }
}

/// Flatten a slice of sets into rows, preserving set and metric order.
pub fn rows(sets: &[MetricSet]) -> Vec<MetricRow> {
    sets.iter().flat_map(MetricSet::rows).collect()
}

/// CSV header of the flat row emitters.
pub const CSV_HEADER: [&str; 8] = [
    "experiment",
    "chip",
    "implementation",
    "n",
    "metric",
    "type",
    "value",
    "unit",
];

/// CSV of a row slice. Lossless: typed values carry a `type` column and
/// floats use the shortest round-trip rendering, so [`rows_from_csv`]
/// reconstructs the input exactly.
pub fn rows_to_csv(rows: &[MetricRow]) -> String {
    let mut writer = CsvWriter::new(&CSV_HEADER);
    for row in rows {
        writer.row(&[
            row.experiment.clone(),
            row.chip.clone().unwrap_or_default(),
            row.implementation.clone().unwrap_or_default(),
            row.n.map(|n| n.to_string()).unwrap_or_default(),
            row.metric.clone(),
            row.value.type_tag().to_string(),
            row.value.render(),
            row.unit.clone(),
        ]);
    }
    writer.finish()
}

/// Failure to reconstruct typed records from CSV or JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricParseError(String);

impl MetricParseError {
    fn new(message: impl Into<String>) -> Self {
        MetricParseError(message.into())
    }
}

impl fmt::Display for MetricParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metric parse error: {}", self.0)
    }
}

impl std::error::Error for MetricParseError {}

impl From<json::JsonParseError> for MetricParseError {
    fn from(e: json::JsonParseError) -> Self {
        MetricParseError(e.to_string())
    }
}

/// Parse rows back from [`rows_to_csv`] output. Empty `chip` /
/// `implementation` / `n` cells become `None` (the writer emits them
/// that way, so `Some("")` never occurs in practice).
pub fn rows_from_csv(text: &str) -> Result<Vec<MetricRow>, MetricParseError> {
    let parsed = csv::parse(text);
    let mut lines = parsed.into_iter();
    let header = lines
        .next()
        .ok_or_else(|| MetricParseError::new("empty CSV"))?;
    if header != CSV_HEADER {
        return Err(MetricParseError::new(format!(
            "unexpected header {header:?}"
        )));
    }
    let optional = |cell: &str| {
        if cell.is_empty() {
            None
        } else {
            Some(cell.to_string())
        }
    };
    let mut rows = Vec::new();
    for (index, cells) in lines.enumerate() {
        if cells.len() != CSV_HEADER.len() {
            return Err(MetricParseError::new(format!(
                "row {index}: {} cells, expected {}",
                cells.len(),
                CSV_HEADER.len()
            )));
        }
        let n = match cells[3].as_str() {
            "" => None,
            text => Some(
                text.parse::<u64>()
                    .map_err(|_| MetricParseError::new(format!("row {index}: bad n '{text}'")))?,
            ),
        };
        rows.push(MetricRow {
            experiment: cells[0].clone(),
            chip: optional(&cells[1]),
            implementation: optional(&cells[2]),
            n,
            metric: cells[4].clone(),
            value: MetricValue::from_tagged(&cells[5], &cells[6])?,
            unit: cells[7].clone(),
        });
    }
    Ok(rows)
}

/// JSON array of a row slice (flat shape, for external consumers).
pub fn rows_to_json(rows: &[MetricRow]) -> Result<String, JsonError> {
    to_json_string(&rows)
}

/// JSON array of full sets (structured shape; the persistence format).
/// Accepts owned or borrowed sets, so callers holding `Vec<&MetricSet>`
/// views serialize without cloning. Wall-time is excluded by
/// construction — see [`Provenance::wall_time_s`].
pub fn sets_to_json<S>(sets: &[S]) -> Result<String, JsonError>
where
    S: std::borrow::Borrow<MetricSet> + Serialize,
{
    to_json_string(&sets)
}

/// Rebuild sets from [`sets_to_json`] output.
pub fn sets_from_json(text: &str) -> Result<Vec<MetricSet>, MetricParseError> {
    let document = json::parse(text)?;
    let items = document
        .as_array()
        .ok_or_else(|| MetricParseError::new("document is not an array of sets"))?;
    items.iter().map(set_from_json).collect()
}

fn optional_string(value: Option<&JsonValue>) -> Result<Option<String>, MetricParseError> {
    match value {
        None => Ok(None),
        Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::String(s)) => Ok(Some(s.clone())),
        Some(other) => Err(MetricParseError::new(format!(
            "expected string or null, got {other:?}"
        ))),
    }
}

fn required_str<'a>(object: &'a JsonValue, key: &str) -> Result<&'a str, MetricParseError> {
    object
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| MetricParseError::new(format!("missing string field '{key}'")))
}

/// Rebuild one set from its parsed JSON object — for callers (like the
/// campaign's persistent cache) that embed sets inside a larger
/// document and parse it once.
pub fn set_from_json(value: &JsonValue) -> Result<MetricSet, MetricParseError> {
    let provenance = value
        .get("provenance")
        .ok_or_else(|| MetricParseError::new("set is missing provenance"))?;
    let power = match provenance.get("power") {
        None | Some(JsonValue::Null) => None,
        Some(context) => {
            let field = |key: &str| {
                context.get(key).and_then(JsonValue::as_f64).ok_or_else(|| {
                    MetricParseError::new(format!("power context is missing '{key}'"))
                })
            };
            Some(PowerContext {
                package_watts: field("package_watts")?,
                energy_j: field("energy_j")?,
                window_s: field("window_s")?,
                dvfs_cap: field("dvfs_cap")?,
            })
        }
    };
    let metrics = value
        .get("metrics")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| MetricParseError::new("set is missing metrics array"))?
        .iter()
        .map(|m| {
            let unit = required_str(m, "unit")?;
            if unit.is_empty() {
                return Err(MetricParseError::new("metric unit label was dropped"));
            }
            Ok(Metric {
                name: required_str(m, "name")?.to_string(),
                value: MetricValue::from_json(
                    m.get("value")
                        .ok_or_else(|| MetricParseError::new("metric is missing value"))?,
                )?,
                unit: unit.to_string(),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MetricSet {
        provenance: Provenance {
            experiment: required_str(provenance, "experiment")?.to_string(),
            chip: optional_string(provenance.get("chip"))?,
            params: required_str(provenance, "params")?.to_string(),
            wall_time_s: None,
            power,
        },
        implementation: optional_string(value.get("implementation"))?,
        n: match value.get("n") {
            None | Some(JsonValue::Null) => None,
            Some(JsonValue::Number(v)) => Some(v.as_u64().ok_or_else(|| {
                MetricParseError::new(format!("n field {v:?} is not an exact u64"))
            })?),
            Some(other) => return Err(MetricParseError::new(format!("bad n field {other:?}"))),
        },
        metrics,
    })
}

/// Human-readable table of a row slice — the generic replacement for
/// per-figure table builders.
pub fn rows_table(rows: &[MetricRow]) -> String {
    let mut table = TextTable::new(vec![
        "Experiment",
        "Chip",
        "Implementation",
        "n",
        "Metric",
        "Value",
        "Unit",
    ])
    .numeric();
    for row in rows {
        table.row(vec![
            row.experiment.clone(),
            row.chip.clone().unwrap_or_default(),
            row.implementation.clone().unwrap_or_default(),
            row.n.map(|n| n.to_string()).unwrap_or_default(),
            row.metric.clone(),
            match &row.value {
                MetricValue::Float(v) => format!("{v:.3}"),
                other => other.render(),
            },
            row.unit.clone(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sets() -> Vec<MetricSet> {
        vec![
            MetricSet::for_chip("fig1", "chip=M1", "M1")
                .with_implementation("Triad (CPU)")
                .metric("gbs", 102.5, "GB/s"),
            MetricSet::for_chip("fig2", "chip=M4;sizes=16384", "M4")
                .with_implementation("GPU-MPS")
                .with_n(16384)
                .with_power(PowerContext {
                    package_watts: 14.2,
                    energy_j: 71.0,
                    window_s: 5.0,
                    dvfs_cap: 1.0,
                })
                .metric("gflops", 2900.0, "GFLOPS")
                .metric("verified", true, "flag"),
            MetricSet::new("tables", "tables=1,2,3").metric("rows", 17i64, "rows"),
        ]
    }

    #[test]
    fn builder_populates_provenance_and_metrics() {
        let sets = sample_sets();
        assert_eq!(sets[0].provenance.chip.as_deref(), Some("M1"));
        assert_eq!(sets[1].value("gflops"), Some(2900.0));
        assert_eq!(sets[1].value("verified"), Some(1.0));
        assert!(sets[1].provenance.power.unwrap().package_watts > 14.0);
        assert!(!sets[1].provenance.power.unwrap().throttled());
        assert_eq!(sets[2].provenance.chip, None);
        assert_eq!(sets[2].get("rows").unwrap().unit, "rows");
    }

    #[test]
    #[should_panic(expected = "unit label")]
    fn unit_labels_are_mandatory() {
        let _ = MetricSet::new("x", "p").metric("gbs", 1.0, "");
    }

    #[test]
    fn rows_flatten_in_order() {
        let all = rows(&sample_sets());
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].metric, "gbs");
        assert_eq!(all[2].metric, "verified");
        assert_eq!(all[2].value, MetricValue::Bool(true));
        assert_eq!(all[3].chip, None);
    }

    #[test]
    fn csv_round_trips_exactly() {
        let before = rows(&sample_sets());
        let csv = rows_to_csv(&before);
        assert!(csv.starts_with("experiment,chip,implementation,n,metric,type,value,unit"));
        assert!(csv.contains("fig2,M4,GPU-MPS,16384,gflops,float,2900,GFLOPS"));
        let after = rows_from_csv(&csv).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn json_round_trips_exactly_including_power() {
        let before = sample_sets();
        let text = sets_to_json(&before).unwrap();
        let after = sets_from_json(&text).unwrap();
        assert_eq!(before, after);
        // And re-emission is byte-identical (canonical form).
        assert_eq!(sets_to_json(&after).unwrap(), text);
    }

    #[test]
    fn wall_time_never_reaches_serialization() {
        let mut set = sample_sets().remove(0);
        let without = sets_to_json(std::slice::from_ref(&set)).unwrap();
        set.provenance.wall_time_s = Some(12.5);
        let with = sets_to_json(std::slice::from_ref(&set)).unwrap();
        assert_eq!(without, with, "wall-time must not perturb value identity");
        let reloaded = sets_from_json(&with).unwrap();
        assert_eq!(reloaded[0].provenance.wall_time_s, None);
    }

    #[test]
    fn sort_keys_order_rows_deterministically() {
        let mut all = rows(&sample_sets());
        all.reverse();
        all.sort_by_key(MetricRow::sort_key);
        assert_eq!(all[0].experiment, "fig1");
        assert_eq!(all.last().unwrap().experiment, "tables");
    }

    #[test]
    fn table_renders_all_cells() {
        let text = rows_table(&rows(&sample_sets()));
        for needle in ["fig1", "Triad (CPU)", "GB/s", "2900.000", "true", "flag"] {
            assert!(text.contains(needle), "missing {needle} in\n{text}");
        }
    }

    #[test]
    fn display_summarizes_coordinates() {
        let text = sample_sets()[1].to_string();
        assert!(text.contains("fig2[chip=M4;sizes=16384] GPU-MPS n=16384"));
    }
}
