//! A minimal JSON emitter over `serde::Serialize`.
//!
//! The approved dependency set includes `serde` but not `serde_json`;
//! reports only need *emission* (results flow out of the harness, never
//! back in), so this ~200-line serializer covers exactly the data model
//! the report types use. Non-finite floats serialize as `null`.

use serde::ser::{self, Serialize};
use std::fmt;

/// Serialization failure (custom messages from Serialize impls).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

/// Serialize any `Serialize` value to a JSON string.
pub fn to_json_string<T: Serialize>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    value.serialize(&mut Emitter { out: &mut out })?;
    Ok(out)
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Emitter<'a> {
    out: &'a mut String,
}

/// Compound-state helper shared by seq/map/struct serializers.
struct Compound<'a> {
    out: &'a mut String,
    first: bool,
    closer: char,
}

impl Compound<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }
}

impl<'a> ser::Serializer for &'a mut Emitter<'_> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<(), JsonError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<(), JsonError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
        self.serialize_f64(v as f64)
    }
    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        escape_into(self.out, &v.to_string());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        escape_into(self.out, v);
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), JsonError> {
        let parts: Vec<String> = v.iter().map(|b| b.to_string()).collect();
        self.out.push('[');
        self.out.push_str(&parts.join(","));
        self.out.push(']');
        Ok(())
    }
    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        escape_into(self.out, variant);
        Ok(())
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push(':');
        value.serialize(&mut Emitter { out: self.out })?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, JsonError> {
        self.out.push('[');
        Ok(Compound {
            out: self.out,
            first: true,
            closer: ']',
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            out: self.out,
            first: true,
            closer: '!',
        }) // '!' = ]}
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        Ok(Compound {
            out: self.out,
            first: true,
            closer: '}',
        })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        Ok(Compound {
            out: self.out,
            first: true,
            closer: '}',
        })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            out: self.out,
            first: true,
            closer: '?',
        }) // '?' = }}
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        self.sep();
        value.serialize(&mut Emitter { out: self.out })
    }
    fn end(self) -> Result<(), JsonError> {
        finish(self)
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        finish(self)
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        finish(self)
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        finish(self)
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), JsonError> {
        self.sep();
        // JSON keys must be strings; serialize and trust the caller used a
        // string-like key (report types do).
        key.serialize(&mut Emitter { out: self.out })
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        self.out.push(':');
        value.serialize(&mut Emitter { out: self.out })
    }
    fn end(self) -> Result<(), JsonError> {
        finish(self)
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.sep();
        escape_into(self.out, key);
        self.out.push(':');
        value.serialize(&mut Emitter { out: self.out })
    }
    fn end(self) -> Result<(), JsonError> {
        finish(self)
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<(), JsonError> {
        finish(self)
    }
}

fn finish(compound: Compound<'_>) -> Result<(), JsonError> {
    match compound.closer {
        ']' => compound.out.push(']'),
        '}' => compound.out.push('}'),
        '!' => compound.out.push_str("]}"),
        '?' => compound.out.push_str("}}"),
        other => unreachable!("unknown closer {other}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    struct Point {
        chip: String,
        n: u64,
        gflops: f64,
        verified: Option<bool>,
    }

    #[derive(Serialize)]
    enum Kind {
        Unit,
        Newtype(u32),
        Tuple(u32, u32),
        Struct { x: u32 },
    }

    #[test]
    fn structs_and_options() {
        let p = Point {
            chip: "M1".into(),
            n: 256,
            gflops: 123.5,
            verified: Some(true),
        };
        assert_eq!(
            to_json_string(&p).unwrap(),
            r#"{"chip":"M1","n":256,"gflops":123.5,"verified":true}"#
        );
        let p = Point {
            chip: "M2".into(),
            n: 1,
            gflops: f64::NAN,
            verified: None,
        };
        assert_eq!(
            to_json_string(&p).unwrap(),
            r#"{"chip":"M2","n":1,"gflops":null,"verified":null}"#
        );
    }

    #[test]
    fn sequences_and_maps() {
        assert_eq!(to_json_string(&vec![1, 2, 3]).unwrap(), "[1,2,3]");
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1.5);
        map.insert("b".to_string(), 2.0);
        assert_eq!(to_json_string(&map).unwrap(), r#"{"a":1.5,"b":2}"#);
        assert_eq!(to_json_string(&(1, "two", 3.0)).unwrap(), r#"[1,"two",3]"#);
    }

    #[test]
    fn enum_variants() {
        assert_eq!(to_json_string(&Kind::Unit).unwrap(), r#""Unit""#);
        assert_eq!(
            to_json_string(&Kind::Newtype(5)).unwrap(),
            r#"{"Newtype":5}"#
        );
        assert_eq!(
            to_json_string(&Kind::Tuple(1, 2)).unwrap(),
            r#"{"Tuple":[1,2]}"#
        );
        assert_eq!(
            to_json_string(&Kind::Struct { x: 9 }).unwrap(),
            r#"{"Struct":{"x":9}}"#
        );
    }

    #[test]
    fn string_escaping() {
        assert_eq!(
            to_json_string(&"say \"hi\"\n").unwrap(),
            r#""say \"hi\"\n""#
        );
        assert_eq!(to_json_string(&'\t').unwrap(), r#""\t""#);
        assert_eq!(to_json_string(&"\u{1}").unwrap(), "\"\\u0001\"");
    }

    #[test]
    fn scalars() {
        assert_eq!(to_json_string(&true).unwrap(), "true");
        assert_eq!(to_json_string(&-42i32).unwrap(), "-42");
        assert_eq!(to_json_string(&3.25f32).unwrap(), "3.25");
        assert_eq!(to_json_string(&()).unwrap(), "null");
    }
}
