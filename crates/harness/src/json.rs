//! A minimal JSON emitter over `serde::Serialize`, plus a parser.
//!
//! The approved dependency set includes `serde` but not `serde_json`;
//! this ~200-line serializer covers exactly the data model the report
//! types use. Non-finite floats serialize as `null`. The [`parse`]
//! half reads JSON back into a generic [`JsonValue`] tree — the
//! disk-persistent result cache and the [`crate::metric`] round-trip
//! path rebuild typed records from it.

use serde::ser::{self, Serialize};
use std::fmt;

/// Serialization failure (custom messages from Serialize impls).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

/// Serialize any `Serialize` value to a JSON string.
pub fn to_json_string<T: Serialize>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    value.serialize(&mut Emitter { out: &mut out })?;
    Ok(out)
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Emitter<'a> {
    out: &'a mut String,
}

/// Compound-state helper shared by seq/map/struct serializers.
struct Compound<'a> {
    out: &'a mut String,
    first: bool,
    closer: char,
}

impl Compound<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }
}

impl<'a> ser::Serializer for &'a mut Emitter<'_> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<(), JsonError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<(), JsonError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
        self.serialize_f64(v as f64)
    }
    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        escape_into(self.out, &v.to_string());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        escape_into(self.out, v);
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), JsonError> {
        let parts: Vec<String> = v.iter().map(|b| b.to_string()).collect();
        self.out.push('[');
        self.out.push_str(&parts.join(","));
        self.out.push(']');
        Ok(())
    }
    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        escape_into(self.out, variant);
        Ok(())
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push(':');
        value.serialize(&mut Emitter { out: self.out })?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, JsonError> {
        self.out.push('[');
        Ok(Compound {
            out: self.out,
            first: true,
            closer: ']',
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            out: self.out,
            first: true,
            closer: '!',
        }) // '!' = ]}
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        Ok(Compound {
            out: self.out,
            first: true,
            closer: '}',
        })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        Ok(Compound {
            out: self.out,
            first: true,
            closer: '}',
        })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            out: self.out,
            first: true,
            closer: '?',
        }) // '?' = }}
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        self.sep();
        value.serialize(&mut Emitter { out: self.out })
    }
    fn end(self) -> Result<(), JsonError> {
        finish(self)
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        finish(self)
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        finish(self)
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        finish(self)
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), JsonError> {
        self.sep();
        // JSON keys must be strings; serialize and trust the caller used a
        // string-like key (report types do).
        key.serialize(&mut Emitter { out: self.out })
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        self.out.push(':');
        value.serialize(&mut Emitter { out: self.out })
    }
    fn end(self) -> Result<(), JsonError> {
        finish(self)
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.sep();
        escape_into(self.out, key);
        self.out.push(':');
        value.serialize(&mut Emitter { out: self.out })
    }
    fn end(self) -> Result<(), JsonError> {
        finish(self)
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<(), JsonError> {
        finish(self)
    }
}

fn finish(compound: Compound<'_>) -> Result<(), JsonError> {
    match compound.closer {
        ']' => compound.out.push(']'),
        '}' => compound.out.push('}'),
        '!' => compound.out.push_str("]}"),
        '?' => compound.out.push_str("}}"),
        other => unreachable!("unknown closer {other}"),
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

/// A parsed JSON document.
///
/// Objects preserve key order (a `Vec` of pairs, not a map): the emitter
/// writes struct fields in declaration order and round-trip tests compare
/// re-emitted text byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. The source text is kept verbatim so 64-bit integers
    /// round-trip exactly (an eager `f64` would silently lose precision
    /// past 2^53).
    Number(JsonNumber),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

/// A JSON number, kept as its (validated) source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonNumber(String);

impl JsonNumber {
    /// The number as `f64` (always valid — the parser checked it).
    pub fn as_f64(&self) -> f64 {
        self.0.parse().expect("validated at parse time")
    }

    /// The number as `u64`, exactly — `None` if it is negative,
    /// fractional, in exponent form, or out of range.
    pub fn as_u64(&self) -> Option<u64> {
        self.0.parse().ok()
    }

    /// The number as `i64`, exactly — `None` if it is fractional, in
    /// exponent form, or out of range.
    pub fn as_i64(&self) -> Option<i64> {
        self.0.parse().ok()
    }
}

impl JsonValue {
    /// A number value from an `f64` (test/construction convenience).
    pub fn number(value: f64) -> JsonValue {
        JsonValue::Number(JsonNumber(format!("{value}")))
    }

    /// A number value from a `u64`, kept exact (no `f64` rounding).
    pub fn integer(value: u64) -> JsonValue {
        JsonValue::Number(JsonNumber(value.to_string()))
    }

    /// Re-emit this tree as JSON text. Numbers are written with their
    /// (validated) source text, so `parse` → `to_json_string` round-trips
    /// emitter output byte-for-byte — which is what lets wire envelopes
    /// carry embedded documents without perturbing value identity.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(n) => out.push_str(&n.0),
            JsonValue::String(s) => escape_into(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, key);
                    out.push(':');
                    value.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as an exact `u64`, if this is a whole
    /// non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as an exact `i64`, if this is a whole number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters after document", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> JsonParseError {
    JsonParseError {
        message: message.to_string(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonParseError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected '{}'", byte as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonParseError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(&format!("expected '{literal}'"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    // Validate as f64; keep the exact text for lossless integer access.
    text.parse::<f64>()
        .map(|_| JsonValue::Number(JsonNumber(text.to_string())))
        .map_err(|_| err(&format!("invalid number '{text}'"), start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("invalid \\u escape", *pos))?;
                        // The emitter only writes \u for control chars; a
                        // lone surrogate is replaced rather than rejected.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the whole contiguous unescaped span in one go.
                // The input came in as `&str` and `"`/`\` are ASCII, so
                // the span boundaries sit on char boundaries and the
                // slice is valid UTF-8 by construction.
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos]).expect("input is a valid &str"),
                );
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    struct Point {
        chip: String,
        n: u64,
        gflops: f64,
        verified: Option<bool>,
    }

    #[derive(Serialize)]
    enum Kind {
        Unit,
        Newtype(u32),
        Tuple(u32, u32),
        Struct { x: u32 },
    }

    #[test]
    fn structs_and_options() {
        let p = Point {
            chip: "M1".into(),
            n: 256,
            gflops: 123.5,
            verified: Some(true),
        };
        assert_eq!(
            to_json_string(&p).unwrap(),
            r#"{"chip":"M1","n":256,"gflops":123.5,"verified":true}"#
        );
        let p = Point {
            chip: "M2".into(),
            n: 1,
            gflops: f64::NAN,
            verified: None,
        };
        assert_eq!(
            to_json_string(&p).unwrap(),
            r#"{"chip":"M2","n":1,"gflops":null,"verified":null}"#
        );
    }

    #[test]
    fn sequences_and_maps() {
        assert_eq!(to_json_string(&vec![1, 2, 3]).unwrap(), "[1,2,3]");
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1.5);
        map.insert("b".to_string(), 2.0);
        assert_eq!(to_json_string(&map).unwrap(), r#"{"a":1.5,"b":2}"#);
        assert_eq!(to_json_string(&(1, "two", 3.0)).unwrap(), r#"[1,"two",3]"#);
    }

    #[test]
    fn enum_variants() {
        assert_eq!(to_json_string(&Kind::Unit).unwrap(), r#""Unit""#);
        assert_eq!(
            to_json_string(&Kind::Newtype(5)).unwrap(),
            r#"{"Newtype":5}"#
        );
        assert_eq!(
            to_json_string(&Kind::Tuple(1, 2)).unwrap(),
            r#"{"Tuple":[1,2]}"#
        );
        assert_eq!(
            to_json_string(&Kind::Struct { x: 9 }).unwrap(),
            r#"{"Struct":{"x":9}}"#
        );
    }

    #[test]
    fn string_escaping() {
        assert_eq!(
            to_json_string(&"say \"hi\"\n").unwrap(),
            r#""say \"hi\"\n""#
        );
        assert_eq!(to_json_string(&'\t').unwrap(), r#""\t""#);
        assert_eq!(to_json_string(&"\u{1}").unwrap(), "\"\\u0001\"");
    }

    #[test]
    fn scalars() {
        assert_eq!(to_json_string(&true).unwrap(), "true");
        assert_eq!(to_json_string(&-42i32).unwrap(), "-42");
        assert_eq!(to_json_string(&3.25f32).unwrap(), "3.25");
        assert_eq!(to_json_string(&()).unwrap(), "null");
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap().as_f64(), Some(-250.0));
        let array = parse(r#"[1,"two",null]"#).unwrap();
        let items = array.as_array().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_str(), Some("two"));
        assert!(items[2].is_null());
        let object = parse(r#"{"a":1,"b":[true]}"#).unwrap();
        assert_eq!(object.get("a").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(
            object
                .get("b")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(1)
        );
        assert!(object.get("missing").is_none());
    }

    #[test]
    fn large_integers_survive_parsing_exactly() {
        let value = parse("12797480707342861577").unwrap();
        assert_eq!(value.as_u64(), Some(12797480707342861577));
        let value = parse("-9223372036854775807").unwrap();
        assert_eq!(value.as_i64(), Some(-9223372036854775807));
        // f64 access still works, merely rounded.
        assert!(value.as_f64().unwrap() < -9.2e18);
        // Fractional numbers refuse exact-integer access.
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            parse(r#""say \"hi\"\nA tschüß""#).unwrap(),
            JsonValue::String("say \"hi\"\nA tschüß".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "nul", "1 2", "\"open"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn reemission_round_trips_byte_for_byte() {
        for text in [
            "null",
            "true",
            r#"{"a":1.5,"b":[1,"two",null],"c":{"d":12797480707342861577}}"#,
            r#"["say \"hi\"\n",-2.5e2,0.1]"#,
        ] {
            assert_eq!(parse(text).unwrap().to_json_string(), text);
        }
        assert_eq!(
            JsonValue::integer(u64::MAX).to_json_string(),
            u64::MAX.to_string()
        );
    }

    #[test]
    fn emit_parse_round_trips_emitter_output() {
        let p = Point {
            chip: "M1 \"quoted\"\n".into(),
            n: 256,
            gflops: 123.456789,
            verified: None,
        };
        let text = to_json_string(&p).unwrap();
        let value = parse(&text).unwrap();
        assert_eq!(
            value.get("chip").and_then(JsonValue::as_str),
            Some("M1 \"quoted\"\n")
        );
        assert_eq!(
            value.get("gflops").and_then(JsonValue::as_f64),
            Some(123.456789)
        );
        assert!(value.get("verified").unwrap().is_null());
    }
}
