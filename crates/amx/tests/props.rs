//! Property-based tests: the AMX unit against a scalar model.

// Tile assertions index z[i][j] against y[i]*x[j]; iterator rewrites
// would obscure the outer-product math under test.
#![allow(clippy::needless_range_loop)]

use oranges_amx::insn::Instruction;
use oranges_amx::regs::TILE_F32_LANES;
use oranges_amx::sgemm::{reference_sgemm, AmxSgemm};
use oranges_amx::unit::AmxUnit;
use oranges_soc::chip::ChipGeneration;
use proptest::prelude::*;

fn lane_vec() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, TILE_F32_LANES)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn outer_product_matches_scalar(x in lane_vec(), y in lane_vec()) {
        let mut unit = AmxUnit::new(ChipGeneration::M1);
        let mut xm = x.clone();
        let mut ym = y.clone();
        unit.execute(Instruction::LdX { reg: 0, offset: 0 }, &mut xm).unwrap();
        unit.execute(Instruction::LdY { reg: 0, offset: 0 }, &mut ym).unwrap();
        unit.execute(Instruction::Fma32 { tile: 0, xr: 0, yr: 0 }, &mut xm).unwrap();
        for i in 0..TILE_F32_LANES {
            for j in 0..TILE_F32_LANES {
                prop_assert_eq!(unit.regs().z_row(0, i)[j], y[i] * x[j]);
            }
        }
    }

    #[test]
    fn repeated_fma_equals_sum_of_rank1_updates(
        xs in proptest::collection::vec(lane_vec(), 1..6),
        ys in proptest::collection::vec(lane_vec(), 1..6),
    ) {
        let updates = xs.len().min(ys.len());
        let mut unit = AmxUnit::new(ChipGeneration::M2);
        let mut expected = vec![vec![0.0f64; TILE_F32_LANES]; TILE_F32_LANES];
        for u in 0..updates {
            let mut xm = xs[u].clone();
            let mut ym = ys[u].clone();
            unit.execute(Instruction::LdX { reg: 0, offset: 0 }, &mut xm).unwrap();
            unit.execute(Instruction::LdY { reg: 0, offset: 0 }, &mut ym).unwrap();
            unit.execute(Instruction::Fma32 { tile: 0, xr: 0, yr: 0 }, &mut xm).unwrap();
            for i in 0..TILE_F32_LANES {
                for j in 0..TILE_F32_LANES {
                    // f32 accumulate order matches the unit's.
                    expected[i][j] =
                        (expected[i][j] as f32 + ys[u][i] * xs[u][j]) as f64;
                }
            }
        }
        for i in 0..TILE_F32_LANES {
            for j in 0..TILE_F32_LANES {
                prop_assert_eq!(unit.regs().z_row(0, i)[j], expected[i][j] as f32);
            }
        }
        prop_assert_eq!(unit.flops(), 512 * updates as u64);
    }

    #[test]
    fn sgemm_agrees_with_reference(n in 1usize..40, seed in 0u64..1000) {
        let mut rng_state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            ((rng_state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
        };
        let a: Vec<f32> = (0..n * n).map(|_| next()).collect();
        let b: Vec<f32> = (0..n * n).map(|_| next()).collect();
        let mut c = vec![0.0f32; n * n];
        let mut expected = vec![0.0f32; n * n];
        let mut driver = AmxSgemm::new(ChipGeneration::M4);
        let stats = driver.sgemm(n, &a, &b, &mut c).unwrap();
        reference_sgemm(n, &a, &b, &mut expected);
        let tol = 1e-4f32 * n as f32;
        for idx in 0..n * n {
            prop_assert!((c[idx] - expected[idx]).abs() <= tol.max(1e-5),
                "n={} idx={} {} vs {}", n, idx, c[idx], expected[idx]);
        }
        prop_assert_eq!(stats.total_flops(), 2 * (n as u64).pow(3));
        // Tiny edge-only problems (n < 4) retire in under a nanosecond and
        // legitimately round to zero on the ns-resolution clock.
        if n >= 4 {
            prop_assert!(stats.elapsed.as_nanos() > 0);
        }
    }

    #[test]
    fn counters_are_consistent(ops in 1u64..200) {
        let mut unit = AmxUnit::new(ChipGeneration::M3);
        let mut mem = vec![0.5f32; 32];
        for _ in 0..ops {
            unit.execute(Instruction::Fma32 { tile: 0, xr: 0, yr: 0 }, &mut mem).unwrap();
        }
        prop_assert_eq!(unit.flops(), 512 * ops);
        prop_assert_eq!(unit.instructions(), ops);
        prop_assert!((unit.cycles() - ops as f64).abs() < 1e-9);
        // Elapsed time equals cycles / clock.
        let expected_ns = ops as f64 / (ChipGeneration::M3.spec().p_clock_ghz);
        prop_assert!((unit.elapsed().as_nanos() as f64 - expected_ns).abs() <= 1.0);
    }
}
