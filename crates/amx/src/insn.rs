//! The (simulated) AMX instruction set.
//!
//! Apple never documented AMX; the operations below follow the
//! reverse-engineered ISA used by the cryptography papers the paper cites
//! (\[3\], \[4\]): load/store of 64-byte registers and fused outer-product
//! accumulate. Loads and stores reference unified memory through plain
//! slices (offsets into the caller's buffer); the unit validates register
//! indices and operand lengths.

use serde::Serialize;

/// One AMX instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Instruction {
    /// `ldx x[reg] ← mem[offset .. offset+16]` (FP32 lanes).
    LdX {
        /// Destination X register (0..8).
        reg: usize,
        /// Element offset into the bound memory.
        offset: usize,
    },
    /// `ldy y[reg] ← mem[offset .. offset+16]`.
    LdY {
        /// Destination Y register (0..8).
        reg: usize,
        /// Element offset into the bound memory.
        offset: usize,
    },
    /// `fma32 z[tile] += y[yr] ⊗ x[xr]` — 16×16 outer-product accumulate.
    Fma32 {
        /// Z accumulator tile (0..4).
        tile: usize,
        /// X operand register.
        xr: usize,
        /// Y operand register.
        yr: usize,
    },
    /// `stz mem[offset .. offset+16] ← z[tile][row]`.
    StZ {
        /// Source Z tile.
        tile: usize,
        /// Row within the tile (0..16).
        row: usize,
        /// Element offset into the bound memory.
        offset: usize,
    },
    /// Zero a Z tile.
    ClrZ {
        /// Z tile to clear.
        tile: usize,
    },
}

impl Instruction {
    /// Issue cost in AMX cycles.
    ///
    /// The unit retires one outer product per cycle; loads and stores
    /// dual-issue with compute in steady state, modeled as half a cycle.
    /// (The sustained-throughput consequences match the ~55–66% SGEMM
    /// efficiencies the paper measures through Accelerate.)
    pub fn cycles(&self) -> f64 {
        match self {
            Instruction::LdX { .. } | Instruction::LdY { .. } => 0.5,
            Instruction::Fma32 { .. } => 1.0,
            Instruction::StZ { .. } => 0.5,
            Instruction::ClrZ { .. } => 0.25,
        }
    }

    /// FP32 FLOPs retired by this instruction (only `Fma32` computes:
    /// 16×16 multiply-adds = 512 FLOPs).
    pub fn flops(&self) -> u64 {
        match self {
            Instruction::Fma32 { .. } => 512,
            _ => 0,
        }
    }

    /// Mnemonic for tracing.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::LdX { .. } => "ldx",
            Instruction::LdY { .. } => "ldy",
            Instruction::Fma32 { .. } => "fma32",
            Instruction::StZ { .. } => "stz",
            Instruction::ClrZ { .. } => "clrz",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_is_the_only_flop_source() {
        assert_eq!(
            Instruction::Fma32 {
                tile: 0,
                xr: 0,
                yr: 0
            }
            .flops(),
            512
        );
        assert_eq!(Instruction::LdX { reg: 0, offset: 0 }.flops(), 0);
        assert_eq!(
            Instruction::StZ {
                tile: 0,
                row: 0,
                offset: 0
            }
            .flops(),
            0
        );
        assert_eq!(Instruction::ClrZ { tile: 0 }.flops(), 0);
    }

    #[test]
    fn cycle_costs() {
        assert_eq!(
            Instruction::Fma32 {
                tile: 0,
                xr: 0,
                yr: 0
            }
            .cycles(),
            1.0
        );
        assert_eq!(Instruction::LdX { reg: 0, offset: 0 }.cycles(), 0.5);
        assert_eq!(Instruction::LdY { reg: 0, offset: 0 }.cycles(), 0.5);
        assert_eq!(
            Instruction::StZ {
                tile: 0,
                row: 0,
                offset: 0
            }
            .cycles(),
            0.5
        );
    }

    #[test]
    fn mnemonics() {
        assert_eq!(
            Instruction::Fma32 {
                tile: 0,
                xr: 1,
                yr: 2
            }
            .mnemonic(),
            "fma32"
        );
        assert_eq!(Instruction::ClrZ { tile: 3 }.mnemonic(), "clrz");
    }
}
