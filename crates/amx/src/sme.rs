//! ARM SME streaming-mode view of the matrix unit (M4).
//!
//! The M4 replaces the private AMX front-end with the standardized Scalable
//! Matrix Extension (paper §2.1: "in the latest M4, standardized ARM SME
//! ... is later proved to be fairly similar to the AMX unit at its core").
//! The simulator reflects that finding literally: [`SmeUnit`] is a thin
//! facade over [`AmxUnit`] exposing SME vocabulary (streaming vector
//! length, ZA tiles, `fmopa`), available only on generations whose ISA
//! carries SME.

use crate::insn::Instruction;
use crate::regs::TILE_F32_LANES;
use crate::unit::{AmxError, AmxUnit};
use oranges_soc::chip::ChipGeneration;
use oranges_soc::time::SimDuration;

/// Streaming vector length in bits (M4-class SME: 512).
pub const SVL_BITS: usize = 512;
/// FP32 lanes per streaming vector.
pub const SVL_F32_LANES: usize = SVL_BITS / 32;

/// The SME streaming-mode engine.
#[derive(Debug)]
pub struct SmeUnit {
    inner: AmxUnit,
    streaming: bool,
}

impl SmeUnit {
    /// Construct for a generation; errors if the ISA has no SME.
    pub fn new(generation: ChipGeneration) -> Result<Self, AmxError> {
        if !generation.spec().isa.has_sme() {
            return Err(AmxError::Unsupported(
                "SME requires ARMv9.2-A (M4 or later)",
            ));
        }
        Ok(SmeUnit {
            inner: AmxUnit::new(generation),
            streaming: false,
        })
    }

    /// Enter streaming SVE mode (`smstart`).
    pub fn smstart(&mut self) {
        self.streaming = true;
    }

    /// Leave streaming mode (`smstop`).
    pub fn smstop(&mut self) {
        self.streaming = false;
    }

    /// Whether streaming mode is active.
    pub fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// `fmopa za[tile] += zn ⊗ zm`: FP32 outer-product accumulate of two
    /// streaming vectors into a ZA tile. Operands are read from `zn`/`zm`
    /// slices of [`SVL_F32_LANES`] elements.
    pub fn fmopa(&mut self, tile: usize, zn: &[f32], zm: &[f32]) -> Result<(), AmxError> {
        if !self.streaming {
            return Err(AmxError::Unsupported(
                "fmopa outside streaming mode (missing smstart)",
            ));
        }
        if zn.len() < SVL_F32_LANES || zm.len() < SVL_F32_LANES {
            return Err(AmxError::BadOperand {
                offset: 0,
                needed: SVL_F32_LANES,
                len: zn.len().min(zm.len()),
            });
        }
        debug_assert_eq!(
            SVL_F32_LANES, TILE_F32_LANES,
            "SVL matches the AMX tile geometry"
        );
        let mut zn_buf = [0.0f32; SVL_F32_LANES];
        zn_buf.copy_from_slice(&zn[..SVL_F32_LANES]);
        let mut zm_buf = [0.0f32; SVL_F32_LANES];
        zm_buf.copy_from_slice(&zm[..SVL_F32_LANES]);
        // zn → Y (rows), zm → X (columns): za[i][j] += zn[i] * zm[j].
        self.inner
            .execute(Instruction::LdY { reg: 0, offset: 0 }, &mut zn_buf)?;
        self.inner
            .execute(Instruction::LdX { reg: 0, offset: 0 }, &mut zm_buf)?;
        self.inner
            .execute(Instruction::Fma32 { tile, xr: 0, yr: 0 }, &mut zn_buf)?;
        Ok(())
    }

    /// Read a ZA tile row into `out`.
    pub fn read_za_row(
        &mut self,
        tile: usize,
        row: usize,
        out: &mut [f32],
    ) -> Result<(), AmxError> {
        let mut buf = vec![0.0f32; TILE_F32_LANES];
        self.inner.execute(
            Instruction::StZ {
                tile,
                row,
                offset: 0,
            },
            &mut buf,
        )?;
        let take = out.len().min(TILE_F32_LANES);
        out[..take].copy_from_slice(&buf[..take]);
        Ok(())
    }

    /// Zero a ZA tile (`zero {za.s[..]}`)
    pub fn zero_za(&mut self, tile: usize) -> Result<(), AmxError> {
        let mut dummy = [0.0f32; 1];
        self.inner.execute(Instruction::ClrZ { tile }, &mut dummy)
    }

    /// Retired FP32 FLOPs.
    pub fn flops(&self) -> u64 {
        self.inner.flops()
    }

    /// Elapsed simulated time.
    pub fn elapsed(&self) -> SimDuration {
        self.inner.elapsed()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::needless_range_loop)]
    use super::*;

    #[test]
    fn sme_rejects_pre_m4_generations() {
        for gen in [ChipGeneration::M1, ChipGeneration::M2, ChipGeneration::M3] {
            assert!(
                matches!(SmeUnit::new(gen), Err(AmxError::Unsupported(_))),
                "{gen}"
            );
        }
        assert!(SmeUnit::new(ChipGeneration::M4).is_ok());
    }

    #[test]
    fn svl_matches_tile_geometry() {
        assert_eq!(SVL_BITS, 512);
        assert_eq!(SVL_F32_LANES, 16);
        assert_eq!(SVL_F32_LANES, TILE_F32_LANES);
    }

    #[test]
    fn fmopa_requires_streaming_mode() {
        let mut sme = SmeUnit::new(ChipGeneration::M4).unwrap();
        let v = vec![1.0f32; 16];
        assert!(matches!(
            sme.fmopa(0, &v, &v),
            Err(AmxError::Unsupported(_))
        ));
        sme.smstart();
        assert!(sme.is_streaming());
        assert!(sme.fmopa(0, &v, &v).is_ok());
        sme.smstop();
        assert!(!sme.is_streaming());
    }

    #[test]
    fn fmopa_computes_outer_product() {
        let mut sme = SmeUnit::new(ChipGeneration::M4).unwrap();
        sme.smstart();
        let zn: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let zm: Vec<f32> = (0..16).map(|i| (i + 1) as f32 * 0.25).collect();
        sme.zero_za(1).unwrap();
        sme.fmopa(1, &zn, &zm).unwrap();
        let mut row = vec![0.0f32; 16];
        sme.read_za_row(1, 3, &mut row).unwrap();
        for j in 0..16 {
            assert_eq!(row[j], 3.0 * (j + 1) as f32 * 0.25);
        }
        assert_eq!(sme.flops(), 512);
        assert!(sme.elapsed().as_nanos() > 0);
    }

    #[test]
    fn short_operands_are_rejected() {
        let mut sme = SmeUnit::new(ChipGeneration::M4).unwrap();
        sme.smstart();
        let short = vec![1.0f32; 8];
        let full = vec![1.0f32; 16];
        assert!(matches!(
            sme.fmopa(0, &short, &full),
            Err(AmxError::BadOperand { .. })
        ));
    }
}
