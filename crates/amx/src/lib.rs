//! # oranges-amx — Apple AMX / ARM SME coprocessor simulator
//!
//! The paper (§2.1) describes the Apple Matrix eXtension: an undocumented
//! coprocessor attached to each performance cluster, driven by CPU-issued
//! instructions, that computes outer products over 64-byte tile registers.
//! Accelerate's BLAS and vDSP run on it, which is how the M-series CPU
//! reaches ~0.9–1.5 TFLOPS FP32 in the paper's Figure 2. From the M4 the
//! unit fronts the standardized ARM SME interface, "fairly similar to the
//! AMX unit at its core" (paper §2.1, citing Remke & Breuer).
//!
//! This crate simulates the unit *functionally* (real FP32 arithmetic on
//! tile registers — results are bit-exact against a scalar reference) and
//! *temporally* (a per-generation cycle model: one 16×16 FP32 outer product
//! retired per P-cluster clock).
//!
//! - [`regs`]: the X/Y operand pools and the Z accumulator grid;
//! - [`insn`]: the instruction set (loads, stores, FMA variants);
//! - [`unit`](mod@unit): the execution unit — functional state + cycle accounting;
//! - [`sgemm`]: blocked SGEMM on the unit (the kernel Accelerate uses);
//! - [`sme`]: the M4 streaming-mode view of the same engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod insn;
pub mod regs;
pub mod sgemm;
pub mod sme;
pub mod unit;

pub use insn::Instruction;
pub use regs::{RegisterFile, TILE_F32_LANES, TILE_REG_BYTES};
pub use sgemm::AmxSgemm;
pub use unit::{AmxError, AmxUnit};

/// Convenience prelude.
pub mod prelude {
    pub use crate::insn::Instruction;
    pub use crate::regs::{RegisterFile, TILE_F32_LANES, TILE_REG_BYTES};
    pub use crate::sgemm::AmxSgemm;
    pub use crate::sme::SmeUnit;
    pub use crate::unit::{AmxError, AmxUnit};
}
