//! AMX register file.
//!
//! The architecture (as reverse-engineered in the literature the paper
//! cites) exposes three register pools:
//!
//! - **X pool**: 8 registers × 64 bytes — row operands;
//! - **Y pool**: 8 registers × 64 bytes — column operands;
//! - **Z pool**: 64 rows × 64 bytes — the accumulator grid.
//!
//! In FP32 mode a 64-byte register holds 16 lanes, and an outer product
//! `z[i][j] += x[j] * y[i]` fills a 16×16 FP32 tile of the Z grid (the
//! hardware interleaves the 16 used Z rows; the simulator flattens that
//! detail away and exposes a dense 16×16 tile per tile index).

use oranges_kernels::elem::axpy_f32;

/// Bytes per tile register (X, Y and each Z row).
pub const TILE_REG_BYTES: usize = 64;
/// FP32 lanes per 64-byte register.
pub const TILE_F32_LANES: usize = 16;
/// Registers in the X pool.
pub const X_REGS: usize = 8;
/// Registers in the Y pool.
pub const Y_REGS: usize = 8;
/// Rows in the Z accumulator pool.
pub const Z_ROWS: usize = 64;
/// Number of independent 16×16 FP32 accumulator tiles the Z pool holds
/// (64 rows / 16 rows per FP32 tile).
pub const Z_F32_TILES: usize = Z_ROWS / TILE_F32_LANES;

/// The architectural register state of one AMX unit (FP32 view).
#[derive(Debug, Clone)]
pub struct RegisterFile {
    x: [[f32; TILE_F32_LANES]; X_REGS],
    y: [[f32; TILE_F32_LANES]; Y_REGS],
    /// `z[tile][row][lane]`.
    z: [[[f32; TILE_F32_LANES]; TILE_F32_LANES]; Z_F32_TILES],
}

impl Default for RegisterFile {
    fn default() -> Self {
        RegisterFile {
            x: [[0.0; TILE_F32_LANES]; X_REGS],
            y: [[0.0; TILE_F32_LANES]; Y_REGS],
            z: [[[0.0; TILE_F32_LANES]; TILE_F32_LANES]; Z_F32_TILES],
        }
    }
}

impl RegisterFile {
    /// Fresh, zeroed register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read X register `reg`.
    pub fn x(&self, reg: usize) -> &[f32; TILE_F32_LANES] {
        &self.x[reg]
    }

    /// Write X register `reg`.
    pub fn set_x(&mut self, reg: usize, value: [f32; TILE_F32_LANES]) {
        self.x[reg] = value;
    }

    /// Read Y register `reg`.
    pub fn y(&self, reg: usize) -> &[f32; TILE_F32_LANES] {
        &self.y[reg]
    }

    /// Write Y register `reg`.
    pub fn set_y(&mut self, reg: usize, value: [f32; TILE_F32_LANES]) {
        self.y[reg] = value;
    }

    /// Read one row of a Z tile.
    pub fn z_row(&self, tile: usize, row: usize) -> &[f32; TILE_F32_LANES] {
        &self.z[tile][row]
    }

    /// Mutable row of a Z tile.
    pub fn z_row_mut(&mut self, tile: usize, row: usize) -> &mut [f32; TILE_F32_LANES] {
        &mut self.z[tile][row]
    }

    /// Zero one Z tile.
    pub fn clear_z(&mut self, tile: usize) {
        self.z[tile] = [[0.0; TILE_F32_LANES]; TILE_F32_LANES];
    }

    /// Zero every register.
    pub fn clear_all(&mut self) {
        *self = Self::default();
    }

    /// Accumulate the outer product of `x[xr]` and `y[yr]` into Z `tile`:
    /// `z[i][j] += y[i] * x[j]` — the fundamental AMX FP32 operation.
    ///
    /// Each Z row is one [`axpy_f32`] lane sweep (unrolled, bitwise-equal
    /// to the scalar lane loop it replaced).
    pub fn fma32(&mut self, tile: usize, xr: usize, yr: usize) {
        let x = self.x[xr];
        let y = self.y[yr];
        let z = &mut self.z[tile];
        for (i, zrow) in z.iter_mut().enumerate() {
            axpy_f32(y[i], &x, zrow);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::needless_range_loop)]
    use super::*;

    #[test]
    fn geometry_constants() {
        assert_eq!(TILE_REG_BYTES, 64);
        assert_eq!(TILE_F32_LANES, 16);
        assert_eq!(TILE_F32_LANES * std::mem::size_of::<f32>(), TILE_REG_BYTES);
        assert_eq!(Z_F32_TILES, 4);
    }

    #[test]
    fn registers_start_zeroed() {
        let rf = RegisterFile::new();
        assert!(rf.x(0).iter().all(|&v| v == 0.0));
        assert!(rf.y(7).iter().all(|&v| v == 0.0));
        assert!(rf.z_row(3, 15).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fma32_computes_outer_product() {
        let mut rf = RegisterFile::new();
        let mut x = [0.0f32; 16];
        let mut y = [0.0f32; 16];
        for i in 0..16 {
            x[i] = (i + 1) as f32;
            y[i] = (i as f32) * 0.5;
        }
        rf.set_x(0, x);
        rf.set_y(0, y);
        rf.fma32(0, 0, 0);
        for i in 0..16 {
            for j in 0..16 {
                let expected = y[i] * x[j];
                assert_eq!(rf.z_row(0, i)[j], expected, "z[{i}][{j}]");
            }
        }
    }

    #[test]
    fn fma32_accumulates() {
        let mut rf = RegisterFile::new();
        rf.set_x(1, [1.0; 16]);
        rf.set_y(1, [2.0; 16]);
        rf.fma32(2, 1, 1);
        rf.fma32(2, 1, 1);
        assert!(rf.z_row(2, 0).iter().all(|&v| v == 4.0));
        // Other tiles untouched.
        assert!(rf.z_row(0, 0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clear_z_is_per_tile() {
        let mut rf = RegisterFile::new();
        rf.set_x(0, [1.0; 16]);
        rf.set_y(0, [1.0; 16]);
        rf.fma32(0, 0, 0);
        rf.fma32(1, 0, 0);
        rf.clear_z(0);
        assert!(rf.z_row(0, 5).iter().all(|&v| v == 0.0));
        assert!(rf.z_row(1, 5).iter().all(|&v| v == 1.0));
    }

    #[test]
    fn z_row_mut_allows_store_paths() {
        let mut rf = RegisterFile::new();
        rf.z_row_mut(3, 9)[4] = 42.0;
        assert_eq!(rf.z_row(3, 9)[4], 42.0);
        rf.clear_all();
        assert_eq!(rf.z_row(3, 9)[4], 0.0);
    }
}
