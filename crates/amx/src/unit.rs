//! The AMX execution unit: functional state + cycle accounting.
//!
//! One unit serves one performance cluster (paper §2.1: "AMX does not
//! execute independently but is controlled via instructions from the
//! CPU"). Executing an [`Instruction`] mutates the register file with real
//! FP32 arithmetic and advances the cycle counter; elapsed simulated time
//! is `cycles / p_cluster_clock`.

use crate::insn::Instruction;
use crate::regs::{RegisterFile, TILE_F32_LANES, X_REGS, Y_REGS, Z_F32_TILES};
use oranges_soc::chip::ChipGeneration;
use oranges_soc::time::SimDuration;
use std::fmt;

/// Errors raised by the execution unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmxError {
    /// Register index outside its pool.
    BadRegister {
        /// Pool name ("x", "y", "z-tile", "z-row").
        pool: &'static str,
        /// Offending index.
        index: usize,
    },
    /// Memory operand out of bounds.
    BadOperand {
        /// Requested element offset.
        offset: usize,
        /// Elements required.
        needed: usize,
        /// Bound memory length.
        len: usize,
    },
    /// The chip has no such capability (e.g. SME streaming on pre-M4).
    Unsupported(&'static str),
}

impl fmt::Display for AmxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmxError::BadRegister { pool, index } => {
                write!(f, "register index {index} out of range for {pool} pool")
            }
            AmxError::BadOperand {
                offset,
                needed,
                len,
            } => write!(
                f,
                "memory operand [{offset}..{}] out of bounds for length {len}",
                offset + needed
            ),
            AmxError::Unsupported(what) => write!(f, "unsupported on this generation: {what}"),
        }
    }
}

impl std::error::Error for AmxError {}

/// One AMX unit attached to a P-cluster.
#[derive(Debug, Clone)]
pub struct AmxUnit {
    generation: ChipGeneration,
    regs: RegisterFile,
    cycles: f64,
    flops: u64,
    instructions: u64,
}

impl AmxUnit {
    /// A unit of the given chip generation.
    pub fn new(generation: ChipGeneration) -> Self {
        AmxUnit {
            generation,
            regs: RegisterFile::new(),
            cycles: 0.0,
            flops: 0,
            instructions: 0,
        }
    }

    /// Chip generation this unit belongs to.
    pub fn generation(&self) -> ChipGeneration {
        self.generation
    }

    /// Register file (read access, for inspection/tests).
    pub fn regs(&self) -> &RegisterFile {
        &self.regs
    }

    /// Retired instruction count.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Accumulated cycles.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Retired FP32 FLOPs.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Elapsed simulated time at the P-cluster clock.
    pub fn elapsed(&self) -> SimDuration {
        let ghz = self.generation.spec().p_clock_ghz;
        SimDuration::from_secs_f64(self.cycles / (ghz * 1e9))
    }

    /// Theoretical FP32 GFLOPS of this unit (512 FLOPs per cycle at the
    /// P-cluster clock — see `ChipSpec::amx_gflops`).
    pub fn peak_gflops(&self) -> f64 {
        self.generation.spec().amx_gflops()
    }

    /// Reset performance counters (register state is preserved).
    pub fn reset_counters(&mut self) {
        self.cycles = 0.0;
        self.flops = 0;
        self.instructions = 0;
    }

    /// Execute one instruction against bound memory `mem`.
    pub fn execute(&mut self, insn: Instruction, mem: &mut [f32]) -> Result<(), AmxError> {
        match insn {
            Instruction::LdX { reg, offset } => {
                Self::check_reg("x", reg, X_REGS)?;
                let lanes = Self::load_lanes(mem, offset)?;
                self.regs.set_x(reg, lanes);
            }
            Instruction::LdY { reg, offset } => {
                Self::check_reg("y", reg, Y_REGS)?;
                let lanes = Self::load_lanes(mem, offset)?;
                self.regs.set_y(reg, lanes);
            }
            Instruction::Fma32 { tile, xr, yr } => {
                Self::check_reg("z-tile", tile, Z_F32_TILES)?;
                Self::check_reg("x", xr, X_REGS)?;
                Self::check_reg("y", yr, Y_REGS)?;
                self.regs.fma32(tile, xr, yr);
            }
            Instruction::StZ { tile, row, offset } => {
                Self::check_reg("z-tile", tile, Z_F32_TILES)?;
                Self::check_reg("z-row", row, TILE_F32_LANES)?;
                if offset + TILE_F32_LANES > mem.len() {
                    return Err(AmxError::BadOperand {
                        offset,
                        needed: TILE_F32_LANES,
                        len: mem.len(),
                    });
                }
                let row_data = *self.regs.z_row(tile, row);
                mem[offset..offset + TILE_F32_LANES].copy_from_slice(&row_data);
            }
            Instruction::ClrZ { tile } => {
                Self::check_reg("z-tile", tile, Z_F32_TILES)?;
                self.regs.clear_z(tile);
            }
        }
        self.cycles += insn.cycles();
        self.flops += insn.flops();
        self.instructions += 1;
        Ok(())
    }

    /// Execute a straight-line program.
    pub fn run(&mut self, program: &[Instruction], mem: &mut [f32]) -> Result<(), AmxError> {
        for insn in program {
            self.execute(*insn, mem)?;
        }
        Ok(())
    }

    fn check_reg(pool: &'static str, index: usize, limit: usize) -> Result<(), AmxError> {
        if index < limit {
            Ok(())
        } else {
            Err(AmxError::BadRegister { pool, index })
        }
    }

    fn load_lanes(mem: &[f32], offset: usize) -> Result<[f32; TILE_F32_LANES], AmxError> {
        if offset + TILE_F32_LANES > mem.len() {
            return Err(AmxError::BadOperand {
                offset,
                needed: TILE_F32_LANES,
                len: mem.len(),
            });
        }
        let mut lanes = [0.0f32; TILE_F32_LANES];
        lanes.copy_from_slice(&mem[offset..offset + TILE_F32_LANES]);
        Ok(lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> AmxUnit {
        AmxUnit::new(ChipGeneration::M1)
    }

    #[test]
    fn load_fma_store_round_trip() {
        let mut u = unit();
        let mut mem = vec![0.0f32; 64];
        for i in 0..16 {
            mem[i] = (i + 1) as f32; // x operand
            mem[16 + i] = 2.0; // y operand
        }
        u.execute(Instruction::LdX { reg: 0, offset: 0 }, &mut mem)
            .unwrap();
        u.execute(Instruction::LdY { reg: 0, offset: 16 }, &mut mem)
            .unwrap();
        u.execute(
            Instruction::Fma32 {
                tile: 0,
                xr: 0,
                yr: 0,
            },
            &mut mem,
        )
        .unwrap();
        u.execute(
            Instruction::StZ {
                tile: 0,
                row: 0,
                offset: 32,
            },
            &mut mem,
        )
        .unwrap();
        for j in 0..16 {
            assert_eq!(mem[32 + j], 2.0 * (j + 1) as f32);
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut u = unit();
        let mut mem = vec![1.0f32; 32];
        u.execute(Instruction::LdX { reg: 0, offset: 0 }, &mut mem)
            .unwrap();
        u.execute(Instruction::LdY { reg: 0, offset: 16 }, &mut mem)
            .unwrap();
        u.execute(
            Instruction::Fma32 {
                tile: 0,
                xr: 0,
                yr: 0,
            },
            &mut mem,
        )
        .unwrap();
        assert_eq!(u.instructions(), 3);
        assert_eq!(u.flops(), 512);
        assert_eq!(u.cycles(), 2.0); // 0.5 + 0.5 + 1.0
        u.reset_counters();
        assert_eq!(u.instructions(), 0);
        assert_eq!(u.flops(), 0);
        // Register state preserved across counter reset.
        assert_eq!(u.regs().z_row(0, 0)[0], 1.0);
    }

    #[test]
    fn elapsed_time_uses_p_clock() {
        let mut u = AmxUnit::new(ChipGeneration::M1); // 3.2 GHz
        let mut mem = vec![0.0f32; 32];
        for _ in 0..3200 {
            u.execute(
                Instruction::Fma32 {
                    tile: 0,
                    xr: 0,
                    yr: 0,
                },
                &mut mem,
            )
            .unwrap();
        }
        // 3200 cycles at 3.2 GHz = 1 µs.
        assert_eq!(u.elapsed().as_nanos(), 1_000);
    }

    #[test]
    fn peak_gflops_matches_spec() {
        for gen in ChipGeneration::ALL {
            let u = AmxUnit::new(gen);
            assert_eq!(u.peak_gflops(), gen.spec().amx_gflops());
        }
    }

    #[test]
    fn bad_register_indices_are_rejected() {
        let mut u = unit();
        let mut mem = vec![0.0f32; 32];
        assert!(matches!(
            u.execute(Instruction::LdX { reg: 8, offset: 0 }, &mut mem),
            Err(AmxError::BadRegister {
                pool: "x",
                index: 8
            })
        ));
        assert!(matches!(
            u.execute(
                Instruction::Fma32 {
                    tile: 4,
                    xr: 0,
                    yr: 0
                },
                &mut mem
            ),
            Err(AmxError::BadRegister { pool: "z-tile", .. })
        ));
        assert!(matches!(
            u.execute(
                Instruction::StZ {
                    tile: 0,
                    row: 16,
                    offset: 0
                },
                &mut mem
            ),
            Err(AmxError::BadRegister { pool: "z-row", .. })
        ));
    }

    #[test]
    fn out_of_bounds_operands_are_rejected() {
        let mut u = unit();
        let mut mem = vec![0.0f32; 20];
        assert!(matches!(
            u.execute(Instruction::LdX { reg: 0, offset: 8 }, &mut mem),
            Err(AmxError::BadOperand {
                offset: 8,
                needed: 16,
                len: 20
            })
        ));
        assert!(u
            .execute(Instruction::LdX { reg: 0, offset: 4 }, &mut mem)
            .is_ok());
        // Failed instructions do not retire.
        assert_eq!(u.instructions(), 1);
    }

    #[test]
    fn run_executes_programs() {
        let mut u = unit();
        let mut mem = vec![1.0f32; 48];
        let program = vec![
            Instruction::LdX { reg: 0, offset: 0 },
            Instruction::LdY { reg: 0, offset: 16 },
            Instruction::ClrZ { tile: 0 },
            Instruction::Fma32 {
                tile: 0,
                xr: 0,
                yr: 0,
            },
            Instruction::Fma32 {
                tile: 0,
                xr: 0,
                yr: 0,
            },
            Instruction::StZ {
                tile: 0,
                row: 0,
                offset: 32,
            },
        ];
        u.run(&program, &mut mem).unwrap();
        assert!(mem[32..48].iter().all(|&v| v == 2.0));
        assert_eq!(u.flops(), 1024);
    }

    #[test]
    fn error_display() {
        assert!(AmxError::Unsupported("sme").to_string().contains("sme"));
        assert!(AmxError::BadOperand {
            offset: 1,
            needed: 16,
            len: 4
        }
        .to_string()
        .contains("[1..17]"));
    }
}
