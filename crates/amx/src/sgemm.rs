//! Blocked SGEMM on the AMX unit.
//!
//! This is (a stand-in for) the kernel Accelerate dispatches to when the
//! paper calls `cblas_sgemm` (Listing 1): C := A·B over 16×16 output tiles,
//! each computed as a sum of `fma32` outer products. Full tiles run on the
//! simulated unit instruction-by-instruction (real arithmetic, counted
//! cycles); edge remainders (when `n` is not a multiple of 16) run on the
//! host-side cache-blocked macrokernel ([`oranges_kernels::block`]) with
//! block sizes from the chip's per-core L1/L2 geometry and their cycles
//! charged at NEON rate.

use crate::insn::Instruction;
use crate::regs::TILE_F32_LANES;
use crate::unit::{AmxError, AmxUnit};
use oranges_kernels::{sgemm_f32_blocked, CacheParams};
use oranges_soc::chip::ChipGeneration;
use oranges_soc::time::SimDuration;

/// Result of one AMX SGEMM run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgemmStats {
    /// FP32 FLOPs retired on the AMX unit.
    pub amx_flops: u64,
    /// FP32 FLOPs retired by the scalar edge loop.
    pub scalar_flops: u64,
    /// Total elapsed simulated time.
    pub elapsed: SimDuration,
    /// AMX instructions retired.
    pub instructions: u64,
}

impl SgemmStats {
    /// All FLOPs.
    pub fn total_flops(&self) -> u64 {
        self.amx_flops + self.scalar_flops
    }
}

/// AMX-blocked SGEMM driver for one chip generation.
#[derive(Debug)]
pub struct AmxSgemm {
    unit: AmxUnit,
}

impl AmxSgemm {
    /// Driver for a generation.
    pub fn new(generation: ChipGeneration) -> Self {
        AmxSgemm {
            unit: AmxUnit::new(generation),
        }
    }

    /// The underlying unit.
    pub fn unit(&self) -> &AmxUnit {
        &self.unit
    }

    /// `c := a · b` for row-major square `n×n` FP32 matrices.
    ///
    /// `c` is overwritten. Returns per-run statistics (the unit's counters
    /// are reset at entry).
    pub fn sgemm(
        &mut self,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) -> Result<SgemmStats, AmxError> {
        assert_eq!(a.len(), n * n, "a must be n*n");
        assert_eq!(b.len(), n * n, "b must be n*n");
        assert_eq!(c.len(), n * n, "c must be n*n");
        self.unit.reset_counters();

        let t = TILE_F32_LANES;
        let full = n / t * t; // extent covered by full tiles
        let mut a_panel = vec![0.0f32; t * n]; // A panel, staged once per tile row
        let mut b_row = vec![0.0f32; t]; // hoisted LdX staging buffer
        let mut out_rows = vec![0.0f32; t * t]; // Z spill area

        for bi in (0..full).step_by(t) {
            // Stage the transposed A panel A[bi..bi+16][0..n] once per
            // tile row: a_panel[k*16 + r] = A[bi+r][k]. Every bj tile of
            // this row reuses it, and LdY reads it in place by offset.
            for r in 0..t {
                let a_row = &a[(bi + r) * n..(bi + r) * n + n];
                for (k, &v) in a_row.iter().enumerate() {
                    a_panel[k * t + r] = v;
                }
            }
            for bj in (0..full).step_by(t) {
                self.unit
                    .execute(Instruction::ClrZ { tile: 0 }, &mut out_rows)?;
                for k in 0..n {
                    self.unit.execute(
                        Instruction::LdY {
                            reg: 0,
                            offset: k * t,
                        },
                        &mut a_panel,
                    )?;
                    // B row segment B[k][bj..bj+16] is contiguous.
                    let b_off = k * n + bj;
                    b_row.copy_from_slice(&b[b_off..b_off + t]);
                    self.unit
                        .execute(Instruction::LdX { reg: 0, offset: 0 }, &mut b_row)?;
                    self.unit.execute(
                        Instruction::Fma32 {
                            tile: 0,
                            xr: 0,
                            yr: 0,
                        },
                        &mut b_row,
                    )?;
                }
                // Spill the tile.
                for row in 0..t {
                    self.unit.execute(
                        Instruction::StZ {
                            tile: 0,
                            row,
                            offset: row * t,
                        },
                        &mut out_rows,
                    )?;
                }
                for row in 0..t {
                    let c_off = (bi + row) * n + bj;
                    c[c_off..c_off + t].copy_from_slice(&out_rows[row * t..(row + 1) * t]);
                }
            }
        }

        // Macrokernel cleanup for edge rows/columns (n not a multiple of
        // 16): the L-shaped remainder is two rectangular GEMMs — the
        // bottom row strip and the right column strip — each computed by
        // the cache-blocked panel kernel with this chip's L1/L2 geometry
        // (bitwise-identical to the scalar triple loop it replaced).
        let mut scalar_flops = 0u64;
        if full < n {
            let spec = self.unit.generation().spec();
            let cache = CacheParams::new(
                spec.l1_p_kib as usize * 1024,
                spec.l2_p_mib as usize * 1024 * 1024,
            );
            // Rows full..n × all columns.
            sgemm_f32_blocked(
                n - full,
                n,
                n,
                &a[full * n..],
                n,
                b,
                n,
                &mut c[full * n..],
                n,
                &cache,
            );
            // Rows 0..full × columns full..n.
            if full > 0 {
                sgemm_f32_blocked(
                    full,
                    n - full,
                    n,
                    a,
                    n,
                    &b[full..],
                    n,
                    &mut c[full..],
                    n,
                    &cache,
                );
            }
            scalar_flops = 2 * (n as u64) * ((n * n - full * full) as u64);
        }

        // Charge scalar work at single-core NEON rate.
        let scalar_time = if scalar_flops > 0 {
            let spec = self.unit.generation().spec();
            let neon_per_core = spec.p_clock_ghz
                * (oranges_soc::chip::P_CORE_NEON_PIPES
                    * oranges_soc::chip::NEON_F32_FLOPS_PER_PIPE_CYCLE) as f64;
            SimDuration::from_secs_f64(scalar_flops as f64 / (neon_per_core * 1e9))
        } else {
            SimDuration::ZERO
        };

        Ok(SgemmStats {
            amx_flops: self.unit.flops(),
            scalar_flops,
            elapsed: self.unit.elapsed() + scalar_time,
            instructions: self.unit.instructions(),
        })
    }
}

/// Scalar reference SGEMM (`c := a · b`) used by tests and verification —
/// the microkernel's scalar twin, so "reference" and "twin" can never
/// drift apart.
pub fn reference_sgemm(n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    oranges_kernels::gemm::sgemm_f32_scalar(n, n, n, a, n, b, n, c, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deterministic_matrix(n: usize, seed: u32) -> Vec<f32> {
        // Small LCG keeps tests dependency-free and deterministic.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..n * n)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1u32 << 24) as f32
            })
            .collect()
    }

    fn assert_close(actual: &[f32], expected: &[f32], n: usize) {
        for (idx, (x, y)) in actual.iter().zip(expected.iter()).enumerate() {
            let tol = 1e-4 * n as f32;
            assert!(
                (x - y).abs() <= tol.max(1e-5),
                "mismatch at {idx}: {x} vs {y} (n={n})"
            );
        }
    }

    #[test]
    fn matches_reference_on_tile_multiple() {
        for n in [16, 32, 48] {
            let a = deterministic_matrix(n, 1);
            let b = deterministic_matrix(n, 2);
            let mut c = vec![0.0f32; n * n];
            let mut expected = vec![0.0f32; n * n];
            let mut driver = AmxSgemm::new(ChipGeneration::M1);
            let stats = driver.sgemm(n, &a, &b, &mut c).unwrap();
            reference_sgemm(n, &a, &b, &mut expected);
            assert_close(&c, &expected, n);
            assert_eq!(stats.scalar_flops, 0);
            assert_eq!(stats.amx_flops, 2 * (n as u64).pow(3));
        }
    }

    #[test]
    fn matches_reference_on_ragged_sizes() {
        for n in [5, 17, 30, 33] {
            let a = deterministic_matrix(n, 3);
            let b = deterministic_matrix(n, 4);
            let mut c = vec![0.0f32; n * n];
            let mut expected = vec![0.0f32; n * n];
            let mut driver = AmxSgemm::new(ChipGeneration::M2);
            let stats = driver.sgemm(n, &a, &b, &mut c).unwrap();
            reference_sgemm(n, &a, &b, &mut expected);
            assert_close(&c, &expected, n);
            assert!(stats.scalar_flops > 0, "n={n} needs edge cleanup");
            // Total flops ≈ 2n³ (each output element costs 2n).
            assert_eq!(stats.total_flops(), 2 * (n as u64).pow(3));
        }
    }

    #[test]
    fn identity_is_preserved() {
        let n = 32;
        let mut identity = vec![0.0f32; n * n];
        for i in 0..n {
            identity[i * n + i] = 1.0;
        }
        let m = deterministic_matrix(n, 7);
        let mut c = vec![0.0f32; n * n];
        let mut driver = AmxSgemm::new(ChipGeneration::M3);
        driver.sgemm(n, &identity, &m, &mut c).unwrap();
        assert_close(&c, &m, n);
    }

    #[test]
    fn elapsed_time_is_positive_and_scales() {
        let mut driver = AmxSgemm::new(ChipGeneration::M4);
        let run = |driver: &mut AmxSgemm, n: usize| {
            let a = deterministic_matrix(n, 1);
            let b = deterministic_matrix(n, 2);
            let mut c = vec![0.0f32; n * n];
            driver.sgemm(n, &a, &b, &mut c).unwrap().elapsed
        };
        let t32 = run(&mut driver, 32);
        let t64 = run(&mut driver, 64);
        assert!(t32.as_nanos() > 0);
        // Cubic growth: 64³/32³ = 8×.
        let ratio = t64.as_secs_f64() / t32.as_secs_f64();
        assert!(ratio > 6.0 && ratio < 10.0, "ratio {ratio}");
    }

    #[test]
    fn faster_generations_finish_sooner() {
        let n = 32;
        let a = deterministic_matrix(n, 1);
        let b = deterministic_matrix(n, 2);
        let mut elapsed = Vec::new();
        for gen in ChipGeneration::ALL {
            let mut driver = AmxSgemm::new(gen);
            let mut c = vec![0.0f32; n * n];
            elapsed.push(driver.sgemm(n, &a, &b, &mut c).unwrap().elapsed);
        }
        for pair in elapsed.windows(2) {
            assert!(
                pair[1] <= pair[0],
                "later generations must not be slower: {elapsed:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "a must be n*n")]
    fn dimension_mismatch_panics() {
        let mut driver = AmxSgemm::new(ChipGeneration::M1);
        let mut c = vec![0.0f32; 4];
        let _ = driver.sgemm(2, &[0.0; 3], &[0.0; 4], &mut c);
    }
}
