//! Campaign specifications: what to run, on what, with how many workers.

use oranges::experiments::{
    contention::ContentionExperiment, fig1::Fig1Experiment, fig2::Fig2Experiment,
    fig3::Fig3Experiment, fig4::Fig4Experiment, mixed_precision::MixedPrecisionExperiment,
    references::ReferencesExperiment, tables::TablesExperiment, thermal::ThermalExperiment,
    Experiment,
};
use oranges_harness::json::{self, JsonValue};
use oranges_soc::chip::ChipGeneration;
use std::fmt;
use std::sync::Arc;

/// The paper artifacts (and extensions) a campaign can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentKind {
    /// Figure 1 — STREAM bandwidth.
    Fig1,
    /// Figure 2 — GFLOPS grid.
    Fig2,
    /// Figure 3 — power grid.
    Fig3,
    /// Figure 4 — efficiency grid.
    Fig4,
    /// Tables 1–3 (chip-independent).
    Tables,
    /// HPC Perspective comparisons R1–R3 (chip-independent).
    References,
    /// Extension: CPU+GPU memory contention.
    Contention,
    /// Extension: sustained-load thermal behaviour.
    Thermal,
    /// Extension: mixed-precision headroom.
    MixedPrecision,
}

impl ExperimentKind {
    /// Every kind, in report order.
    pub const ALL: [ExperimentKind; 9] = [
        ExperimentKind::Fig1,
        ExperimentKind::Fig2,
        ExperimentKind::Fig3,
        ExperimentKind::Fig4,
        ExperimentKind::Tables,
        ExperimentKind::References,
        ExperimentKind::Contention,
        ExperimentKind::Thermal,
        ExperimentKind::MixedPrecision,
    ];

    /// The four paper figures — the acceptance grid.
    pub const FIGURES: [ExperimentKind; 4] = [
        ExperimentKind::Fig1,
        ExperimentKind::Fig2,
        ExperimentKind::Fig3,
        ExperimentKind::Fig4,
    ];

    /// Whether this kind expands into one unit per chip.
    pub fn per_chip(&self) -> bool {
        !matches!(self, ExperimentKind::Tables | ExperimentKind::References)
    }

    /// The stable artifact id this kind instantiates — identical to
    /// [`Experiment::id`] of the instantiated unit, and the token the
    /// JSON spec format uses.
    pub fn id(&self) -> &'static str {
        match self {
            ExperimentKind::Fig1 => "fig1",
            ExperimentKind::Fig2 => "fig2",
            ExperimentKind::Fig3 => "fig3",
            ExperimentKind::Fig4 => "fig4",
            ExperimentKind::Tables => "tables",
            ExperimentKind::References => "references",
            ExperimentKind::Contention => "contention",
            ExperimentKind::Thermal => "thermal",
            ExperimentKind::MixedPrecision => "mixed_precision",
        }
    }

    /// Parse an artifact id back into a kind (the inverse of
    /// [`id`](ExperimentKind::id)).
    pub fn parse(id: &str) -> Result<Self, SpecParseError> {
        ExperimentKind::ALL
            .into_iter()
            .find(|kind| kind.id() == id)
            .ok_or_else(|| SpecParseError(format!("unknown experiment id '{id}'")))
    }

    /// Instantiate the unit for `chip` (`None` for chip-independent
    /// kinds) under `spec`'s overrides.
    pub fn instantiate(
        &self,
        chip: Option<ChipGeneration>,
        spec: &CampaignSpec,
    ) -> Arc<dyn Experiment> {
        let chip_of =
            |chip: Option<ChipGeneration>| chip.expect("per-chip kind expands with a chip");
        match self {
            ExperimentKind::Fig1 => Arc::new(Fig1Experiment {
                chip: chip_of(chip),
            }),
            ExperimentKind::Fig2 => {
                let mut experiment = Fig2Experiment::paper(chip_of(chip));
                if let Some(sizes) = &spec.gemm_sizes {
                    experiment.sizes = sizes.clone();
                }
                if let Some(ceiling) = spec.verify_max_flops {
                    experiment.verify_max_flops = ceiling;
                }
                Arc::new(experiment)
            }
            ExperimentKind::Fig3 => {
                let mut experiment = Fig3Experiment::paper(chip_of(chip));
                if let Some(sizes) = &spec.power_sizes {
                    experiment.sizes = sizes.clone();
                }
                Arc::new(experiment)
            }
            ExperimentKind::Fig4 => {
                let mut experiment = Fig4Experiment::paper(chip_of(chip));
                if let Some(sizes) = &spec.power_sizes {
                    experiment.sizes = sizes.clone();
                }
                Arc::new(experiment)
            }
            ExperimentKind::Tables => Arc::new(TablesExperiment),
            ExperimentKind::References => Arc::new(ReferencesExperiment),
            ExperimentKind::Contention => Arc::new(ContentionExperiment {
                chip: chip_of(chip),
            }),
            ExperimentKind::Thermal => {
                Arc::new(ThermalExperiment::sustained_cutlass(chip_of(chip)))
            }
            ExperimentKind::MixedPrecision => Arc::new(MixedPrecisionExperiment {
                chip: chip_of(chip),
            }),
        }
    }
}

/// What a campaign runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Experiment kinds to schedule.
    pub experiments: Vec<ExperimentKind>,
    /// Chips the per-chip kinds expand over.
    pub chips: Vec<ChipGeneration>,
    /// Override Figure 2's size sweep (`None` = the paper's sizes).
    pub gemm_sizes: Option<Vec<usize>>,
    /// Override Figures 3/4's size sweep (`None` = the paper's sizes).
    pub power_sizes: Option<Vec<usize>>,
    /// Override Figure 2's verification FLOP ceiling.
    pub verify_max_flops: Option<u64>,
    /// Worker threads (clamped to ≥ 1 by the scheduler).
    pub workers: usize,
    /// Run only shard `(index, count)` of the expanded plan (`None` =
    /// the whole plan). The union of all `count` shards — across
    /// processes, each with its own cache file — equals the unsharded
    /// campaign.
    pub shard: Option<(usize, usize)>,
}

impl CampaignSpec {
    /// A spec over `experiments` × `chips` with a default worker count
    /// of one per chip.
    pub fn new(experiments: Vec<ExperimentKind>, chips: Vec<ChipGeneration>) -> Self {
        let workers = chips.len().max(1);
        CampaignSpec {
            experiments,
            chips,
            gemm_sizes: None,
            power_sizes: None,
            verify_max_flops: None,
            workers,
            shard: None,
        }
    }

    /// The acceptance grid: Figures 1–4 across M1–M4 at the paper's
    /// full sizes.
    pub fn paper_grid() -> Self {
        CampaignSpec::new(
            ExperimentKind::FIGURES.to_vec(),
            ChipGeneration::ALL.to_vec(),
        )
    }

    /// Everything: figures, tables, references, and the three
    /// extensions, across all chips.
    pub fn full() -> Self {
        CampaignSpec::new(ExperimentKind::ALL.to_vec(), ChipGeneration::ALL.to_vec())
    }

    /// A fast grid for tests: all four figures on all chips but with
    /// reduced size sweeps and no functional verification.
    pub fn smoke() -> Self {
        CampaignSpec::new(
            ExperimentKind::FIGURES.to_vec(),
            ChipGeneration::ALL.to_vec(),
        )
        .with_gemm_sizes(vec![256, 1024])
        .with_power_sizes(vec![2048, 4096])
        .with_verify_max_flops(0)
    }

    /// Set the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Override Figure 2's size sweep.
    pub fn with_gemm_sizes(mut self, sizes: Vec<usize>) -> Self {
        self.gemm_sizes = Some(sizes);
        self
    }

    /// Override Figures 3/4's size sweep.
    pub fn with_power_sizes(mut self, sizes: Vec<usize>) -> Self {
        self.power_sizes = Some(sizes);
        self
    }

    /// Override Figure 2's verification ceiling.
    pub fn with_verify_max_flops(mut self, flops: u64) -> Self {
        self.verify_max_flops = Some(flops);
        self
    }

    /// Restrict the campaign to shard `index` of `count` (see
    /// [`Plan::shard`](crate::plan::Plan::shard)). A degenerate
    /// assignment — `count == 0` or `index >= count` — is a typed
    /// [`SpecParseError`] at spec-build time, so a bad CLI flag or wire
    /// document fails before any unit is scheduled, never mid-campaign.
    pub fn with_shard(mut self, index: usize, count: usize) -> Result<Self, SpecParseError> {
        validate_shard(index, count)?;
        self.shard = Some((index, count));
        Ok(self)
    }

    /// Serialize to the JSON wire format the campaign service and the
    /// shard orchestrator exchange. Stable field order; `None` overrides
    /// are omitted, so the output stays minimal and byte-deterministic.
    pub fn to_json(&self) -> String {
        let ids = self
            .experiments
            .iter()
            .map(|kind| JsonValue::String(kind.id().to_string()))
            .collect();
        let chips = self
            .chips
            .iter()
            .map(|chip| JsonValue::String(chip.name().to_string()))
            .collect();
        let sizes = |sizes: &[usize]| {
            JsonValue::Array(
                sizes
                    .iter()
                    .map(|&n| JsonValue::integer(n as u64))
                    .collect(),
            )
        };
        let mut fields = vec![
            ("experiments".to_string(), JsonValue::Array(ids)),
            ("chips".to_string(), JsonValue::Array(chips)),
            (
                "workers".to_string(),
                JsonValue::integer(self.workers as u64),
            ),
        ];
        if let Some(gemm) = &self.gemm_sizes {
            fields.push(("gemm_sizes".to_string(), sizes(gemm)));
        }
        if let Some(power) = &self.power_sizes {
            fields.push(("power_sizes".to_string(), sizes(power)));
        }
        if let Some(flops) = self.verify_max_flops {
            fields.push(("verify_max_flops".to_string(), JsonValue::integer(flops)));
        }
        if let Some((index, count)) = self.shard {
            fields.push((
                "shard".to_string(),
                JsonValue::Array(vec![
                    JsonValue::integer(index as u64),
                    JsonValue::integer(count as u64),
                ]),
            ));
        }
        JsonValue::Object(fields).to_json_string()
    }

    /// Parse a spec from its JSON wire format (the inverse of
    /// [`to_json`](CampaignSpec::to_json)).
    pub fn from_json(text: &str) -> Result<Self, SpecParseError> {
        let value = json::parse(text).map_err(|e| SpecParseError(e.to_string()))?;
        CampaignSpec::from_json_value(&value)
    }

    /// Parse a spec from an already-parsed JSON tree (the shape a
    /// service request's `body` carries).
    pub fn from_json_value(value: &JsonValue) -> Result<Self, SpecParseError> {
        let string_list = |field: &str| -> Result<Vec<&str>, SpecParseError> {
            value
                .get(field)
                .and_then(JsonValue::as_array)
                .ok_or_else(|| SpecParseError(format!("spec has no '{field}' array")))?
                .iter()
                .map(|item| {
                    item.as_str()
                        .ok_or_else(|| SpecParseError(format!("'{field}' entries must be strings")))
                })
                .collect()
        };
        let size_list = |field: &str| -> Result<Option<Vec<usize>>, SpecParseError> {
            match value.get(field) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(JsonValue::Array(items)) => items
                    .iter()
                    .map(|item| {
                        item.as_u64().map(|n| n as usize).ok_or_else(|| {
                            SpecParseError(format!("'{field}' entries must be whole numbers"))
                        })
                    })
                    .collect::<Result<Vec<usize>, _>>()
                    .map(Some),
                Some(other) => Err(SpecParseError(format!(
                    "'{field}' is not an array: {other:?}"
                ))),
            }
        };

        let experiments = string_list("experiments")?
            .into_iter()
            .map(ExperimentKind::parse)
            .collect::<Result<Vec<_>, _>>()?;
        let chips = string_list("chips")?
            .into_iter()
            .map(|name| ChipGeneration::parse(name).map_err(|e| SpecParseError(e.to_string())))
            .collect::<Result<Vec<_>, _>>()?;

        let mut spec = CampaignSpec::new(experiments, chips);
        if let Some(workers) = value.get("workers") {
            let workers = workers
                .as_u64()
                .filter(|&w| w > 0)
                .ok_or_else(|| SpecParseError("'workers' must be a positive integer".into()))?;
            spec.workers = workers as usize;
        }
        spec.gemm_sizes = size_list("gemm_sizes")?;
        spec.power_sizes = size_list("power_sizes")?;
        spec.verify_max_flops = match value.get("verify_max_flops") {
            None | Some(JsonValue::Null) => None,
            Some(flops) => Some(flops.as_u64().ok_or_else(|| {
                SpecParseError("'verify_max_flops' must be a non-negative integer".into())
            })?),
        };
        match value.get("shard") {
            None | Some(JsonValue::Null) => {}
            Some(shard) => {
                let pair = shard
                    .as_array()
                    .filter(|items| items.len() == 2)
                    .ok_or_else(|| {
                        SpecParseError("'shard' must be an [index, count] pair".into())
                    })?;
                let (index, count) = match (pair[0].as_u64(), pair[1].as_u64()) {
                    (Some(index), Some(count)) => (index as usize, count as usize),
                    _ => {
                        return Err(SpecParseError(format!(
                            "'shard' pair {shard:?} is not a valid index/count"
                        )))
                    }
                };
                validate_shard(index, count)?;
                spec.shard = Some((index, count));
            }
        }
        Ok(spec)
    }
}

/// Check a shard assignment: `count` must be positive and `index` in
/// range. The one validation every shard entry point shares —
/// [`CampaignSpec::with_shard`], the JSON spec parser, and
/// [`Plan::shard`](crate::plan::Plan::shard) — so a degenerate
/// assignment is a typed error everywhere, never a panic or a silent
/// empty plan.
pub(crate) fn validate_shard(index: usize, count: usize) -> Result<(), SpecParseError> {
    if count == 0 {
        return Err(SpecParseError(
            "shard count must be positive (0 shards cannot cover a plan)".to_string(),
        ));
    }
    if index >= count {
        return Err(SpecParseError(format!(
            "shard index {index} out of range for {count} shards"
        )));
    }
    Ok(())
}

/// A spec document that does not describe a runnable campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError(pub(crate) String);

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec parse error: {}", self.0)
    }
}

impl std::error::Error for SpecParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_covers_figures_times_chips() {
        let spec = CampaignSpec::paper_grid();
        assert_eq!(spec.experiments.len(), 4);
        assert_eq!(spec.chips.len(), 4);
        assert!(spec.experiments.iter().all(|k| k.per_chip()));
    }

    #[test]
    fn chip_independent_kinds_do_not_expand_per_chip() {
        assert!(!ExperimentKind::Tables.per_chip());
        assert!(!ExperimentKind::References.per_chip());
        assert_eq!(
            ExperimentKind::ALL.iter().filter(|k| !k.per_chip()).count(),
            2
        );
    }

    #[test]
    fn kind_ids_round_trip_and_match_experiment_ids() {
        for kind in ExperimentKind::ALL {
            assert_eq!(ExperimentKind::parse(kind.id()), Ok(kind));
            // The JSON token must equal the instantiated unit's id —
            // they share the cache-key namespace.
            let chip = kind.per_chip().then_some(ChipGeneration::M1);
            let unit = kind.instantiate(chip, &CampaignSpec::smoke());
            assert_eq!(unit.id(), kind.id());
        }
        assert!(ExperimentKind::parse("fig9").is_err());
    }

    #[test]
    fn spec_json_round_trips_exactly() {
        let minimal = CampaignSpec::paper_grid();
        assert_eq!(CampaignSpec::from_json(&minimal.to_json()), Ok(minimal));

        let full = CampaignSpec::new(
            vec![ExperimentKind::Fig2, ExperimentKind::MixedPrecision],
            vec![ChipGeneration::M1, ChipGeneration::M4],
        )
        .with_workers(6)
        .with_gemm_sizes(vec![256, 1024])
        .with_power_sizes(vec![2048])
        .with_verify_max_flops(0)
        .with_shard(1, 3)
        .expect("valid shard");
        let json = full.to_json();
        assert_eq!(CampaignSpec::from_json(&json), Ok(full));
        // Byte-deterministic: re-serializing the parsed spec reproduces
        // the same document.
        assert_eq!(CampaignSpec::from_json(&json).unwrap().to_json(), json);
    }

    #[test]
    fn spec_json_rejects_bad_documents() {
        for bad in [
            "not json",
            "{}",
            r#"{"experiments":["fig9"],"chips":["M1"]}"#,
            r#"{"experiments":["fig1"],"chips":["M9"]}"#,
            r#"{"experiments":["fig1"],"chips":["M1"],"workers":0}"#,
            r#"{"experiments":["fig1"],"chips":["M1"],"gemm_sizes":[1.5]}"#,
            r#"{"experiments":["fig1"],"chips":["M1"],"shard":[3,3]}"#,
            r#"{"experiments":["fig1"],"chips":["M1"],"shard":[0]}"#,
            r#"{"experiments":["fig1"],"chips":["M1"],"shard":[0,0]}"#,
        ] {
            assert!(CampaignSpec::from_json(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn degenerate_shards_are_typed_errors_at_build_time() {
        let error = CampaignSpec::smoke()
            .with_shard(0, 0)
            .expect_err("0 shards is degenerate");
        assert!(error.to_string().contains("must be positive"), "{error}");
        let error = CampaignSpec::smoke()
            .with_shard(4, 4)
            .expect_err("index past the end");
        assert!(error.to_string().contains("out of range"), "{error}");
        assert!(CampaignSpec::smoke().with_shard(3, 4).is_ok());
    }

    #[test]
    fn overrides_flow_into_units() {
        let spec = CampaignSpec::smoke();
        let unit = ExperimentKind::Fig2.instantiate(Some(ChipGeneration::M2), &spec);
        assert!(unit.params().contains("sizes=256,1024"));
        assert!(unit.params().contains("verify_max_flops=0"));
    }
}
