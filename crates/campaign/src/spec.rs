//! Campaign specifications: what to run, on what, with how many workers.

use oranges::experiments::{
    contention::ContentionExperiment, fig1::Fig1Experiment, fig2::Fig2Experiment,
    fig3::Fig3Experiment, fig4::Fig4Experiment, mixed_precision::MixedPrecisionExperiment,
    references::ReferencesExperiment, tables::TablesExperiment, thermal::ThermalExperiment,
    Experiment,
};
use oranges_soc::chip::ChipGeneration;
use std::sync::Arc;

/// The paper artifacts (and extensions) a campaign can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentKind {
    /// Figure 1 — STREAM bandwidth.
    Fig1,
    /// Figure 2 — GFLOPS grid.
    Fig2,
    /// Figure 3 — power grid.
    Fig3,
    /// Figure 4 — efficiency grid.
    Fig4,
    /// Tables 1–3 (chip-independent).
    Tables,
    /// HPC Perspective comparisons R1–R3 (chip-independent).
    References,
    /// Extension: CPU+GPU memory contention.
    Contention,
    /// Extension: sustained-load thermal behaviour.
    Thermal,
    /// Extension: mixed-precision headroom.
    MixedPrecision,
}

impl ExperimentKind {
    /// Every kind, in report order.
    pub const ALL: [ExperimentKind; 9] = [
        ExperimentKind::Fig1,
        ExperimentKind::Fig2,
        ExperimentKind::Fig3,
        ExperimentKind::Fig4,
        ExperimentKind::Tables,
        ExperimentKind::References,
        ExperimentKind::Contention,
        ExperimentKind::Thermal,
        ExperimentKind::MixedPrecision,
    ];

    /// The four paper figures — the acceptance grid.
    pub const FIGURES: [ExperimentKind; 4] = [
        ExperimentKind::Fig1,
        ExperimentKind::Fig2,
        ExperimentKind::Fig3,
        ExperimentKind::Fig4,
    ];

    /// Whether this kind expands into one unit per chip.
    pub fn per_chip(&self) -> bool {
        !matches!(self, ExperimentKind::Tables | ExperimentKind::References)
    }

    /// Instantiate the unit for `chip` (`None` for chip-independent
    /// kinds) under `spec`'s overrides.
    pub fn instantiate(
        &self,
        chip: Option<ChipGeneration>,
        spec: &CampaignSpec,
    ) -> Arc<dyn Experiment> {
        let chip_of =
            |chip: Option<ChipGeneration>| chip.expect("per-chip kind expands with a chip");
        match self {
            ExperimentKind::Fig1 => Arc::new(Fig1Experiment {
                chip: chip_of(chip),
            }),
            ExperimentKind::Fig2 => {
                let mut experiment = Fig2Experiment::paper(chip_of(chip));
                if let Some(sizes) = &spec.gemm_sizes {
                    experiment.sizes = sizes.clone();
                }
                if let Some(ceiling) = spec.verify_max_flops {
                    experiment.verify_max_flops = ceiling;
                }
                Arc::new(experiment)
            }
            ExperimentKind::Fig3 => {
                let mut experiment = Fig3Experiment::paper(chip_of(chip));
                if let Some(sizes) = &spec.power_sizes {
                    experiment.sizes = sizes.clone();
                }
                Arc::new(experiment)
            }
            ExperimentKind::Fig4 => {
                let mut experiment = Fig4Experiment::paper(chip_of(chip));
                if let Some(sizes) = &spec.power_sizes {
                    experiment.sizes = sizes.clone();
                }
                Arc::new(experiment)
            }
            ExperimentKind::Tables => Arc::new(TablesExperiment),
            ExperimentKind::References => Arc::new(ReferencesExperiment),
            ExperimentKind::Contention => Arc::new(ContentionExperiment {
                chip: chip_of(chip),
            }),
            ExperimentKind::Thermal => {
                Arc::new(ThermalExperiment::sustained_cutlass(chip_of(chip)))
            }
            ExperimentKind::MixedPrecision => Arc::new(MixedPrecisionExperiment {
                chip: chip_of(chip),
            }),
        }
    }
}

/// What a campaign runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Experiment kinds to schedule.
    pub experiments: Vec<ExperimentKind>,
    /// Chips the per-chip kinds expand over.
    pub chips: Vec<ChipGeneration>,
    /// Override Figure 2's size sweep (`None` = the paper's sizes).
    pub gemm_sizes: Option<Vec<usize>>,
    /// Override Figures 3/4's size sweep (`None` = the paper's sizes).
    pub power_sizes: Option<Vec<usize>>,
    /// Override Figure 2's verification FLOP ceiling.
    pub verify_max_flops: Option<u64>,
    /// Worker threads (clamped to ≥ 1 by the scheduler).
    pub workers: usize,
    /// Run only shard `(index, count)` of the expanded plan (`None` =
    /// the whole plan). The union of all `count` shards — across
    /// processes, each with its own cache file — equals the unsharded
    /// campaign.
    pub shard: Option<(usize, usize)>,
}

impl CampaignSpec {
    /// A spec over `experiments` × `chips` with a default worker count
    /// of one per chip.
    pub fn new(experiments: Vec<ExperimentKind>, chips: Vec<ChipGeneration>) -> Self {
        let workers = chips.len().max(1);
        CampaignSpec {
            experiments,
            chips,
            gemm_sizes: None,
            power_sizes: None,
            verify_max_flops: None,
            workers,
            shard: None,
        }
    }

    /// The acceptance grid: Figures 1–4 across M1–M4 at the paper's
    /// full sizes.
    pub fn paper_grid() -> Self {
        CampaignSpec::new(
            ExperimentKind::FIGURES.to_vec(),
            ChipGeneration::ALL.to_vec(),
        )
    }

    /// Everything: figures, tables, references, and the three
    /// extensions, across all chips.
    pub fn full() -> Self {
        CampaignSpec::new(ExperimentKind::ALL.to_vec(), ChipGeneration::ALL.to_vec())
    }

    /// A fast grid for tests: all four figures on all chips but with
    /// reduced size sweeps and no functional verification.
    pub fn smoke() -> Self {
        CampaignSpec::new(
            ExperimentKind::FIGURES.to_vec(),
            ChipGeneration::ALL.to_vec(),
        )
        .with_gemm_sizes(vec![256, 1024])
        .with_power_sizes(vec![2048, 4096])
        .with_verify_max_flops(0)
    }

    /// Set the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Override Figure 2's size sweep.
    pub fn with_gemm_sizes(mut self, sizes: Vec<usize>) -> Self {
        self.gemm_sizes = Some(sizes);
        self
    }

    /// Override Figures 3/4's size sweep.
    pub fn with_power_sizes(mut self, sizes: Vec<usize>) -> Self {
        self.power_sizes = Some(sizes);
        self
    }

    /// Override Figure 2's verification ceiling.
    pub fn with_verify_max_flops(mut self, flops: u64) -> Self {
        self.verify_max_flops = Some(flops);
        self
    }

    /// Restrict the campaign to shard `index` of `count` (see
    /// [`Plan::shard`](crate::plan::Plan::shard)). Panics on an
    /// out-of-range index so a bad CLI flag fails at spec-build time,
    /// not mid-campaign.
    pub fn with_shard(mut self, index: usize, count: usize) -> Self {
        assert!(count > 0, "shard count must be positive");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        self.shard = Some((index, count));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_covers_figures_times_chips() {
        let spec = CampaignSpec::paper_grid();
        assert_eq!(spec.experiments.len(), 4);
        assert_eq!(spec.chips.len(), 4);
        assert!(spec.experiments.iter().all(|k| k.per_chip()));
    }

    #[test]
    fn chip_independent_kinds_do_not_expand_per_chip() {
        assert!(!ExperimentKind::Tables.per_chip());
        assert!(!ExperimentKind::References.per_chip());
        assert_eq!(
            ExperimentKind::ALL.iter().filter(|k| !k.per_chip()).count(),
            2
        );
    }

    #[test]
    fn overrides_flow_into_units() {
        let spec = CampaignSpec::smoke();
        let unit = ExperimentKind::Fig2.instantiate(Some(ChipGeneration::M2), &spec);
        assert!(unit.params().contains("sizes=256,1024"));
        assert!(unit.params().contains("verify_max_flops=0"));
    }
}
