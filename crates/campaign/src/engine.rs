//! The unit-granular execution engine: the crate's scheduling core.
//!
//! Earlier revisions scheduled whole campaigns — `WorkerPool::run(spec)`
//! blocked on one spec end to end, so a long-running service serialized
//! clients and two overlapping specs computed the same units twice. The
//! paper's grid is embarrassingly parallel at the *unit* level, though,
//! and the unit (experiment id + chip + params digest) is the natural
//! scheduling quantum. This module inverts the scheduler around it:
//!
//! - [`ExecutionEngine`] owns a fixed set of persistent worker threads
//!   (each with its own warm [`PlatformPool`]) and a shared **in-flight
//!   table** keyed by `(cache instance, UnitKey)`;
//! - callers [`submit`](ExecutionEngine::submit) a batch of plan units
//!   under a [`Subscription`]; every unit resolves to exactly one of
//!   - an **immediate cache hit** (delivered before `submit` returns),
//!   - a **computation** this subscription triggered, or
//!   - a **coalesced join**: the unit is already in flight for another
//!     subscription (possibly another service connection), so this one
//!     attaches as a waiter and receives the same outcome when the one
//!     computation finishes — cross-request dedupe with zero recompute;
//! - completed [`UnitOutcome`]s are delivered over the subscription's
//!   private channel *as they finish*, tagged with the submitter's unit
//!   index, so consumers can stream results long before the whole batch
//!   is done (the campaign service does exactly that).
//!
//! Failure is unit-scoped: an experiment error — or a **panic**, which
//! the worker catches and converts into
//! [`CampaignError::UnitPanicked`](crate::scheduler::CampaignError) —
//! fails only the subscriptions waiting on that unit. The engine and its
//! threads stay up, and the worker discards its platform pool (the only
//! state a panicking unit could have corrupted) before taking the next
//! job.
//!
//! The layers above are thin adapters: [`run_campaign`] and
//! [`WorkerPool::run`] submit a whole plan and assemble deliveries back
//! into deterministic plan order (value-identical to a serial run), and
//! [`CampaignService`] feeds every client connection into one shared
//! engine.
//!
//! [`run_campaign`]: crate::scheduler::run_campaign
//! [`WorkerPool::run`]: crate::scheduler::WorkerPool::run
//! [`CampaignService`]: crate::service::CampaignService

use crate::cache::ResultCache;
use crate::plan::{PlanUnit, UnitKey};
use crate::scheduler::CampaignError;
use oranges::experiments::ExperimentOutput;
use oranges::platform::PlatformPool;
use oranges_harness::obs::{
    CampaignEvent, EventBroadcaster, EventKind, EventStream, Histogram, HistogramSnapshot,
};
use oranges_soc::chip::ChipGeneration;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, Weak};
use std::thread;
use std::time::{Duration, Instant};

/// Scheduling class of a submission. The engine runs **weighted fair
/// queueing** across the three classes (see `DISPATCH_PATTERN`): when
/// several classes have queued work, workers serve them in a fixed 4:2:1
/// high:normal:batch rotation, so a saturating batch campaign cannot
/// starve a small high-priority probe, while a backed-up high class
/// still leaks batch work through (no class starves outright).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Interactive probes; 4 of every 7 dispatch slots.
    High,
    /// The default; 2 of every 7 dispatch slots.
    #[default]
    Normal,
    /// Bulk campaigns (the fleet orchestrator submits shards here);
    /// 1 of every 7 dispatch slots.
    Batch,
}

/// The weighted round-robin dispatch rotation. Workers scan this
/// pattern from a rotating cursor and pop from the first class with
/// queued work, which yields the 4:2:1 service weights.
const DISPATCH_PATTERN: [Priority; 7] = [
    Priority::High,
    Priority::High,
    Priority::High,
    Priority::High,
    Priority::Normal,
    Priority::Normal,
    Priority::Batch,
];

impl Priority {
    /// Stable wire token (`"high"` / `"normal"` / `"batch"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }

    /// Parse a wire token (the inverse of [`as_str`](Priority::as_str)).
    pub fn parse(token: &str) -> Option<Priority> {
        match token {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }

    /// Index into the per-class queue array.
    fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }

    /// Strictly increasing with urgency, for promotion comparisons.
    fn urgency(self) -> u8 {
        match self {
            Priority::High => 2,
            Priority::Normal => 1,
            Priority::Batch => 0,
        }
    }

    /// All classes, in queue-array order.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Batch];
}

/// Per-submission scheduling options for
/// [`ExecutionEngine::submit_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Scheduling class (default [`Priority::Normal`]).
    pub priority: Priority,
    /// Fail this subscription's still-unresolved units with
    /// [`CampaignError::DeadlineExceeded`] once this much time has
    /// passed since submit. Units whose computation is already running
    /// when the deadline fires still complete (and land in the cache)
    /// — the deadline fails *deliveries*, never other subscribers.
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Options at the given priority, no deadline.
    pub fn priority(priority: Priority) -> SubmitOptions {
        SubmitOptions {
            priority,
            deadline: None,
        }
    }

    /// Builder-style deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> SubmitOptions {
        self.deadline = Some(deadline);
        self
    }
}

/// Typed admission rejection from
/// [`ExecutionEngine::submit_with`]. A rejected submission leaves the
/// engine exactly as it found it: no units counted, no queue slots or
/// in-flight entries taken, no cache reads recorded — only
/// [`EngineStats::submissions_rejected`] ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The submission needed more queue slots than the engine's cap
    /// has free. Retry later, shrink the batch, or raise the cap.
    Busy {
        /// Jobs queued (all classes) at rejection time.
        queued: usize,
        /// The engine's queue cap.
        cap: usize,
        /// Fresh computations this submission would have enqueued.
        needed: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Busy {
                queued,
                cap,
                needed,
            } => write!(
                f,
                "engine busy: submission needs {needed} queue slots but {queued}/{cap} are taken"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

/// What a cancellation (explicit, drop, or deadline) actually undid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CancelOutcome {
    /// Deliveries this subscriber will no longer receive (each was
    /// answered with a typed error instead).
    pub waiters_cancelled: usize,
    /// Queued, not-yet-started computations abandoned because this
    /// subscriber was their only waiter. In-flight computations with
    /// other waiters — coalesced siblings — are never touched.
    pub jobs_abandoned: usize,
}

/// How a subscription's unit was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitSource {
    /// Computed by a worker for this subscription (it was the first
    /// submitter of the key).
    Computed,
    /// Served from the result cache at submit time.
    CacheHit,
    /// Attached to a computation another submission already had in
    /// flight; the outcome is shared, nothing was recomputed.
    Coalesced,
}

impl UnitSource {
    /// Stable wire token (`"computed"` / `"cache"` / `"coalesced"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            UnitSource::Computed => "computed",
            UnitSource::CacheHit => "cache",
            UnitSource::Coalesced => "coalesced",
        }
    }

    /// Parse a wire token (the inverse of [`as_str`](UnitSource::as_str)).
    pub fn parse(token: &str) -> Option<UnitSource> {
        match token {
            "computed" => Some(UnitSource::Computed),
            "cache" => Some(UnitSource::CacheHit),
            "coalesced" => Some(UnitSource::Coalesced),
            _ => None,
        }
    }

    /// Whether the subscription got the result without computing it
    /// (cache hit or coalesced join).
    pub fn from_cache(&self) -> bool {
        !matches!(self, UnitSource::Computed)
    }
}

/// One satisfied unit: how it was satisfied, the shared output, and the
/// worker wall time this subscription is charged for it — the compute
/// time when this subscription triggered the computation, near-zero
/// otherwise (cache hits and coalesced joins cost no worker time, so
/// unit-wall totals never double-count a shared computation).
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    /// How this subscription got the result.
    pub source: UnitSource,
    /// The unit's output (shared — coalesced subscribers receive the
    /// very same allocation the producer stored).
    pub output: Arc<ExperimentOutput>,
    /// Worker wall time charged to this subscription for the unit.
    pub wall: Duration,
}

/// One message on a subscription channel: the submitter's unit index
/// plus the unit's outcome (or its unit-scoped failure).
#[derive(Debug, Clone)]
pub struct UnitDelivery {
    /// Index of the unit within the submitted batch (plan index for
    /// whole-plan submissions).
    pub index: usize,
    /// The unit's result.
    pub outcome: Result<UnitOutcome, CampaignError>,
}

/// Lifetime counters of an [`ExecutionEngine`].
///
/// # Counter identity
///
/// Every accepted unit is classified at submit time as a cache hit, a
/// coalesced join, or the enqueueing submission of a fresh job — and
/// every fresh job retires as exactly one of computed, failed, or
/// cancelled (abandoned while still queued). So at quiescence (no
/// queued or in-flight units):
///
/// ```text
/// units_submitted == units_computed + cache_hits + coalesced_joins
///                    + units_failed + units_cancelled
/// ```
///
/// `deadline_expired` and `submissions_rejected` sit *outside* the
/// identity: the former counts failed deliveries (the unit itself may
/// still compute for a coalesced sibling, or be double-counted in
/// `units_cancelled` when its queued job was abandoned too), and the
/// latter counts whole rejected submissions, whose units were never
/// admitted into `units_submitted` at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Units accepted across all subscriptions (rejected submissions
    /// contribute nothing).
    pub units_submitted: u64,
    /// Units actually computed by a worker.
    pub units_computed: u64,
    /// Units served from the cache at submit time.
    pub cache_hits: u64,
    /// Units that attached to an already-in-flight computation instead
    /// of recomputing — the cross-request dedupe counter.
    pub coalesced_joins: u64,
    /// Units that failed (experiment error or panic).
    pub units_failed: u64,
    /// Queued computations abandoned by cancellation or deadline
    /// expiry before a worker picked them up.
    pub units_cancelled: u64,
    /// Unit deliveries failed with
    /// [`CampaignError::DeadlineExceeded`].
    pub deadline_expired: u64,
    /// Whole submissions turned away with [`AdmitError::Busy`].
    pub submissions_rejected: u64,
    /// Lifecycle events lost to full subscriber buffers (see
    /// [`ExecutionEngine::subscribe_events`]).
    pub events_dropped: u64,
}

impl EngineStats {
    /// The right-hand side of the counter identity (see the type-level
    /// docs): equals [`units_submitted`](EngineStats::units_submitted)
    /// at quiescence.
    pub fn units_resolved(&self) -> u64 {
        self.units_computed
            + self.cache_hits
            + self.coalesced_joins
            + self.units_failed
            + self.units_cancelled
    }
}

/// A completion wakeup callback, invoked after each delivery lands on
/// a subscription's channel (see
/// [`ExecutionEngine::submit_with_notify`]). Must be cheap and
/// non-blocking — it runs on engine worker threads.
pub type DeliveryNotify = Arc<dyn Fn() + Send + Sync>;

/// A waiter attached to one in-flight computation.
struct Waiter {
    index: usize,
    source: UnitSource,
    sender: mpsc::Sender<UnitDelivery>,
    /// Owning subscription, so cancellation can surgically remove this
    /// waiter without touching coalesced siblings.
    sub: u64,
    /// Completion hook fired after each send on `sender`.
    notify: Option<DeliveryNotify>,
}

/// One queued computation.
struct Job {
    slot: InflightKey,
    unit: PlanUnit,
    cache: ResultCache,
}

/// In-flight computations are keyed per cache *instance*: two
/// submissions coalesce only when they would read and fill the same
/// store (campaigns over distinct caches must each populate their own).
type InflightKey = (usize, UnitKey);

/// One in-flight computation: its waiters, the class its job is queued
/// under, and whether it is still in a queue (a worker flips `queued`
/// off when it picks the job up — cancellation may only abandon jobs
/// that are still queued).
struct Flight {
    waiters: Vec<Waiter>,
    priority: Priority,
    queued: bool,
}

#[derive(Default)]
struct EngineState {
    /// One FIFO per priority class, indexed by [`Priority::index`].
    queues: [VecDeque<Job>; 3],
    /// Rotating position in [`DISPATCH_PATTERN`].
    cursor: usize,
    inflight: HashMap<InflightKey, Flight>,
}

impl EngineState {
    fn queued_total(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Weighted-fair pop: scan the dispatch pattern from the cursor and
    /// take the head of the first class with queued work. Marks the
    /// job's flight as no longer queued (it is now owned by a worker).
    fn pop_job(&mut self) -> Option<Job> {
        for step in 0..DISPATCH_PATTERN.len() {
            let position = (self.cursor + step) % DISPATCH_PATTERN.len();
            let class = DISPATCH_PATTERN[position];
            if let Some(job) = self.queues[class.index()].pop_front() {
                self.cursor = (position + 1) % DISPATCH_PATTERN.len();
                if let Some(flight) = self.inflight.get_mut(&job.slot) {
                    flight.queued = false;
                }
                return Some(job);
            }
        }
        None
    }
}

/// A subscription deadline awaiting the reaper.
struct DeadlineEntry {
    at: Instant,
    sub: u64,
}

struct EngineShared {
    state: Mutex<EngineState>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Queue cap for bounded admission; `None` = unbounded.
    queue_cap: Option<usize>,
    /// Subscription id allocator (cancellation's addressing scheme).
    next_sub: AtomicU64,
    /// Registered deadlines, serviced by the reaper thread. Locked
    /// strictly non-nested with `state`.
    deadlines: Mutex<Vec<DeadlineEntry>>,
    deadline_wake: Condvar,
    units_submitted: AtomicU64,
    units_computed: AtomicU64,
    cache_hits: AtomicU64,
    coalesced_joins: AtomicU64,
    units_failed: AtomicU64,
    units_cancelled: AtomicU64,
    deadline_expired: AtomicU64,
    submissions_rejected: AtomicU64,
    events: EventBroadcaster,
    /// Per-experiment compute-latency histograms, keyed by experiment
    /// id. The lock guards only the map; observations on a retrieved
    /// histogram are lock-free.
    latency: Mutex<HashMap<String, Arc<Histogram>>>,
}

impl EngineShared {
    /// The state lock, recovering from poisoning. A panic while the
    /// lock is held would poison it; every critical section here is a
    /// queue/map operation that cannot leave the state torn, and
    /// refusing to continue would wedge every subscriber — so the
    /// engine shrugs the poison off instead of propagating it.
    fn state(&self) -> std::sync::MutexGuard<'_, EngineState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The deadline registry lock (same poison-shrugging rationale as
    /// [`state`](EngineShared::state)).
    fn deadlines(&self) -> std::sync::MutexGuard<'_, Vec<DeadlineEntry>> {
        self.deadlines
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Record one computed-unit latency in the experiment's histogram,
    /// creating the histogram on first observation.
    fn record_latency(&self, experiment: &str, seconds: f64) {
        let histogram = {
            let mut map = self
                .latency
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(
                map.entry(experiment.to_string())
                    .or_insert_with(|| Arc::new(Histogram::latency())),
            )
        };
        histogram.observe(seconds);
    }
}

/// A handle to one submission's result stream.
///
/// Dropping the subscription **cancels** whatever of it has not
/// resolved: queued computations nobody else is waiting on are
/// abandoned (freeing their queue slots), while computations with
/// coalesced siblings — or already running on a worker — are left
/// strictly alone. Dropping after draining every delivery is therefore
/// a no-op.
pub struct Subscription {
    receiver: mpsc::Receiver<UnitDelivery>,
    expected: usize,
    sub: u64,
    shared: Arc<EngineShared>,
}

impl Subscription {
    /// How many deliveries this subscription will receive in total (one
    /// per submitted unit, counting immediate cache hits).
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Block until the next delivery. Returns `None` once every unit has
    /// been delivered — or if the engine shut down underneath us, which
    /// callers should treat as a failure when deliveries are missing.
    pub fn recv(&self) -> Option<UnitDelivery> {
        self.receiver.recv().ok()
    }

    /// Next delivery, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<UnitDelivery, mpsc::RecvTimeoutError> {
        self.receiver.recv_timeout(timeout)
    }

    /// Next delivery if one is already queued, without blocking — the
    /// companion to [`ExecutionEngine::submit_with_notify`]: a reactor
    /// drains this on each delivery wakeup instead of parking a thread.
    pub fn try_recv(&self) -> Result<UnitDelivery, mpsc::TryRecvError> {
        self.receiver.try_recv()
    }

    /// Cancel the subscription's unresolved units now: each is answered
    /// with [`CampaignError::Cancelled`] over this channel, and queued
    /// jobs with no other waiter are abandoned. Idempotent, and safe to
    /// race with workers — a job a worker already picked up completes
    /// normally (into the cache, for any coalesced siblings).
    pub fn cancel(&self) -> CancelOutcome {
        cancel_subscription(&self.shared, self.sub, CancelKind::Cancelled)
    }

    /// A clonable handle that can cancel this subscription from
    /// anywhere — the service's `cancel` wire method keeps one per
    /// `run_token`. Holding it does not keep the engine alive.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle {
            sub: self.sub,
            shared: Arc::downgrade(&self.shared),
        }
    }
}

impl fmt::Debug for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Subscription")
            .field("sub", &self.sub)
            .field("expected", &self.expected)
            .finish_non_exhaustive()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        cancel_subscription(&self.shared, self.sub, CancelKind::Cancelled);
    }
}

/// Cancels one subscription from outside it (see
/// [`Subscription::cancel_handle`]). Cancelling an already-resolved or
/// already-cancelled subscription is a harmless no-op that reports
/// zeros.
#[derive(Clone)]
pub struct CancelHandle {
    sub: u64,
    shared: Weak<EngineShared>,
}

impl CancelHandle {
    /// Cancel the subscription (same semantics as
    /// [`Subscription::cancel`]).
    pub fn cancel(&self) -> CancelOutcome {
        match self.shared.upgrade() {
            Some(shared) => cancel_subscription(&shared, self.sub, CancelKind::Cancelled),
            None => CancelOutcome::default(),
        }
    }
}

/// The shared, unit-granular execution core: persistent worker threads,
/// one in-flight table, per-subscription delivery channels. `Sync` by
/// design — any number of callers (service connections, concurrent
/// `WorkerPool::run`s, tests) may submit at once, and overlapping
/// submissions against the same cache coalesce instead of recomputing.
pub struct ExecutionEngine {
    shared: Arc<EngineShared>,
    handles: Vec<thread::JoinHandle<()>>,
    reaper: Option<thread::JoinHandle<()>>,
    workers: usize,
}

impl ExecutionEngine {
    /// Spawn `workers` (≥ 1 enforced) persistent worker threads with an
    /// unbounded queue.
    pub fn new(workers: usize) -> Self {
        Self::with_queue_cap(workers, None)
    }

    /// Spawn `workers` (≥ 1 enforced) persistent worker threads,
    /// bounding the job queue at `queue_cap` when given: submissions
    /// that would enqueue more fresh computations than the cap has free
    /// slots are rejected whole with [`AdmitError::Busy`]. Coalesced
    /// joins and cache hits take no slots, so they are always admitted.
    pub fn with_queue_cap(workers: usize, queue_cap: Option<usize>) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(EngineShared {
            state: Mutex::new(EngineState::default()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_cap,
            next_sub: AtomicU64::new(0),
            deadlines: Mutex::new(Vec::new()),
            deadline_wake: Condvar::new(),
            units_submitted: AtomicU64::new(0),
            units_computed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced_joins: AtomicU64::new(0),
            units_failed: AtomicU64::new(0),
            units_cancelled: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            submissions_rejected: AtomicU64::new(0),
            events: EventBroadcaster::new(),
            latency: Mutex::new(HashMap::new()),
        });
        let handles: Vec<thread::JoinHandle<()>> = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || engine_worker_loop(&shared))
            })
            .collect();
        // The deadline reaper rides along as one more engine thread
        // (tracked apart from the workers so health gauges stay
        // honest); it sleeps until the earliest registered deadline and
        // costs nothing when deadlines are unused.
        let reaper = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || deadline_reaper_loop(&shared))
        };
        ExecutionEngine {
            shared,
            handles,
            reaper: Some(reaper),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The queue cap this engine admits against, if bounded.
    pub fn queue_cap(&self) -> Option<usize> {
        self.shared.queue_cap
    }

    /// Lifetime counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            units_submitted: self.shared.units_submitted.load(Ordering::Relaxed),
            units_computed: self.shared.units_computed.load(Ordering::Relaxed),
            cache_hits: self.shared.cache_hits.load(Ordering::Relaxed),
            coalesced_joins: self.shared.coalesced_joins.load(Ordering::Relaxed),
            units_failed: self.shared.units_failed.load(Ordering::Relaxed),
            units_cancelled: self.shared.units_cancelled.load(Ordering::Relaxed),
            deadline_expired: self.shared.deadline_expired.load(Ordering::Relaxed),
            submissions_rejected: self.shared.submissions_rejected.load(Ordering::Relaxed),
            events_dropped: self.shared.events.events_dropped(),
        }
    }

    /// Number of jobs queued but not yet picked up by a worker, summed
    /// across all priority classes.
    pub fn queue_depth(&self) -> usize {
        self.shared.state().queued_total()
    }

    /// Per-class queue depths, indexed like [`Priority::ALL`]
    /// (high, normal, batch).
    pub fn queue_depths(&self) -> [usize; 3] {
        let state = self.shared.state();
        [
            state.queues[0].len(),
            state.queues[1].len(),
            state.queues[2].len(),
        ]
    }

    /// Number of units currently in flight (queued or computing).
    pub fn inflight(&self) -> usize {
        self.shared.state().inflight.len()
    }

    /// Number of worker threads still running. Anything less than
    /// [`workers`](ExecutionEngine::workers) means a worker died to an
    /// engine bug — the readiness signal a health probe wants.
    pub fn alive_workers(&self) -> usize {
        self.handles.iter().filter(|h| !h.is_finished()).count()
    }

    /// Subscribe to the engine's lifecycle events over a bounded
    /// channel holding up to `capacity` events. Publishing never
    /// blocks: if this subscriber falls behind, events are dropped for
    /// it and counted in [`EngineStats::events_dropped`]. Dropping the
    /// stream unsubscribes.
    pub fn subscribe_events(&self, capacity: usize) -> EventStream {
        self.shared.events.subscribe(capacity)
    }

    /// The engine's event broadcaster — the service publishes its own
    /// connection/cache events onto the same bus so one `subscribe`
    /// stream carries everything.
    pub fn events(&self) -> &EventBroadcaster {
        &self.shared.events
    }

    /// Current subscriber count on the event bus.
    pub fn event_subscribers(&self) -> usize {
        self.shared.events.subscriber_count()
    }

    /// Per-experiment compute-latency snapshots, sorted by experiment
    /// id for deterministic exposition output.
    pub fn latency_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        let map = self
            .shared
            .latency
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut snapshots: Vec<(String, HistogramSnapshot)> = map
            .iter()
            .map(|(id, histogram)| (id.clone(), histogram.snapshot()))
            .collect();
        snapshots.sort_by(|a, b| a.0.cmp(&b.0));
        snapshots
    }

    /// Submit a batch of units against `cache` and receive their
    /// outcomes over a private channel, tagged with each unit's position
    /// in `units`. Per unit, exactly one of three things happens
    /// atomically under the engine lock:
    ///
    /// 1. the key is already **in flight** for this cache → attach as a
    ///    waiter (coalesced join; the one computation serves everyone);
    /// 2. the cache already **holds** the key → deliver immediately;
    /// 3. otherwise → enter the in-flight table and enqueue a job.
    ///
    /// Duplicate keys *within* one batch coalesce too (the second
    /// occurrence attaches to the first's computation).
    ///
    /// Uses default [`SubmitOptions`] (normal priority, no deadline)
    /// and bypasses nothing: on an engine with a queue cap this
    /// **panics** when the cap would reject the submission — capped
    /// engines should call [`submit_with`](ExecutionEngine::submit_with)
    /// and handle [`AdmitError::Busy`].
    pub fn submit(&self, units: &[PlanUnit], cache: &ResultCache) -> Subscription {
        self.submit_with(units, cache, SubmitOptions::default())
            .expect("submission rejected; use submit_with on a capped engine")
    }

    /// [`submit`](ExecutionEngine::submit) with explicit scheduling
    /// options, and with bounded admission: on a capped engine, a
    /// submission that would enqueue more fresh computations than the
    /// cap has free slots is rejected whole with [`AdmitError::Busy`],
    /// leaving the engine value-identical to never having been asked —
    /// no counters (beyond the rejection itself), queue slots,
    /// in-flight entries, or cache reads.
    pub fn submit_with(
        &self,
        units: &[PlanUnit],
        cache: &ResultCache,
        options: SubmitOptions,
    ) -> Result<Subscription, AdmitError> {
        self.submit_with_notify(units, cache, options, None)
    }

    /// [`submit_with`](ExecutionEngine::submit_with) plus a delivery
    /// wakeup hook: `notify` is invoked after **every** delivery lands
    /// on the subscription's channel — submit-time cache hits, worker
    /// completions and failures, cancellations, and deadline expiries
    /// alike — so a readiness-driven consumer (the service reactor)
    /// can drain [`Subscription::try_recv`] on wakeups instead of
    /// parking a thread in [`Subscription::recv`].
    pub fn submit_with_notify(
        &self,
        units: &[PlanUnit],
        cache: &ResultCache,
        options: SubmitOptions,
        notify: Option<DeliveryNotify>,
    ) -> Result<Subscription, AdmitError> {
        let (sender, receiver) = mpsc::channel();
        let cache_id = cache.instance_id();
        let sub = self.shared.next_sub.fetch_add(1, Ordering::Relaxed);
        let mut queued_any = false;
        let mut pending_waiters = false;
        // Events are collected under the lock (so their order matches
        // the classification order) but broadcast only after it is
        // released — the critical section stays queue-work only.
        let mut events: Vec<CampaignEvent> = Vec::new();
        {
            let mut state = self.shared.state();
            // Admission pass: count the fresh computations this batch
            // would enqueue, without mutating anything. Uses the
            // non-counting `ResultCache::contains` so a rejected
            // submission perturbs no cache statistics either. (Cache
            // entries are never removed, so a key that reads as a hit
            // here cannot become a fresh job in the commit pass below.)
            if let Some(cap) = self.shared.queue_cap {
                let queued = state.queued_total();
                let mut fresh: HashSet<InflightKey> = HashSet::new();
                for unit in units {
                    let slot = (cache_id, unit.key.clone());
                    if state.inflight.contains_key(&slot) || cache.contains(&unit.key) {
                        continue;
                    }
                    fresh.insert(slot);
                }
                let needed = fresh.len();
                if queued + needed > cap {
                    drop(state);
                    self.shared
                        .submissions_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared.events.publish(
                        &CampaignEvent::new(EventKind::SubmissionRejected).with_detail(&format!(
                            "needs {needed} queue slots, {queued}/{cap} taken"
                        )),
                    );
                    return Err(AdmitError::Busy {
                        queued,
                        cap,
                        needed,
                    });
                }
            }
            // Commit pass: classify every unit, as before.
            for unit in units {
                self.shared.units_submitted.fetch_add(1, Ordering::Relaxed);
                let slot = (cache_id, unit.key.clone());
                let mut promotion: Option<Priority> = None;
                if let Some(flight) = state.inflight.get_mut(&slot) {
                    self.shared.coalesced_joins.fetch_add(1, Ordering::Relaxed);
                    events.push(CampaignEvent::unit(
                        EventKind::Coalesced,
                        &unit.key.to_string(),
                        &unit.key.id,
                    ));
                    flight.waiters.push(Waiter {
                        index: unit.index,
                        source: UnitSource::Coalesced,
                        sender: sender.clone(),
                        sub,
                        notify: notify.clone(),
                    });
                    pending_waiters = true;
                    // Priority inheritance: a high-priority join must
                    // not wait behind the batch queue its producer
                    // chose, so the queued job moves to the joiner's
                    // class.
                    if flight.queued && options.priority.urgency() > flight.priority.urgency() {
                        promotion = Some(flight.priority);
                        flight.priority = options.priority;
                    }
                }
                if let Some(from) = promotion {
                    let queue = &mut state.queues[from.index()];
                    if let Some(position) = queue.iter().position(|job| job.slot == slot) {
                        if let Some(job) = queue.remove(position) {
                            state.queues[options.priority.index()].push_back(job);
                        }
                    }
                    continue;
                }
                if state.inflight.contains_key(&slot) {
                    continue;
                }
                let probe = Instant::now();
                if let Some(hit) = cache.get(&unit.key) {
                    self.shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                    events.push(CampaignEvent::unit(
                        EventKind::CacheHit,
                        &unit.key.to_string(),
                        &unit.key.id,
                    ));
                    let _ = sender.send(UnitDelivery {
                        index: unit.index,
                        outcome: Ok(UnitOutcome {
                            source: UnitSource::CacheHit,
                            output: hit,
                            wall: probe.elapsed(),
                        }),
                    });
                    if let Some(notify) = &notify {
                        notify();
                    }
                    continue;
                }
                state.inflight.insert(
                    slot.clone(),
                    Flight {
                        waiters: vec![Waiter {
                            index: unit.index,
                            source: UnitSource::Computed,
                            sender: sender.clone(),
                            sub,
                            notify: notify.clone(),
                        }],
                        priority: options.priority,
                        queued: true,
                    },
                );
                state.queues[options.priority.index()].push_back(Job {
                    slot,
                    unit: unit.clone(),
                    cache: cache.clone(),
                });
                queued_any = true;
                pending_waiters = true;
            }
        }
        if queued_any {
            self.shared.wake.notify_all();
        }
        for event in &events {
            self.shared.events.publish(event);
        }
        // Register the deadline only when something is actually left to
        // wait for (all-cache-hit submissions resolve before return).
        if let Some(deadline) = options.deadline {
            if pending_waiters {
                self.shared.deadlines().push(DeadlineEntry {
                    at: Instant::now() + deadline,
                    sub,
                });
                self.shared.deadline_wake.notify_all();
            }
        }
        Ok(Subscription {
            receiver,
            expected: units.len(),
            sub,
            shared: Arc::clone(&self.shared),
        })
    }
}

impl Drop for ExecutionEngine {
    fn drop(&mut self) {
        {
            // Store under the state lock so a worker can never check the
            // flag and then miss the wakeup.
            let _state = self.shared.state();
            self.shared.shutdown.store(true, Ordering::Relaxed);
        }
        self.shared.wake.notify_all();
        {
            // Same dance for the reaper, which waits on its own lock.
            let _deadlines = self.shared.deadlines();
        }
        self.shared.deadline_wake.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(reaper) = self.reaper.take() {
            let _ = reaper.join();
        }
    }
}

/// The chip a chip-independent unit borrows a platform for.
fn platform_chip(unit: &PlanUnit) -> ChipGeneration {
    unit.experiment.chip().unwrap_or(ChipGeneration::ALL[0])
}

fn engine_worker_loop(shared: &EngineShared) {
    // The platform pool persists across jobs — the warmth a long-running
    // engine buys over per-campaign threads.
    let mut pool = PlatformPool::new();
    loop {
        let job = {
            let mut state = shared.state();
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                match state.pop_job() {
                    Some(job) => break job,
                    None => {
                        state = shared
                            .wake
                            .wait(state)
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                    }
                }
            }
        };
        shared.events.publish(&CampaignEvent::unit(
            EventKind::UnitStarted,
            &job.unit.key.to_string(),
            &job.unit.key.id,
        ));
        // The engine must never wedge: `service_job` retires the job's
        // in-flight entry and notifies every waiter on all of its own
        // paths, and if it panics anyway (a bug in *our* code, not the
        // experiment's — those are caught inside), the catch here keeps
        // the worker thread alive and `abort_job` unblocks the waiters
        // with a typed error so no subscriber waits on a dead entry.
        let serviced = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service_job(shared, &job, &mut pool)
        }));
        if serviced.is_err() {
            pool = PlatformPool::new();
            abort_job(shared, &job);
        }
    }
}

/// Run one job end to end: compute (or fail) the unit, retire its
/// in-flight entry, and deliver the shared outcome to every waiter.
fn service_job(shared: &EngineShared, job: &Job, pool: &mut PlatformPool) {
    let started = Instant::now();
    // Unit failure must be unit-scoped: a panicking experiment fails its
    // subscribers, not the engine. The catch is wrapped tightly around
    // the experiment call so the failure is attributed to the unit.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        job.unit
            .experiment
            .run(pool.platform(platform_chip(&job.unit)))
    }));
    let outcome: Result<Arc<ExperimentOutput>, CampaignError> = match run {
        Ok(Ok(mut output)) => {
            output.stamp_wall_time(started.elapsed().as_secs_f64());
            shared.units_computed.fetch_add(1, Ordering::Relaxed);
            // Insert *before* retiring the in-flight entry, so a
            // concurrent submit always finds the key in one of the two
            // places.
            Ok(job.cache.insert(job.unit.key.clone(), output))
        }
        Ok(Err(error)) => {
            shared.units_failed.fetch_add(1, Ordering::Relaxed);
            Err(CampaignError::Unit {
                key: job.unit.key.clone(),
                error,
            })
        }
        Err(panic) => {
            shared.units_failed.fetch_add(1, Ordering::Relaxed);
            // The unwound experiment may have left this worker's
            // platforms in a torn state; discard them. Fresh pools are
            // cheap next to the corruption risk.
            *pool = PlatformPool::new();
            Err(CampaignError::UnitPanicked {
                key: job.unit.key.clone(),
                message: panic_message(panic.as_ref()),
            })
        }
    };
    let wall = started.elapsed();
    let event = match &outcome {
        Ok(_) => {
            shared.record_latency(&job.unit.key.id, wall.as_secs_f64());
            CampaignEvent::unit(
                EventKind::UnitCompleted,
                &job.unit.key.to_string(),
                &job.unit.key.id,
            )
            .with_wall(wall.as_secs_f64())
        }
        Err(error) => CampaignEvent::unit(
            EventKind::UnitFailed,
            &job.unit.key.to_string(),
            &job.unit.key.id,
        )
        .with_detail(&error.to_string()),
    };
    shared.events.publish(&event);

    let waiters = shared
        .state()
        .inflight
        .remove(&job.slot)
        .map(|flight| flight.waiters)
        .unwrap_or_default();
    for waiter in waiters {
        let _ = waiter.sender.send(UnitDelivery {
            index: waiter.index,
            outcome: outcome.clone().map(|output| UnitOutcome {
                source: waiter.source,
                output,
                // The compute wall belongs to the one subscription that
                // triggered the computation; coalesced waiters spent no
                // worker time (their delivery latency shows up in their
                // campaign's own wall clock), so charging them too would
                // double-count in unit-wall/utilization accounting.
                wall: if waiter.source == UnitSource::Computed {
                    wall
                } else {
                    Duration::ZERO
                },
            }),
        });
        if let Some(notify) = &waiter.notify {
            notify();
        }
    }
}

/// Last-ditch cleanup when servicing a job panicked in engine code:
/// retire the in-flight entry (if it is still there) and fail its
/// waiters with a typed error, so nothing ever blocks on a job the
/// engine could not finish.
fn abort_job(shared: &EngineShared, job: &Job) {
    shared.units_failed.fetch_add(1, Ordering::Relaxed);
    shared.events.publish(
        &CampaignEvent::unit(
            EventKind::UnitFailed,
            &job.unit.key.to_string(),
            &job.unit.key.id,
        )
        .with_detail("engine worker panicked servicing the unit"),
    );
    let waiters = shared
        .state()
        .inflight
        .remove(&job.slot)
        .map(|flight| flight.waiters)
        .unwrap_or_default();
    for waiter in waiters {
        let _ = waiter.sender.send(UnitDelivery {
            index: waiter.index,
            outcome: Err(CampaignError::Worker(format!(
                "engine worker panicked servicing unit {}",
                job.unit.key
            ))),
        });
        if let Some(notify) = &waiter.notify {
            notify();
        }
    }
}

/// Why a subscription's unresolved units are being torn down — decides
/// the typed error delivered and which counter ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CancelKind {
    /// Explicit cancel, or the subscription was dropped.
    Cancelled,
    /// The subscription's deadline expired.
    Deadline,
}

/// Tear down one subscription's unresolved units: remove its waiters
/// (each answered with a typed error over its own channel), and abandon
/// queued jobs left with no waiter at all. The subtle invariant lives
/// here: waiters are matched by subscription id, so a cancelled
/// *producer* never takes an in-flight unit away from coalesced
/// siblings — and a job a worker already picked up (`queued == false`)
/// is never abandoned; it completes into the cache for whoever remains.
///
/// Idempotent: a second call (or a cancel racing a deadline) finds
/// nothing left to remove and reports zeros.
fn cancel_subscription(shared: &EngineShared, sub: u64, kind: CancelKind) -> CancelOutcome {
    type Orphan = (
        usize,
        mpsc::Sender<UnitDelivery>,
        UnitKey,
        Option<DeliveryNotify>,
    );
    let mut orphaned: Vec<Orphan> = Vec::new();
    let mut abandoned: Vec<UnitKey> = Vec::new();
    {
        let mut state = shared.state();
        let mut emptied: Vec<InflightKey> = Vec::new();
        for (slot, flight) in state.inflight.iter_mut() {
            let before = flight.waiters.len();
            let mut kept = Vec::with_capacity(before);
            for waiter in flight.waiters.drain(..) {
                if waiter.sub == sub {
                    orphaned.push((waiter.index, waiter.sender, slot.1.clone(), waiter.notify));
                } else {
                    kept.push(waiter);
                }
            }
            flight.waiters = kept;
            if flight.waiters.is_empty() && flight.queued && before > 0 {
                emptied.push(slot.clone());
            }
        }
        for slot in emptied {
            let Some(flight) = state.inflight.remove(&slot) else {
                continue;
            };
            let queue = &mut state.queues[flight.priority.index()];
            if let Some(position) = queue.iter().position(|job| job.slot == slot) {
                queue.remove(position);
            }
            abandoned.push(slot.1);
        }
    }
    if !abandoned.is_empty() {
        shared
            .units_cancelled
            .fetch_add(abandoned.len() as u64, Ordering::Relaxed);
    }
    if kind == CancelKind::Deadline && !orphaned.is_empty() {
        shared
            .deadline_expired
            .fetch_add(orphaned.len() as u64, Ordering::Relaxed);
    }
    // The subscription's deadline (if any) is spent either way.
    shared.deadlines().retain(|entry| entry.sub != sub);
    // Deliveries and events go out after every lock is released.
    let outcome = CancelOutcome {
        waiters_cancelled: orphaned.len(),
        jobs_abandoned: abandoned.len(),
    };
    for (index, sender, key, notify) in orphaned {
        let error = match kind {
            CancelKind::Cancelled => CampaignError::Cancelled { key: key.clone() },
            CancelKind::Deadline => CampaignError::DeadlineExceeded { key: key.clone() },
        };
        let _ = sender.send(UnitDelivery {
            index,
            outcome: Err(error),
        });
        if let Some(notify) = &notify {
            notify();
        }
        if kind == CancelKind::Deadline {
            shared.events.publish(&CampaignEvent::unit(
                EventKind::DeadlineExpired,
                &key.to_string(),
                &key.id,
            ));
        }
    }
    for key in &abandoned {
        shared.events.publish(&CampaignEvent::unit(
            EventKind::UnitCancelled,
            &key.to_string(),
            &key.id,
        ));
    }
    outcome
}

/// The deadline reaper: one engine-owned thread that sleeps until the
/// earliest registered deadline, then expires that subscription's
/// unresolved units with [`CampaignError::DeadlineExceeded`].
fn deadline_reaper_loop(shared: &EngineShared) {
    let mut deadlines = shared.deadlines();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let now = Instant::now();
        let mut expired: Vec<u64> = Vec::new();
        deadlines.retain(|entry| {
            if entry.at <= now {
                expired.push(entry.sub);
                false
            } else {
                true
            }
        });
        if !expired.is_empty() {
            // Expiry takes the state lock; never hold both.
            drop(deadlines);
            for sub in expired {
                cancel_subscription(shared, sub, CancelKind::Deadline);
            }
            deadlines = shared.deadlines();
            continue;
        }
        let next = deadlines.iter().map(|entry| entry.at).min();
        deadlines = match next {
            Some(at) => {
                shared
                    .deadline_wake
                    .wait_timeout(deadlines, at.saturating_duration_since(now))
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0
            }
            None => shared
                .deadline_wake
                .wait(deadlines)
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        };
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = panic.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = panic.downcast_ref::<String>() {
        message.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oranges::experiments::{Experiment, ExperimentError};
    use oranges::platform::Platform;
    use oranges_harness::RepetitionProtocol;
    use std::sync::atomic::AtomicUsize;

    type Gate = Arc<(Mutex<bool>, Condvar)>;

    /// A test experiment that blocks until released, so tests control
    /// exactly when a unit is "in flight".
    struct GatedExperiment {
        tag: String,
        gate: Gate,
        runs: Arc<AtomicUsize>,
    }

    impl GatedExperiment {
        fn new(tag: &str) -> (Arc<Self>, Gate, Arc<AtomicUsize>) {
            let gate = Arc::new((Mutex::new(false), Condvar::new()));
            let runs = Arc::new(AtomicUsize::new(0));
            let experiment = Arc::new(GatedExperiment {
                tag: tag.to_string(),
                gate: Arc::clone(&gate),
                runs: Arc::clone(&runs),
            });
            (experiment, gate, runs)
        }
    }

    fn release(gate: &Gate) {
        *gate.0.lock().expect("gate") = true;
        gate.1.notify_all();
    }

    impl Experiment for GatedExperiment {
        fn id(&self) -> &'static str {
            "gated"
        }
        fn params(&self) -> String {
            format!("tag={}", self.tag)
        }
        fn chip(&self) -> Option<ChipGeneration> {
            None
        }
        fn protocol(&self) -> RepetitionProtocol {
            RepetitionProtocol::GEMM
        }
        fn run(&self, _platform: &mut Platform) -> Result<ExperimentOutput, ExperimentError> {
            let (lock, condvar) = &*self.gate;
            let mut released = lock.lock().expect("gate");
            while !*released {
                released = condvar.wait(released).expect("gate");
            }
            self.runs.fetch_add(1, Ordering::SeqCst);
            ExperimentOutput::from_sets(vec![self.base_set().metric("value", 1.0, "unit")], None)
        }
    }

    /// A test experiment that panics mid-run.
    struct PanickingExperiment;

    impl Experiment for PanickingExperiment {
        fn id(&self) -> &'static str {
            "panicker"
        }
        fn params(&self) -> String {
            "tag=panic".to_string()
        }
        fn chip(&self) -> Option<ChipGeneration> {
            None
        }
        fn protocol(&self) -> RepetitionProtocol {
            RepetitionProtocol::GEMM
        }
        fn run(&self, _platform: &mut Platform) -> Result<ExperimentOutput, ExperimentError> {
            panic!("intentional test panic");
        }
    }

    fn unit_of(index: usize, experiment: Arc<dyn Experiment>) -> PlanUnit {
        PlanUnit {
            index,
            key: UnitKey::of(experiment.as_ref()),
            experiment,
        }
    }

    #[test]
    fn source_tokens_round_trip() {
        for source in [
            UnitSource::Computed,
            UnitSource::CacheHit,
            UnitSource::Coalesced,
        ] {
            assert_eq!(UnitSource::parse(source.as_str()), Some(source));
        }
        assert_eq!(UnitSource::parse("nope"), None);
        assert!(!UnitSource::Computed.from_cache());
        assert!(UnitSource::CacheHit.from_cache());
        assert!(UnitSource::Coalesced.from_cache());
    }

    #[test]
    fn overlapping_submissions_coalesce_onto_one_computation() {
        let engine = ExecutionEngine::new(2);
        let cache = ResultCache::new();
        let (experiment, gate, runs) = GatedExperiment::new("shared");

        // First submission takes the unit in flight (worker blocks on
        // the gate), second and third attach as waiters — including a
        // duplicate within one batch.
        let first = engine.submit(&[unit_of(0, experiment.clone())], &cache);
        let second = engine.submit(
            &[
                unit_of(0, experiment.clone()),
                unit_of(1, experiment.clone()),
            ],
            &cache,
        );
        let stats = engine.stats();
        assert_eq!(stats.units_submitted, 3);
        assert_eq!(stats.coalesced_joins, 2, "both later submissions attached");

        release(&gate);
        let produced = first.recv().expect("producer delivery");
        let joined_a = second.recv().expect("waiter delivery");
        let joined_b = second.recv().expect("waiter delivery");

        assert_eq!(runs.load(Ordering::SeqCst), 1, "computed exactly once");
        let produced = produced.outcome.expect("produced ok");
        assert_eq!(produced.source, UnitSource::Computed);
        for joined in [joined_a, joined_b] {
            let joined = joined.outcome.expect("joined ok");
            assert_eq!(joined.source, UnitSource::Coalesced);
            assert!(
                Arc::ptr_eq(&joined.output, &produced.output),
                "waiters share the very allocation the producer stored"
            );
        }
        assert_eq!(engine.stats().units_computed, 1);
        assert_eq!(cache.stats().entries, 1);

        // A later submission is an immediate cache hit.
        let third = engine.submit(&[unit_of(0, experiment)], &cache);
        let hit = third.recv().expect("hit delivery").outcome.expect("ok");
        assert_eq!(hit.source, UnitSource::CacheHit);
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn distinct_caches_do_not_coalesce() {
        let engine = ExecutionEngine::new(2);
        let (experiment, gate, runs) = GatedExperiment::new("percache");
        let (cache_a, cache_b) = (ResultCache::new(), ResultCache::new());

        let first = engine.submit(&[unit_of(0, experiment.clone())], &cache_a);
        let second = engine.submit(&[unit_of(0, experiment.clone())], &cache_b);
        assert_eq!(engine.stats().coalesced_joins, 0, "separate stores");

        release(&gate);
        assert!(first.recv().expect("a").outcome.is_ok());
        assert!(second.recv().expect("b").outcome.is_ok());
        assert_eq!(runs.load(Ordering::SeqCst), 2, "each cache filled once");
        assert_eq!(cache_a.stats().entries, 1);
        assert_eq!(cache_b.stats().entries, 1);
    }

    #[test]
    fn a_panicking_unit_fails_its_subscribers_but_not_the_engine() {
        let engine = ExecutionEngine::new(1);
        let cache = ResultCache::new();

        let doomed = engine.submit(&[unit_of(0, Arc::new(PanickingExperiment))], &cache);
        let delivery = doomed.recv().expect("failure is delivered");
        match delivery.outcome {
            Err(CampaignError::UnitPanicked { key, message }) => {
                assert_eq!(key.id, "panicker");
                assert!(message.contains("intentional test panic"));
            }
            other => panic!("expected a panic outcome, got {other:?}"),
        }
        assert_eq!(engine.stats().units_failed, 1);
        assert_eq!(cache.stats().entries, 0, "nothing poisoned the cache");

        // The engine (and its single worker) is still fully serviceable.
        let (experiment, gate, _) = GatedExperiment::new("after-panic");
        release(&gate);
        let next = engine.submit(&[unit_of(0, experiment)], &cache);
        let outcome = next.recv().expect("delivery").outcome.expect("runs fine");
        assert_eq!(outcome.source, UnitSource::Computed);
    }

    /// Pull events off `stream` until `want` of them match `kind` (or
    /// a generous timeout expires), returning everything seen.
    fn collect_until(stream: &EventStream, kind: EventKind, want: usize) -> Vec<CampaignEvent> {
        let mut seen = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while seen
            .iter()
            .filter(|e: &&CampaignEvent| e.kind == kind)
            .count()
            < want
            && Instant::now() < deadline
        {
            if let Ok(event) = stream.recv_timeout(Duration::from_millis(50)) {
                seen.push(event);
            }
        }
        seen
    }

    #[test]
    fn lifecycle_events_and_latency_histograms_cover_every_path() {
        let engine = ExecutionEngine::new(2);
        let cache = ResultCache::new();
        let stream = engine.subscribe_events(64);
        assert_eq!(engine.event_subscribers(), 1);

        let (experiment, gate, _) = GatedExperiment::new("observed");
        let first = engine.submit(&[unit_of(0, experiment.clone())], &cache);
        // Attach a second submission while the first is gated in
        // flight, so a coalesced event is emitted deterministically.
        let second = engine.submit(&[unit_of(0, experiment.clone())], &cache);
        release(&gate);
        assert!(first.recv().expect("first").outcome.is_ok());
        assert!(second.recv().expect("second").outcome.is_ok());
        // A third submission after completion is a cache hit.
        let third = engine.submit(&[unit_of(0, experiment)], &cache);
        assert!(third.recv().expect("third").outcome.is_ok());

        let events = collect_until(&stream, EventKind::CacheHit, 1);
        let kind_count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(kind_count(EventKind::UnitStarted), 1, "one computation");
        assert_eq!(kind_count(EventKind::UnitCompleted), 1);
        assert_eq!(kind_count(EventKind::Coalesced), 1);
        assert_eq!(kind_count(EventKind::CacheHit), 1);
        let completed = events
            .iter()
            .find(|e| e.kind == EventKind::UnitCompleted)
            .expect("completed event");
        assert!(completed.wall_s.is_some(), "completion carries wall time");
        assert_eq!(completed.experiment.as_deref(), Some("gated"));
        assert!(completed.unit.as_deref().unwrap_or("").contains("gated"));

        // The computation landed in the per-experiment histogram.
        let latency = engine.latency_snapshots();
        assert_eq!(latency.len(), 1);
        assert_eq!(latency[0].0, "gated");
        assert_eq!(latency[0].1.count, 1);

        // Failures are events too.
        let doomed = engine.submit(&[unit_of(0, Arc::new(PanickingExperiment))], &cache);
        assert!(doomed.recv().expect("failure delivered").outcome.is_err());
        let failures = collect_until(&stream, EventKind::UnitFailed, 1);
        let failed = failures
            .iter()
            .find(|e| e.kind == EventKind::UnitFailed)
            .expect("failure event");
        assert!(failed.detail.as_deref().unwrap_or("").contains("panic"));
    }

    #[test]
    fn a_slow_event_subscriber_drops_events_but_never_stalls_the_engine() {
        let engine = ExecutionEngine::new(2);
        let cache = ResultCache::new();
        // Capacity-1 subscriber that never reads: every unit's started+
        // completed pair overflows it immediately.
        let _slow = engine.subscribe_events(1);
        for round in 0..8 {
            let (experiment, gate, _) = GatedExperiment::new(&format!("burst{round}"));
            release(&gate);
            let sub = engine.submit(&[unit_of(0, experiment)], &cache);
            assert!(sub.recv().expect("delivery").outcome.is_ok());
        }
        let stats = engine.stats();
        assert_eq!(stats.units_computed, 8, "all units completed despite drops");
        assert!(
            stats.events_dropped > 0,
            "a full subscriber buffer counts drops: {stats:?}"
        );
    }

    #[test]
    fn queue_and_inflight_gauges_track_pending_work() {
        let engine = ExecutionEngine::new(1);
        let cache = ResultCache::new();
        assert_eq!(engine.queue_depth(), 0);
        assert_eq!(engine.inflight(), 0);
        assert_eq!(engine.alive_workers(), 1);

        let (a, gate_a, _) = GatedExperiment::new("gauge-a");
        let (b, gate_b, _) = GatedExperiment::new("gauge-b");
        let (c, gate_c, _) = GatedExperiment::new("gauge-c");
        let sub = engine.submit(&[unit_of(0, a), unit_of(1, b), unit_of(2, c)], &cache);
        // All three are in flight; the single worker holds one off the
        // queue (gated), leaving two queued once it picks up.
        assert_eq!(engine.inflight(), 3);
        let deadline = Instant::now() + Duration::from_secs(5);
        while engine.queue_depth() > 2 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(engine.queue_depth(), 2);

        release(&gate_a);
        release(&gate_b);
        release(&gate_c);
        for _ in 0..3 {
            assert!(sub.recv().expect("delivery").outcome.is_ok());
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while engine.inflight() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(engine.queue_depth(), 0);
        assert_eq!(engine.inflight(), 0);
    }

    #[test]
    fn dropping_a_subscription_mid_compute_is_harmless() {
        let engine = ExecutionEngine::new(1);
        let cache = ResultCache::new();
        let (experiment, gate, runs) = GatedExperiment::new("dropped");

        let abandoned = engine.submit(&[unit_of(0, experiment.clone())], &cache);
        // Wait until the worker owns the job: once it is off the queue,
        // dropping the subscription may not abandon it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while engine.queue_depth() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        drop(abandoned);
        release(&gate);

        // The computation still completes and fills the cache; the next
        // subscriber is served from it.
        let next = engine.submit(&[unit_of(0, experiment)], &cache);
        let outcome = next.recv().expect("delivery").outcome.expect("ok");
        assert!(outcome.source.from_cache());
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!(engine.stats().units_cancelled, 0, "nothing was queued");
    }

    #[test]
    fn dropping_a_subscription_abandons_its_queued_units() {
        let engine = ExecutionEngine::new(1);
        let cache = ResultCache::new();
        let (blocker, gate, _) = GatedExperiment::new("drop-blocker");
        let (doomed, _gate_doomed, doomed_runs) = GatedExperiment::new("drop-doomed");

        // The single worker blocks on the gated unit; the second
        // submission's unit stays queued.
        let holder = engine.submit(&[unit_of(0, blocker)], &cache);
        let deadline = Instant::now() + Duration::from_secs(5);
        while engine.queue_depth() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        let queued = engine.submit(&[unit_of(0, doomed)], &cache);
        assert_eq!(engine.queue_depth(), 1);
        drop(queued);
        assert_eq!(engine.queue_depth(), 0, "the queue slot was freed");
        assert_eq!(engine.stats().units_cancelled, 1);

        release(&gate);
        assert!(holder.recv().expect("blocker delivery").outcome.is_ok());
        assert_eq!(doomed_runs.load(Ordering::SeqCst), 0, "never computed");
    }

    #[test]
    fn priority_tokens_round_trip() {
        for priority in Priority::ALL {
            assert_eq!(Priority::parse(priority.as_str()), Some(priority));
        }
        assert_eq!(Priority::parse("urgent"), None);
        assert_eq!(Priority::default(), Priority::Normal);
    }
}
