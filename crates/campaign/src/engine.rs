//! The unit-granular execution engine: the crate's scheduling core.
//!
//! Earlier revisions scheduled whole campaigns — `WorkerPool::run(spec)`
//! blocked on one spec end to end, so a long-running service serialized
//! clients and two overlapping specs computed the same units twice. The
//! paper's grid is embarrassingly parallel at the *unit* level, though,
//! and the unit (experiment id + chip + params digest) is the natural
//! scheduling quantum. This module inverts the scheduler around it:
//!
//! - [`ExecutionEngine`] owns a fixed set of persistent worker threads
//!   (each with its own warm [`PlatformPool`]) and a shared **in-flight
//!   table** keyed by `(cache instance, UnitKey)`;
//! - callers [`submit`](ExecutionEngine::submit) a batch of plan units
//!   under a [`Subscription`]; every unit resolves to exactly one of
//!   - an **immediate cache hit** (delivered before `submit` returns),
//!   - a **computation** this subscription triggered, or
//!   - a **coalesced join**: the unit is already in flight for another
//!     subscription (possibly another service connection), so this one
//!     attaches as a waiter and receives the same outcome when the one
//!     computation finishes — cross-request dedupe with zero recompute;
//! - completed [`UnitOutcome`]s are delivered over the subscription's
//!   private channel *as they finish*, tagged with the submitter's unit
//!   index, so consumers can stream results long before the whole batch
//!   is done (the campaign service does exactly that).
//!
//! Failure is unit-scoped: an experiment error — or a **panic**, which
//! the worker catches and converts into
//! [`CampaignError::UnitPanicked`](crate::scheduler::CampaignError) —
//! fails only the subscriptions waiting on that unit. The engine and its
//! threads stay up, and the worker discards its platform pool (the only
//! state a panicking unit could have corrupted) before taking the next
//! job.
//!
//! The layers above are thin adapters: [`run_campaign`] and
//! [`WorkerPool::run`] submit a whole plan and assemble deliveries back
//! into deterministic plan order (value-identical to a serial run), and
//! [`CampaignService`] feeds every client connection into one shared
//! engine.
//!
//! [`run_campaign`]: crate::scheduler::run_campaign
//! [`WorkerPool::run`]: crate::scheduler::WorkerPool::run
//! [`CampaignService`]: crate::service::CampaignService

use crate::cache::ResultCache;
use crate::plan::{PlanUnit, UnitKey};
use crate::scheduler::CampaignError;
use oranges::experiments::ExperimentOutput;
use oranges::platform::PlatformPool;
use oranges_harness::obs::{
    CampaignEvent, EventBroadcaster, EventKind, EventStream, Histogram, HistogramSnapshot,
};
use oranges_soc::chip::ChipGeneration;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How a subscription's unit was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitSource {
    /// Computed by a worker for this subscription (it was the first
    /// submitter of the key).
    Computed,
    /// Served from the result cache at submit time.
    CacheHit,
    /// Attached to a computation another submission already had in
    /// flight; the outcome is shared, nothing was recomputed.
    Coalesced,
}

impl UnitSource {
    /// Stable wire token (`"computed"` / `"cache"` / `"coalesced"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            UnitSource::Computed => "computed",
            UnitSource::CacheHit => "cache",
            UnitSource::Coalesced => "coalesced",
        }
    }

    /// Parse a wire token (the inverse of [`as_str`](UnitSource::as_str)).
    pub fn parse(token: &str) -> Option<UnitSource> {
        match token {
            "computed" => Some(UnitSource::Computed),
            "cache" => Some(UnitSource::CacheHit),
            "coalesced" => Some(UnitSource::Coalesced),
            _ => None,
        }
    }

    /// Whether the subscription got the result without computing it
    /// (cache hit or coalesced join).
    pub fn from_cache(&self) -> bool {
        !matches!(self, UnitSource::Computed)
    }
}

/// One satisfied unit: how it was satisfied, the shared output, and the
/// worker wall time this subscription is charged for it — the compute
/// time when this subscription triggered the computation, near-zero
/// otherwise (cache hits and coalesced joins cost no worker time, so
/// unit-wall totals never double-count a shared computation).
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    /// How this subscription got the result.
    pub source: UnitSource,
    /// The unit's output (shared — coalesced subscribers receive the
    /// very same allocation the producer stored).
    pub output: Arc<ExperimentOutput>,
    /// Worker wall time charged to this subscription for the unit.
    pub wall: Duration,
}

/// One message on a subscription channel: the submitter's unit index
/// plus the unit's outcome (or its unit-scoped failure).
#[derive(Debug, Clone)]
pub struct UnitDelivery {
    /// Index of the unit within the submitted batch (plan index for
    /// whole-plan submissions).
    pub index: usize,
    /// The unit's result.
    pub outcome: Result<UnitOutcome, CampaignError>,
}

/// Lifetime counters of an [`ExecutionEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Units submitted across all subscriptions.
    pub units_submitted: u64,
    /// Units actually computed by a worker.
    pub units_computed: u64,
    /// Units served from the cache at submit time.
    pub cache_hits: u64,
    /// Units that attached to an already-in-flight computation instead
    /// of recomputing — the cross-request dedupe counter.
    pub coalesced_joins: u64,
    /// Units that failed (experiment error or panic).
    pub units_failed: u64,
    /// Lifecycle events lost to full subscriber buffers (see
    /// [`ExecutionEngine::subscribe_events`]).
    pub events_dropped: u64,
}

/// A waiter attached to one in-flight computation.
struct Waiter {
    index: usize,
    source: UnitSource,
    sender: mpsc::Sender<UnitDelivery>,
}

/// One queued computation.
struct Job {
    slot: InflightKey,
    unit: PlanUnit,
    cache: ResultCache,
}

/// In-flight computations are keyed per cache *instance*: two
/// submissions coalesce only when they would read and fill the same
/// store (campaigns over distinct caches must each populate their own).
type InflightKey = (usize, UnitKey);

#[derive(Default)]
struct EngineState {
    queue: VecDeque<Job>,
    inflight: HashMap<InflightKey, Vec<Waiter>>,
}

struct EngineShared {
    state: Mutex<EngineState>,
    wake: Condvar,
    shutdown: AtomicBool,
    units_submitted: AtomicU64,
    units_computed: AtomicU64,
    cache_hits: AtomicU64,
    coalesced_joins: AtomicU64,
    units_failed: AtomicU64,
    events: EventBroadcaster,
    /// Per-experiment compute-latency histograms, keyed by experiment
    /// id. The lock guards only the map; observations on a retrieved
    /// histogram are lock-free.
    latency: Mutex<HashMap<String, Arc<Histogram>>>,
}

impl EngineShared {
    /// The state lock, recovering from poisoning. A panic while the
    /// lock is held would poison it; every critical section here is a
    /// queue/map operation that cannot leave the state torn, and
    /// refusing to continue would wedge every subscriber — so the
    /// engine shrugs the poison off instead of propagating it.
    fn state(&self) -> std::sync::MutexGuard<'_, EngineState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Record one computed-unit latency in the experiment's histogram,
    /// creating the histogram on first observation.
    fn record_latency(&self, experiment: &str, seconds: f64) {
        let histogram = {
            let mut map = self
                .latency
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(
                map.entry(experiment.to_string())
                    .or_insert_with(|| Arc::new(Histogram::latency())),
            )
        };
        histogram.observe(seconds);
    }
}

/// A handle to one submission's result stream. Dropping it mid-flight is
/// safe: the engine keeps computing for any other subscribers and
/// discards deliveries no one is listening for.
pub struct Subscription {
    receiver: mpsc::Receiver<UnitDelivery>,
    expected: usize,
}

impl Subscription {
    /// How many deliveries this subscription will receive in total (one
    /// per submitted unit, counting immediate cache hits).
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Block until the next delivery. Returns `None` once every unit has
    /// been delivered — or if the engine shut down underneath us, which
    /// callers should treat as a failure when deliveries are missing.
    pub fn recv(&self) -> Option<UnitDelivery> {
        self.receiver.recv().ok()
    }

    /// Next delivery, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<UnitDelivery, mpsc::RecvTimeoutError> {
        self.receiver.recv_timeout(timeout)
    }
}

/// The shared, unit-granular execution core: persistent worker threads,
/// one in-flight table, per-subscription delivery channels. `Sync` by
/// design — any number of callers (service connections, concurrent
/// `WorkerPool::run`s, tests) may submit at once, and overlapping
/// submissions against the same cache coalesce instead of recomputing.
pub struct ExecutionEngine {
    shared: Arc<EngineShared>,
    handles: Vec<thread::JoinHandle<()>>,
    workers: usize,
}

impl ExecutionEngine {
    /// Spawn `workers` (≥ 1 enforced) persistent worker threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(EngineShared {
            state: Mutex::new(EngineState::default()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            units_submitted: AtomicU64::new(0),
            units_computed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced_joins: AtomicU64::new(0),
            units_failed: AtomicU64::new(0),
            events: EventBroadcaster::new(),
            latency: Mutex::new(HashMap::new()),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || engine_worker_loop(&shared))
            })
            .collect();
        ExecutionEngine {
            shared,
            handles,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Lifetime counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            units_submitted: self.shared.units_submitted.load(Ordering::Relaxed),
            units_computed: self.shared.units_computed.load(Ordering::Relaxed),
            cache_hits: self.shared.cache_hits.load(Ordering::Relaxed),
            coalesced_joins: self.shared.coalesced_joins.load(Ordering::Relaxed),
            units_failed: self.shared.units_failed.load(Ordering::Relaxed),
            events_dropped: self.shared.events.events_dropped(),
        }
    }

    /// Number of jobs queued but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.state().queue.len()
    }

    /// Number of units currently in flight (queued or computing).
    pub fn inflight(&self) -> usize {
        self.shared.state().inflight.len()
    }

    /// Number of worker threads still running. Anything less than
    /// [`workers`](ExecutionEngine::workers) means a worker died to an
    /// engine bug — the readiness signal a health probe wants.
    pub fn alive_workers(&self) -> usize {
        self.handles.iter().filter(|h| !h.is_finished()).count()
    }

    /// Subscribe to the engine's lifecycle events over a bounded
    /// channel holding up to `capacity` events. Publishing never
    /// blocks: if this subscriber falls behind, events are dropped for
    /// it and counted in [`EngineStats::events_dropped`]. Dropping the
    /// stream unsubscribes.
    pub fn subscribe_events(&self, capacity: usize) -> EventStream {
        self.shared.events.subscribe(capacity)
    }

    /// The engine's event broadcaster — the service publishes its own
    /// connection/cache events onto the same bus so one `subscribe`
    /// stream carries everything.
    pub fn events(&self) -> &EventBroadcaster {
        &self.shared.events
    }

    /// Current subscriber count on the event bus.
    pub fn event_subscribers(&self) -> usize {
        self.shared.events.subscriber_count()
    }

    /// Per-experiment compute-latency snapshots, sorted by experiment
    /// id for deterministic exposition output.
    pub fn latency_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        let map = self
            .shared
            .latency
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut snapshots: Vec<(String, HistogramSnapshot)> = map
            .iter()
            .map(|(id, histogram)| (id.clone(), histogram.snapshot()))
            .collect();
        snapshots.sort_by(|a, b| a.0.cmp(&b.0));
        snapshots
    }

    /// Submit a batch of units against `cache` and receive their
    /// outcomes over a private channel, tagged with each unit's position
    /// in `units`. Per unit, exactly one of three things happens
    /// atomically under the engine lock:
    ///
    /// 1. the key is already **in flight** for this cache → attach as a
    ///    waiter (coalesced join; the one computation serves everyone);
    /// 2. the cache already **holds** the key → deliver immediately;
    /// 3. otherwise → enter the in-flight table and enqueue a job.
    ///
    /// Duplicate keys *within* one batch coalesce too (the second
    /// occurrence attaches to the first's computation).
    pub fn submit(&self, units: &[PlanUnit], cache: &ResultCache) -> Subscription {
        let (sender, receiver) = mpsc::channel();
        let cache_id = cache.instance_id();
        let mut queued = false;
        // Events are collected under the lock (so their order matches
        // the classification order) but broadcast only after it is
        // released — the critical section stays queue-work only.
        let mut events: Vec<CampaignEvent> = Vec::new();
        {
            let mut state = self.shared.state();
            for unit in units {
                self.shared.units_submitted.fetch_add(1, Ordering::Relaxed);
                let slot = (cache_id, unit.key.clone());
                if let Some(waiters) = state.inflight.get_mut(&slot) {
                    self.shared.coalesced_joins.fetch_add(1, Ordering::Relaxed);
                    events.push(CampaignEvent::unit(
                        EventKind::Coalesced,
                        &unit.key.to_string(),
                        &unit.key.id,
                    ));
                    waiters.push(Waiter {
                        index: unit.index,
                        source: UnitSource::Coalesced,
                        sender: sender.clone(),
                    });
                    continue;
                }
                let probe = Instant::now();
                if let Some(hit) = cache.get(&unit.key) {
                    self.shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                    events.push(CampaignEvent::unit(
                        EventKind::CacheHit,
                        &unit.key.to_string(),
                        &unit.key.id,
                    ));
                    let _ = sender.send(UnitDelivery {
                        index: unit.index,
                        outcome: Ok(UnitOutcome {
                            source: UnitSource::CacheHit,
                            output: hit,
                            wall: probe.elapsed(),
                        }),
                    });
                    continue;
                }
                state.inflight.insert(
                    slot.clone(),
                    vec![Waiter {
                        index: unit.index,
                        source: UnitSource::Computed,
                        sender: sender.clone(),
                    }],
                );
                state.queue.push_back(Job {
                    slot,
                    unit: unit.clone(),
                    cache: cache.clone(),
                });
                queued = true;
            }
        }
        if queued {
            self.shared.wake.notify_all();
        }
        for event in &events {
            self.shared.events.publish(event);
        }
        Subscription {
            receiver,
            expected: units.len(),
        }
    }
}

impl Drop for ExecutionEngine {
    fn drop(&mut self) {
        {
            // Store under the state lock so a worker can never check the
            // flag and then miss the wakeup.
            let _state = self.shared.state();
            self.shared.shutdown.store(true, Ordering::Relaxed);
        }
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The chip a chip-independent unit borrows a platform for.
fn platform_chip(unit: &PlanUnit) -> ChipGeneration {
    unit.experiment.chip().unwrap_or(ChipGeneration::ALL[0])
}

fn engine_worker_loop(shared: &EngineShared) {
    // The platform pool persists across jobs — the warmth a long-running
    // engine buys over per-campaign threads.
    let mut pool = PlatformPool::new();
    loop {
        let job = {
            let mut state = shared.state();
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                match state.queue.pop_front() {
                    Some(job) => break job,
                    None => {
                        state = shared
                            .wake
                            .wait(state)
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                    }
                }
            }
        };
        shared.events.publish(&CampaignEvent::unit(
            EventKind::UnitStarted,
            &job.unit.key.to_string(),
            &job.unit.key.id,
        ));
        // The engine must never wedge: `service_job` retires the job's
        // in-flight entry and notifies every waiter on all of its own
        // paths, and if it panics anyway (a bug in *our* code, not the
        // experiment's — those are caught inside), the catch here keeps
        // the worker thread alive and `abort_job` unblocks the waiters
        // with a typed error so no subscriber waits on a dead entry.
        let serviced = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service_job(shared, &job, &mut pool)
        }));
        if serviced.is_err() {
            pool = PlatformPool::new();
            abort_job(shared, &job);
        }
    }
}

/// Run one job end to end: compute (or fail) the unit, retire its
/// in-flight entry, and deliver the shared outcome to every waiter.
fn service_job(shared: &EngineShared, job: &Job, pool: &mut PlatformPool) {
    let started = Instant::now();
    // Unit failure must be unit-scoped: a panicking experiment fails its
    // subscribers, not the engine. The catch is wrapped tightly around
    // the experiment call so the failure is attributed to the unit.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        job.unit
            .experiment
            .run(pool.platform(platform_chip(&job.unit)))
    }));
    let outcome: Result<Arc<ExperimentOutput>, CampaignError> = match run {
        Ok(Ok(mut output)) => {
            output.stamp_wall_time(started.elapsed().as_secs_f64());
            shared.units_computed.fetch_add(1, Ordering::Relaxed);
            // Insert *before* retiring the in-flight entry, so a
            // concurrent submit always finds the key in one of the two
            // places.
            Ok(job.cache.insert(job.unit.key.clone(), output))
        }
        Ok(Err(error)) => {
            shared.units_failed.fetch_add(1, Ordering::Relaxed);
            Err(CampaignError::Unit {
                key: job.unit.key.clone(),
                error,
            })
        }
        Err(panic) => {
            shared.units_failed.fetch_add(1, Ordering::Relaxed);
            // The unwound experiment may have left this worker's
            // platforms in a torn state; discard them. Fresh pools are
            // cheap next to the corruption risk.
            *pool = PlatformPool::new();
            Err(CampaignError::UnitPanicked {
                key: job.unit.key.clone(),
                message: panic_message(panic.as_ref()),
            })
        }
    };
    let wall = started.elapsed();
    let event = match &outcome {
        Ok(_) => {
            shared.record_latency(&job.unit.key.id, wall.as_secs_f64());
            CampaignEvent::unit(
                EventKind::UnitCompleted,
                &job.unit.key.to_string(),
                &job.unit.key.id,
            )
            .with_wall(wall.as_secs_f64())
        }
        Err(error) => CampaignEvent::unit(
            EventKind::UnitFailed,
            &job.unit.key.to_string(),
            &job.unit.key.id,
        )
        .with_detail(&error.to_string()),
    };
    shared.events.publish(&event);

    let waiters = shared
        .state()
        .inflight
        .remove(&job.slot)
        .unwrap_or_default();
    for waiter in waiters {
        let _ = waiter.sender.send(UnitDelivery {
            index: waiter.index,
            outcome: outcome.clone().map(|output| UnitOutcome {
                source: waiter.source,
                output,
                // The compute wall belongs to the one subscription that
                // triggered the computation; coalesced waiters spent no
                // worker time (their delivery latency shows up in their
                // campaign's own wall clock), so charging them too would
                // double-count in unit-wall/utilization accounting.
                wall: if waiter.source == UnitSource::Computed {
                    wall
                } else {
                    Duration::ZERO
                },
            }),
        });
    }
}

/// Last-ditch cleanup when servicing a job panicked in engine code:
/// retire the in-flight entry (if it is still there) and fail its
/// waiters with a typed error, so nothing ever blocks on a job the
/// engine could not finish.
fn abort_job(shared: &EngineShared, job: &Job) {
    shared.units_failed.fetch_add(1, Ordering::Relaxed);
    shared.events.publish(
        &CampaignEvent::unit(
            EventKind::UnitFailed,
            &job.unit.key.to_string(),
            &job.unit.key.id,
        )
        .with_detail("engine worker panicked servicing the unit"),
    );
    let waiters = shared
        .state()
        .inflight
        .remove(&job.slot)
        .unwrap_or_default();
    for waiter in waiters {
        let _ = waiter.sender.send(UnitDelivery {
            index: waiter.index,
            outcome: Err(CampaignError::Worker(format!(
                "engine worker panicked servicing unit {}",
                job.unit.key
            ))),
        });
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = panic.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = panic.downcast_ref::<String>() {
        message.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oranges::experiments::{Experiment, ExperimentError};
    use oranges::platform::Platform;
    use oranges_harness::RepetitionProtocol;
    use std::sync::atomic::AtomicUsize;

    type Gate = Arc<(Mutex<bool>, Condvar)>;

    /// A test experiment that blocks until released, so tests control
    /// exactly when a unit is "in flight".
    struct GatedExperiment {
        tag: String,
        gate: Gate,
        runs: Arc<AtomicUsize>,
    }

    impl GatedExperiment {
        fn new(tag: &str) -> (Arc<Self>, Gate, Arc<AtomicUsize>) {
            let gate = Arc::new((Mutex::new(false), Condvar::new()));
            let runs = Arc::new(AtomicUsize::new(0));
            let experiment = Arc::new(GatedExperiment {
                tag: tag.to_string(),
                gate: Arc::clone(&gate),
                runs: Arc::clone(&runs),
            });
            (experiment, gate, runs)
        }
    }

    fn release(gate: &Gate) {
        *gate.0.lock().expect("gate") = true;
        gate.1.notify_all();
    }

    impl Experiment for GatedExperiment {
        fn id(&self) -> &'static str {
            "gated"
        }
        fn params(&self) -> String {
            format!("tag={}", self.tag)
        }
        fn chip(&self) -> Option<ChipGeneration> {
            None
        }
        fn protocol(&self) -> RepetitionProtocol {
            RepetitionProtocol::GEMM
        }
        fn run(&self, _platform: &mut Platform) -> Result<ExperimentOutput, ExperimentError> {
            let (lock, condvar) = &*self.gate;
            let mut released = lock.lock().expect("gate");
            while !*released {
                released = condvar.wait(released).expect("gate");
            }
            self.runs.fetch_add(1, Ordering::SeqCst);
            ExperimentOutput::from_sets(vec![self.base_set().metric("value", 1.0, "unit")], None)
        }
    }

    /// A test experiment that panics mid-run.
    struct PanickingExperiment;

    impl Experiment for PanickingExperiment {
        fn id(&self) -> &'static str {
            "panicker"
        }
        fn params(&self) -> String {
            "tag=panic".to_string()
        }
        fn chip(&self) -> Option<ChipGeneration> {
            None
        }
        fn protocol(&self) -> RepetitionProtocol {
            RepetitionProtocol::GEMM
        }
        fn run(&self, _platform: &mut Platform) -> Result<ExperimentOutput, ExperimentError> {
            panic!("intentional test panic");
        }
    }

    fn unit_of(index: usize, experiment: Arc<dyn Experiment>) -> PlanUnit {
        PlanUnit {
            index,
            key: UnitKey::of(experiment.as_ref()),
            experiment,
        }
    }

    #[test]
    fn source_tokens_round_trip() {
        for source in [
            UnitSource::Computed,
            UnitSource::CacheHit,
            UnitSource::Coalesced,
        ] {
            assert_eq!(UnitSource::parse(source.as_str()), Some(source));
        }
        assert_eq!(UnitSource::parse("nope"), None);
        assert!(!UnitSource::Computed.from_cache());
        assert!(UnitSource::CacheHit.from_cache());
        assert!(UnitSource::Coalesced.from_cache());
    }

    #[test]
    fn overlapping_submissions_coalesce_onto_one_computation() {
        let engine = ExecutionEngine::new(2);
        let cache = ResultCache::new();
        let (experiment, gate, runs) = GatedExperiment::new("shared");

        // First submission takes the unit in flight (worker blocks on
        // the gate), second and third attach as waiters — including a
        // duplicate within one batch.
        let first = engine.submit(&[unit_of(0, experiment.clone())], &cache);
        let second = engine.submit(
            &[
                unit_of(0, experiment.clone()),
                unit_of(1, experiment.clone()),
            ],
            &cache,
        );
        let stats = engine.stats();
        assert_eq!(stats.units_submitted, 3);
        assert_eq!(stats.coalesced_joins, 2, "both later submissions attached");

        release(&gate);
        let produced = first.recv().expect("producer delivery");
        let joined_a = second.recv().expect("waiter delivery");
        let joined_b = second.recv().expect("waiter delivery");

        assert_eq!(runs.load(Ordering::SeqCst), 1, "computed exactly once");
        let produced = produced.outcome.expect("produced ok");
        assert_eq!(produced.source, UnitSource::Computed);
        for joined in [joined_a, joined_b] {
            let joined = joined.outcome.expect("joined ok");
            assert_eq!(joined.source, UnitSource::Coalesced);
            assert!(
                Arc::ptr_eq(&joined.output, &produced.output),
                "waiters share the very allocation the producer stored"
            );
        }
        assert_eq!(engine.stats().units_computed, 1);
        assert_eq!(cache.stats().entries, 1);

        // A later submission is an immediate cache hit.
        let third = engine.submit(&[unit_of(0, experiment)], &cache);
        let hit = third.recv().expect("hit delivery").outcome.expect("ok");
        assert_eq!(hit.source, UnitSource::CacheHit);
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn distinct_caches_do_not_coalesce() {
        let engine = ExecutionEngine::new(2);
        let (experiment, gate, runs) = GatedExperiment::new("percache");
        let (cache_a, cache_b) = (ResultCache::new(), ResultCache::new());

        let first = engine.submit(&[unit_of(0, experiment.clone())], &cache_a);
        let second = engine.submit(&[unit_of(0, experiment.clone())], &cache_b);
        assert_eq!(engine.stats().coalesced_joins, 0, "separate stores");

        release(&gate);
        assert!(first.recv().expect("a").outcome.is_ok());
        assert!(second.recv().expect("b").outcome.is_ok());
        assert_eq!(runs.load(Ordering::SeqCst), 2, "each cache filled once");
        assert_eq!(cache_a.stats().entries, 1);
        assert_eq!(cache_b.stats().entries, 1);
    }

    #[test]
    fn a_panicking_unit_fails_its_subscribers_but_not_the_engine() {
        let engine = ExecutionEngine::new(1);
        let cache = ResultCache::new();

        let doomed = engine.submit(&[unit_of(0, Arc::new(PanickingExperiment))], &cache);
        let delivery = doomed.recv().expect("failure is delivered");
        match delivery.outcome {
            Err(CampaignError::UnitPanicked { key, message }) => {
                assert_eq!(key.id, "panicker");
                assert!(message.contains("intentional test panic"));
            }
            other => panic!("expected a panic outcome, got {other:?}"),
        }
        assert_eq!(engine.stats().units_failed, 1);
        assert_eq!(cache.stats().entries, 0, "nothing poisoned the cache");

        // The engine (and its single worker) is still fully serviceable.
        let (experiment, gate, _) = GatedExperiment::new("after-panic");
        release(&gate);
        let next = engine.submit(&[unit_of(0, experiment)], &cache);
        let outcome = next.recv().expect("delivery").outcome.expect("runs fine");
        assert_eq!(outcome.source, UnitSource::Computed);
    }

    /// Pull events off `stream` until `want` of them match `kind` (or
    /// a generous timeout expires), returning everything seen.
    fn collect_until(stream: &EventStream, kind: EventKind, want: usize) -> Vec<CampaignEvent> {
        let mut seen = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while seen
            .iter()
            .filter(|e: &&CampaignEvent| e.kind == kind)
            .count()
            < want
            && Instant::now() < deadline
        {
            if let Ok(event) = stream.recv_timeout(Duration::from_millis(50)) {
                seen.push(event);
            }
        }
        seen
    }

    #[test]
    fn lifecycle_events_and_latency_histograms_cover_every_path() {
        let engine = ExecutionEngine::new(2);
        let cache = ResultCache::new();
        let stream = engine.subscribe_events(64);
        assert_eq!(engine.event_subscribers(), 1);

        let (experiment, gate, _) = GatedExperiment::new("observed");
        let first = engine.submit(&[unit_of(0, experiment.clone())], &cache);
        // Attach a second submission while the first is gated in
        // flight, so a coalesced event is emitted deterministically.
        let second = engine.submit(&[unit_of(0, experiment.clone())], &cache);
        release(&gate);
        assert!(first.recv().expect("first").outcome.is_ok());
        assert!(second.recv().expect("second").outcome.is_ok());
        // A third submission after completion is a cache hit.
        let third = engine.submit(&[unit_of(0, experiment)], &cache);
        assert!(third.recv().expect("third").outcome.is_ok());

        let events = collect_until(&stream, EventKind::CacheHit, 1);
        let kind_count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(kind_count(EventKind::UnitStarted), 1, "one computation");
        assert_eq!(kind_count(EventKind::UnitCompleted), 1);
        assert_eq!(kind_count(EventKind::Coalesced), 1);
        assert_eq!(kind_count(EventKind::CacheHit), 1);
        let completed = events
            .iter()
            .find(|e| e.kind == EventKind::UnitCompleted)
            .expect("completed event");
        assert!(completed.wall_s.is_some(), "completion carries wall time");
        assert_eq!(completed.experiment.as_deref(), Some("gated"));
        assert!(completed.unit.as_deref().unwrap_or("").contains("gated"));

        // The computation landed in the per-experiment histogram.
        let latency = engine.latency_snapshots();
        assert_eq!(latency.len(), 1);
        assert_eq!(latency[0].0, "gated");
        assert_eq!(latency[0].1.count, 1);

        // Failures are events too.
        let doomed = engine.submit(&[unit_of(0, Arc::new(PanickingExperiment))], &cache);
        assert!(doomed.recv().expect("failure delivered").outcome.is_err());
        let failures = collect_until(&stream, EventKind::UnitFailed, 1);
        let failed = failures
            .iter()
            .find(|e| e.kind == EventKind::UnitFailed)
            .expect("failure event");
        assert!(failed.detail.as_deref().unwrap_or("").contains("panic"));
    }

    #[test]
    fn a_slow_event_subscriber_drops_events_but_never_stalls_the_engine() {
        let engine = ExecutionEngine::new(2);
        let cache = ResultCache::new();
        // Capacity-1 subscriber that never reads: every unit's started+
        // completed pair overflows it immediately.
        let _slow = engine.subscribe_events(1);
        for round in 0..8 {
            let (experiment, gate, _) = GatedExperiment::new(&format!("burst{round}"));
            release(&gate);
            let sub = engine.submit(&[unit_of(0, experiment)], &cache);
            assert!(sub.recv().expect("delivery").outcome.is_ok());
        }
        let stats = engine.stats();
        assert_eq!(stats.units_computed, 8, "all units completed despite drops");
        assert!(
            stats.events_dropped > 0,
            "a full subscriber buffer counts drops: {stats:?}"
        );
    }

    #[test]
    fn queue_and_inflight_gauges_track_pending_work() {
        let engine = ExecutionEngine::new(1);
        let cache = ResultCache::new();
        assert_eq!(engine.queue_depth(), 0);
        assert_eq!(engine.inflight(), 0);
        assert_eq!(engine.alive_workers(), 1);

        let (a, gate_a, _) = GatedExperiment::new("gauge-a");
        let (b, gate_b, _) = GatedExperiment::new("gauge-b");
        let (c, gate_c, _) = GatedExperiment::new("gauge-c");
        let sub = engine.submit(&[unit_of(0, a), unit_of(1, b), unit_of(2, c)], &cache);
        // All three are in flight; the single worker holds one off the
        // queue (gated), leaving two queued once it picks up.
        assert_eq!(engine.inflight(), 3);
        let deadline = Instant::now() + Duration::from_secs(5);
        while engine.queue_depth() > 2 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(engine.queue_depth(), 2);

        release(&gate_a);
        release(&gate_b);
        release(&gate_c);
        for _ in 0..3 {
            assert!(sub.recv().expect("delivery").outcome.is_ok());
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while engine.inflight() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(engine.queue_depth(), 0);
        assert_eq!(engine.inflight(), 0);
    }

    #[test]
    fn dropping_a_subscription_mid_flight_is_harmless() {
        let engine = ExecutionEngine::new(1);
        let cache = ResultCache::new();
        let (experiment, gate, runs) = GatedExperiment::new("dropped");

        let abandoned = engine.submit(&[unit_of(0, experiment.clone())], &cache);
        drop(abandoned);
        release(&gate);

        // The computation still completes and fills the cache; the next
        // subscriber is served from it.
        let next = engine.submit(&[unit_of(0, experiment)], &cache);
        let outcome = next.recv().expect("delivery").outcome.expect("ok");
        assert!(outcome.source.from_cache());
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }
}
