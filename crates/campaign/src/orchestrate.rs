//! Multi-worker shard orchestration: run a campaign as N round-robin
//! [`Plan::shard`](crate::plan::Plan::shard)s — across worker
//! *processes* on this host, or across a **fleet** of remote campaign
//! daemons — then join the shard results into one unified report.
//!
//! PR 2 made plans shardable and caches disk-persistent; this module
//! closes the loop the ROADMAP named next: a cross-process orchestrator
//! over one shared cache. In process mode the parent
//!
//! 1. serializes the spec ([`CampaignSpec::to_json`]) and spawns
//!    `processes` children of a designated worker `program`, handing
//!    child *i* the round-robin shard `i/N` and a private cache-out
//!    file (plus a warm-start file when the parent's cache has entries);
//! 2. waits for all children, failing loudly (exit status + captured
//!    stderr) if any shard dies;
//! 3. merges the shard caches into the shared cache under the strict
//!    conflict rule ([`ResultCache::merge_from`]): identical value
//!    identities merge silently, a mismatch aborts the campaign;
//! 4. re-enters the scheduler over the merged cache to assemble one
//!    unified [`CampaignReport`] in plan order — every unit a cache hit,
//!    value-identical to a single-process run (`tests/orchestrator.rs`
//!    proves fingerprint equality).
//!
//! Any binary becomes a worker by calling [`maybe_run_worker`] first
//! thing in `main` — `examples/campaign.rs` does exactly that, so
//! `--spawn N` re-invokes the example itself N times.
//!
//! **Fleet mode** ([`Orchestrator::fleet`]) replaces step 1–2 with
//! remote dispatch: shard *i* travels as a `CampaignSpec` `run` request
//! (the spec's own `shard` field carries the assignment) to the *i*-th
//! service [`Endpoint`] — `tcp:host:port` daemons on other machines,
//! `unix:` daemons locally, mixed freely — and the shard's unit
//! responses stream back through the service subscription machinery
//! ([`ServiceClient::run_streamed`]). The join step is unchanged in
//! spirit and code path: each remote shard's units land in a local
//! [`ResultCache`] and merge under the same rules as a shard *file* —
//! a daemon answering with a different `model_digest` is **stale**
//! (its units are dropped, counted in [`MergeStats::stale`], and
//! recomputed by the assembly pass), while same-version shards must
//! agree byte-for-byte or the merge fails loudly. A fleet run is
//! therefore value-identical to a single-process run
//! (`tests/fleet.rs` proves fingerprint equality against two loopback
//! TCP daemons).

use crate::cache::{CacheMergeError, CachePersistError, MergeStats, ResultCache};
use crate::engine::Priority;
use crate::report::CampaignReport;
use crate::scheduler::{run_campaign, CampaignError};
use crate::service::{RunOptions, RunOutcome, ServiceClient, ServiceError};
use crate::spec::{CampaignSpec, SpecParseError};
use oranges_harness::transport::{AnyTransport, Endpoint};
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

/// The marker flag a worker invocation carries. A program that calls
/// [`maybe_run_worker`] at the top of `main` turns into a shard worker
/// whenever this flag is present in its arguments.
pub const WORKER_FLAG: &str = "--campaign-worker";

/// Failure of an orchestrated campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum OrchestrateError {
    /// The spec would not serialize/parse across the process boundary.
    Spec(SpecParseError),
    /// Filesystem or process-spawn failure (context, cause).
    Io(String, String),
    /// A worker process failed.
    Worker {
        /// Which shard (0-based).
        shard: usize,
        /// Its exit code, when it exited at all.
        status: Option<i32>,
        /// Captured stderr.
        stderr: String,
    },
    /// A shard cache would not load or the warm cache would not save.
    Cache(CachePersistError),
    /// Two shards disagreed on a unit's value identity. The shard cache
    /// files are left in `scratch` for post-mortem comparison.
    Merge {
        /// The underlying conflict.
        error: CacheMergeError,
        /// Directory holding the preserved shard caches.
        scratch: String,
    },
    /// The assembly run over the merged cache failed.
    Campaign(CampaignError),
    /// A worker invocation had missing/malformed arguments.
    Args(String),
    /// A fleet shard's remote service call failed (connect, protocol,
    /// or an in-band error from the daemon).
    Remote {
        /// Which shard (0-based).
        shard: usize,
        /// The endpoint that failed, in display form.
        endpoint: String,
        /// The underlying [`ServiceError`], rendered.
        message: String,
    },
    /// A fleet endpoint answered its pre-dispatch `health` probe but
    /// reported itself not ready (draining, or dead worker threads) —
    /// the shard was never dispatched, so the campaign fails in
    /// milliseconds instead of timing out mid-run.
    Unhealthy {
        /// Which shard (0-based).
        shard: usize,
        /// The endpoint that reported unhealthy, in display form.
        endpoint: String,
        /// Why it is not ready, as reported by the daemon.
        reason: String,
    },
    /// A same-version fleet shard disagreed with the shared cache on a
    /// unit's value identity — a corrupt or dishonest daemon, never an
    /// honest one (the simulation is deterministic per model version).
    RemoteConflict {
        /// The underlying conflict.
        error: CacheMergeError,
        /// The endpoint whose shard conflicted, in display form.
        endpoint: String,
    },
}

impl fmt::Display for OrchestrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestrateError::Spec(e) => write!(f, "orchestrator spec: {e}"),
            OrchestrateError::Io(context, cause) => {
                write!(f, "orchestrator io ({context}): {cause}")
            }
            OrchestrateError::Worker {
                shard,
                status,
                stderr,
            } => write!(
                f,
                "shard {shard} worker failed (exit {}): {}",
                status.map_or_else(|| "signal".to_string(), |c| c.to_string()),
                stderr.trim()
            ),
            OrchestrateError::Cache(e) => write!(f, "orchestrator cache: {e}"),
            OrchestrateError::Merge { error, scratch } => write!(
                f,
                "orchestrator merge: {error} (shard caches kept in {scratch} for post-mortem)"
            ),
            OrchestrateError::Campaign(e) => write!(f, "orchestrator assembly: {e}"),
            OrchestrateError::Args(message) => write!(f, "worker arguments: {message}"),
            OrchestrateError::Remote {
                shard,
                endpoint,
                message,
            } => write!(f, "fleet shard {shard} ({endpoint}) failed: {message}"),
            OrchestrateError::Unhealthy {
                shard,
                endpoint,
                reason,
            } => write!(
                f,
                "fleet shard {shard} ({endpoint}) is not ready: {reason}; \
                 nothing was dispatched"
            ),
            OrchestrateError::RemoteConflict { error, endpoint } => write!(
                f,
                "fleet merge: {error} (shard served by {endpoint}; \
                 compare its model constants and cache file against this host's)"
            ),
        }
    }
}

impl std::error::Error for OrchestrateError {}

impl From<SpecParseError> for OrchestrateError {
    fn from(e: SpecParseError) -> Self {
        OrchestrateError::Spec(e)
    }
}

impl From<CachePersistError> for OrchestrateError {
    fn from(e: CachePersistError) -> Self {
        OrchestrateError::Cache(e)
    }
}

impl From<CampaignError> for OrchestrateError {
    fn from(e: CampaignError) -> Self {
        OrchestrateError::Campaign(e)
    }
}

/// The result of an orchestrated campaign.
#[derive(Debug)]
pub struct OrchestratedRun {
    /// The unified report, in plan order — value-identical to a
    /// single-process run of the same spec.
    pub report: CampaignReport,
    /// Totals of the shard-cache merges.
    pub merged: MergeStats,
    /// Shard workers used: spawned processes, or fleet endpoints.
    pub processes: usize,
}

/// Scratch-directory uniquifier so concurrent orchestrators (e.g. test
/// threads) never collide.
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Where the orchestrator's shard workers live.
#[derive(Debug, Clone)]
enum Backend {
    /// Child processes of `program` on this host, shard results joined
    /// through per-shard cache files.
    Processes {
        program: PathBuf,
        base_args: Vec<String>,
    },
    /// One running campaign daemon per shard, shard results streamed
    /// back over the service protocol.
    Fleet { endpoints: Vec<Endpoint> },
}

/// Dispatches shard workers — local child processes or remote service
/// endpoints — and joins their results into one report.
#[derive(Debug, Clone)]
pub struct Orchestrator {
    backend: Backend,
    processes: usize,
    scratch_dir: Option<PathBuf>,
}

impl Orchestrator {
    /// An orchestrator spawning `processes` (≥ 1 enforced) instances of
    /// `program`. The program must call [`maybe_run_worker`] before its
    /// own argument parsing.
    pub fn new(program: impl Into<PathBuf>, processes: usize) -> Self {
        Orchestrator {
            backend: Backend::Processes {
                program: program.into(),
                base_args: Vec::new(),
            },
            processes: processes.max(1),
            scratch_dir: None,
        }
    }

    /// An orchestrator dispatching one shard to each of `endpoints` —
    /// running campaign daemons (`cargo run --example serve -- --listen
    /// tcp:…`), one per measurement host. Shard *i* of *N* travels as a
    /// `run` request to endpoint *i*; results stream back over the
    /// service protocol and merge under the same versioned-cache rules
    /// as shard files, so the unified report is value-identical to a
    /// single-process run.
    ///
    /// ```no_run
    /// use oranges_campaign::prelude::*;
    ///
    /// let endpoints = vec![
    ///     "tcp:m1-host.local:7771".parse::<Endpoint>()?,
    ///     "tcp:m3-host.local:7771".parse::<Endpoint>()?,
    /// ];
    /// let cache = ResultCache::new();
    /// let run = Orchestrator::fleet(endpoints).run(&CampaignSpec::paper_grid(), &cache)?;
    /// println!("fleet fingerprint: {}", run.report.fingerprint());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn fleet(endpoints: Vec<Endpoint>) -> Self {
        Orchestrator {
            processes: endpoints.len(),
            backend: Backend::Fleet { endpoints },
            scratch_dir: None,
        }
    }

    /// Extra arguments to pass to every worker, before the worker
    /// flags. Process mode only — fleet daemons take no arguments.
    pub fn with_base_args(mut self, args: Vec<String>) -> Self {
        if let Backend::Processes { base_args, .. } = &mut self.backend {
            *base_args = args;
        }
        self
    }

    /// Where to put shard cache files (process mode only — fleet shards
    /// never touch disk). With the default (a fresh directory under the
    /// system temp dir) the whole directory is removed after the run; a
    /// caller-supplied directory is left in place — only the shard/warm
    /// files the run wrote are removed.
    pub fn with_scratch_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.scratch_dir = Some(dir.into());
        self
    }

    /// Run `spec` across the shard workers — child processes or fleet
    /// endpoints — merging every shard into `cache` (so a warm cache
    /// skips work in child processes too, and the caller can persist
    /// the union afterwards).
    ///
    /// `spec` must be unsharded: shard assignment is the orchestrator's
    /// job, and silently combining a caller shard with orchestrator
    /// sharding would compute one thing and report another.
    pub fn run(
        &self,
        spec: &CampaignSpec,
        cache: &ResultCache,
    ) -> Result<OrchestratedRun, OrchestrateError> {
        if spec.shard.is_some() {
            return Err(OrchestrateError::Args(
                "cannot orchestrate an already-sharded spec: drop the shard \
                 (the orchestrator assigns one shard per worker)"
                    .to_string(),
            ));
        }
        let (program, base_args) = match &self.backend {
            Backend::Fleet { endpoints } => return self.run_fleet(endpoints, spec, cache),
            Backend::Processes { program, base_args } => (program, base_args),
        };
        // A caller-supplied scratch directory may hold unrelated files;
        // only a directory we created ourselves is removed wholesale.
        let (scratch, owned) = match &self.scratch_dir {
            Some(dir) => (dir.clone(), false),
            None => (
                std::env::temp_dir().join(format!(
                    "oranges-orchestrator-{}-{}",
                    std::process::id(),
                    SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
                )),
                true,
            ),
        };
        std::fs::create_dir_all(&scratch).map_err(|e| {
            OrchestrateError::Io(format!("creating {}", scratch.display()), e.to_string())
        })?;
        let result = self.run_in(program, base_args, spec, cache, &scratch);
        // Clean up only on success: on failure the shard caches *are*
        // the evidence (a merge conflict names two value identities the
        // operator will want to diff), so they stay on disk.
        if result.is_ok() {
            if owned {
                std::fs::remove_dir_all(&scratch).ok();
            } else {
                std::fs::remove_file(scratch.join("warm.json")).ok();
                for index in 0..self.processes {
                    std::fs::remove_file(scratch.join(format!("shard-{index}.json"))).ok();
                }
            }
        }
        result
    }

    /// Fleet dispatch: one shard per endpoint, concurrently, each a
    /// `run` request whose spec carries the shard assignment. The join
    /// step mirrors [`run_in`](Orchestrator::run_in)'s file merge: each
    /// shard's served units land in a local [`ResultCache`] and merge
    /// under the versioned-cache rules — a remote `model_digest`
    /// mismatch makes the whole shard *stale* (dropped, counted,
    /// recomputed by the assembly pass), same-version shards merge
    /// under the strict identity rule.
    fn run_fleet(
        &self,
        endpoints: &[Endpoint],
        spec: &CampaignSpec,
        cache: &ResultCache,
    ) -> Result<OrchestratedRun, OrchestrateError> {
        if endpoints.is_empty() {
            return Err(OrchestrateError::Args(
                "fleet mode needs at least one endpoint".to_string(),
            ));
        }
        let count = endpoints.len();
        // Health pre-poll: probe every endpoint's `health` before
        // dispatching anything. An unreachable host is a typed
        // connect failure and an unhealthy one (draining, dead worker
        // threads) a typed `Unhealthy` — either way the campaign fails
        // in milliseconds with the shard and endpoint named, instead
        // of a shard timing out mid-run with work already dispatched.
        for (index, endpoint) in endpoints.iter().enumerate() {
            let remote = |error: ServiceError| OrchestrateError::Remote {
                shard: index,
                endpoint: endpoint.to_string(),
                message: error.to_string(),
            };
            let mut probe = ServiceClient::<AnyTransport>::connect(endpoint).map_err(remote)?;
            let health = probe.health().map_err(remote)?;
            if !health.ready {
                return Err(OrchestrateError::Unhealthy {
                    shard: index,
                    endpoint: endpoint.to_string(),
                    reason: if health.draining {
                        "draining after shutdown".to_string()
                    } else {
                        format!(
                            "{}/{} engine workers alive",
                            health.workers_alive, health.workers_configured
                        )
                    },
                });
            }
        }
        // Dispatch every shard concurrently and join them all before
        // judging any (mirrors process mode: no shard is abandoned
        // mid-flight when a sibling fails), then report the earliest
        // failed shard.
        let outcomes: Vec<Result<RunOutcome, ServiceError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = endpoints
                .iter()
                .enumerate()
                .map(|(index, endpoint)| {
                    scope.spawn(move || {
                        let shard_spec = spec.clone().with_shard(index, count)?;
                        let mut client = ServiceClient::<AnyTransport>::connect(endpoint)?;
                        // Fleet shards are bulk work: dispatch at batch
                        // priority so an interactive probe against the
                        // same daemon overtakes them in the queue.
                        client.run_with(&shard_spec, &RunOptions::priority(Priority::Batch))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("fleet client thread"))
                .collect()
        });

        let mut merged = MergeStats::default();
        for (index, (endpoint, outcome)) in endpoints.iter().zip(outcomes).enumerate() {
            let outcome = outcome.map_err(|error| OrchestrateError::Remote {
                shard: index,
                endpoint: endpoint.to_string(),
                message: error.to_string(),
            })?;
            if outcome.model_digest != cache.model_digest() {
                // The rule a stale shard *file* gets: its entries are
                // dropped (counted), never merged and never conflicting;
                // the assembly pass recomputes them under this host's
                // constants.
                eprintln!(
                    "orchestrator: fleet shard {index} ({endpoint}) is stale \
                     (model digest {} != {}); recomputing its {} units locally",
                    outcome.model_digest,
                    cache.model_digest(),
                    outcome.units.len(),
                );
                merged.stale += outcome.units.len();
                continue;
            }
            let shard_cache = ResultCache::new();
            for unit in outcome.units {
                shard_cache.insert(unit.key, unit.output);
            }
            let stats = cache.merge_from(&shard_cache).map_err(|error| {
                OrchestrateError::RemoteConflict {
                    error,
                    endpoint: endpoint.to_string(),
                }
            })?;
            merged.added += stats.added;
            merged.identical += stats.identical;
            merged.stale += stats.stale;
        }

        // Assembly: identical to process mode — re-enter the scheduler
        // over the merged cache for one plan-ordered, value-identical
        // report (every unit a hit unless a stale shard was dropped).
        let report = run_campaign(spec, cache)?;
        Ok(OrchestratedRun {
            report,
            merged,
            processes: count,
        })
    }

    fn run_in(
        &self,
        program: &Path,
        base_args: &[String],
        spec: &CampaignSpec,
        cache: &ResultCache,
        scratch: &Path,
    ) -> Result<OrchestratedRun, OrchestrateError> {
        let spec_json = spec.to_json();

        // Warm start: ship the parent's cache to the children so units
        // the parent already knows are not recomputed anywhere.
        let warm_path = scratch.join("warm.json");
        let warm = if cache.stats().entries > 0 {
            cache.save(&warm_path)?;
            Some(warm_path)
        } else {
            None
        };

        let shard_path = |index: usize| scratch.join(format!("shard-{index}.json"));
        let mut children: Vec<(usize, Child)> = Vec::with_capacity(self.processes);
        for index in 0..self.processes {
            let mut command = Command::new(program);
            command
                .args(base_args)
                .arg(WORKER_FLAG)
                .arg("--spec-json")
                .arg(&spec_json)
                .arg("--shard")
                .arg(format!("{index}/{}", self.processes))
                .arg("--cache-out")
                .arg(shard_path(index))
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::piped());
            if let Some(warm) = &warm {
                command.arg("--cache-in").arg(warm);
            }
            match command.spawn() {
                Ok(child) => children.push((index, child)),
                Err(e) => {
                    // Reap what already started: a Child dropped without
                    // kill/wait keeps running (and turns into a zombie)
                    // while we delete its scratch out from under it.
                    for (_, mut running) in children {
                        running.kill().ok();
                        running.wait().ok();
                    }
                    return Err(OrchestrateError::Io(
                        format!("spawning {}", program.display()),
                        e.to_string(),
                    ));
                }
            }
        }

        // Wait for *every* child before judging any, so no process is
        // left running past this point, then report the earliest failed
        // shard.
        let mut first_failure: Option<OrchestrateError> = None;
        for (index, child) in children {
            let outcome = child.wait_with_output();
            if first_failure.is_some() {
                continue; // already failing; this wait was just a reap
            }
            match outcome {
                Ok(output) if output.status.success() => {}
                Ok(output) => {
                    first_failure = Some(OrchestrateError::Worker {
                        shard: index,
                        status: output.status.code(),
                        stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
                    });
                }
                Err(e) => {
                    first_failure = Some(OrchestrateError::Io(
                        format!("waiting for shard {index}"),
                        e.to_string(),
                    ));
                }
            }
        }
        if let Some(failure) = first_failure {
            return Err(failure);
        }

        // Join: every shard cache merges into the shared cache. Two
        // rules, mirroring `ResultCache::merge_from`: a shard file
        // stamped with a different model digest is *stale* — its entries
        // are invalidated (counted, recomputed by the assembly pass
        // below), never conflicting — while same-version shards merge
        // under the strict identity rule that turns a corrupt shard into
        // a loud error.
        let mut merged = MergeStats::default();
        for index in 0..self.processes {
            let load = ResultCache::load_checked(shard_path(index))?;
            merged.stale += load.invalidated;
            let stats = cache
                .merge_from(&load.cache)
                .map_err(|error| OrchestrateError::Merge {
                    error,
                    scratch: scratch.display().to_string(),
                })?;
            merged.added += stats.added;
            merged.identical += stats.identical;
            merged.stale += stats.stale;
        }

        // Assembly: re-enter the scheduler over the merged cache. Every
        // unit is a hit, so this is cheap — it exists to produce the one
        // unified, plan-ordered report.
        let report = run_campaign(spec, cache)?;
        Ok(OrchestratedRun {
            report,
            merged,
            processes: self.processes,
        })
    }
}

/// Worker-process entry point. Call first thing in `main`:
///
/// ```no_run
/// if let Some(code) = oranges_campaign::orchestrate::maybe_run_worker() {
///     std::process::exit(code);
/// }
/// // … normal argument parsing …
/// ```
///
/// Returns `None` when the arguments carry no [`WORKER_FLAG`] (the
/// process is not a worker). Otherwise runs the assigned shard — parse
/// spec, apply shard, run over a (possibly warm-started) private cache,
/// save it to `--cache-out` — and returns the exit code to terminate
/// with, printing any failure to stderr.
pub fn maybe_run_worker() -> Option<i32> {
    let args: Vec<String> = std::env::args().collect();
    if !args.iter().any(|arg| arg == WORKER_FLAG) {
        return None;
    }
    Some(match run_worker(&args) {
        Ok(()) => 0,
        Err(error) => {
            eprintln!("campaign worker: {error}");
            1
        }
    })
}

/// The worker body, separated for testability: runs one shard as
/// directed by `--spec-json`, `--shard I/N`, `--cache-out PATH`, and an
/// optional `--cache-in PATH` warm start.
pub fn run_worker(args: &[String]) -> Result<(), OrchestrateError> {
    let value_of = |flag: &str| -> Option<&str> {
        args.windows(2)
            .find(|pair| pair[0] == flag)
            .map(|pair| pair[1].as_str())
    };
    let require = |flag: &str| -> Result<&str, OrchestrateError> {
        value_of(flag).ok_or_else(|| OrchestrateError::Args(format!("missing {flag} <value>")))
    };

    let spec_json = require("--spec-json")?;
    let shard = require("--shard")?;
    let cache_out = PathBuf::from(require("--cache-out")?);

    let (index, count) = shard
        .split_once('/')
        .and_then(|(i, n)| Some((i.parse::<usize>().ok()?, n.parse::<usize>().ok()?)))
        .filter(|&(index, count)| count > 0 && index < count)
        .ok_or_else(|| OrchestrateError::Args(format!("bad --shard '{shard}', want I/N")))?;

    let spec = CampaignSpec::from_json(spec_json)?.with_shard(index, count)?;
    let cache = match value_of("--cache-in") {
        Some(path) if Path::new(path).exists() => ResultCache::load(path)?,
        _ => ResultCache::new(),
    };
    run_campaign(&spec, &cache)?;
    cache.save(&cache_out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentKind;
    use oranges_soc::chip::ChipGeneration;

    fn temp_file(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("oranges-worker-{}-{name}.json", std::process::id()))
    }

    fn args(pairs: &[(&str, &str)]) -> Vec<String> {
        let mut args = vec!["worker".to_string(), WORKER_FLAG.to_string()];
        for (flag, value) in pairs {
            args.push(flag.to_string());
            args.push(value.to_string());
        }
        args
    }

    #[test]
    fn worker_runs_its_shard_and_saves_the_cache() {
        let spec = CampaignSpec::new(
            vec![ExperimentKind::Fig4],
            vec![ChipGeneration::M1, ChipGeneration::M2],
        )
        .with_power_sizes(vec![2048])
        .with_workers(1);
        let out = temp_file("shard-ok");
        run_worker(&args(&[
            ("--spec-json", &spec.to_json()),
            ("--shard", "0/2"),
            ("--cache-out", out.to_str().unwrap()),
        ]))
        .expect("worker runs");
        let cache = ResultCache::load(&out).expect("saved cache loads");
        assert_eq!(cache.stats().entries, 1, "half of the 2-unit plan");
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn worker_rejects_malformed_invocations() {
        let ok_spec = CampaignSpec::smoke().to_json();
        let out = temp_file("shard-bad");
        let out_str = out.to_str().unwrap();
        for (pairs, want) in [
            (
                vec![("--shard", "0/2"), ("--cache-out", out_str)],
                "spec-json",
            ),
            (
                vec![("--spec-json", ok_spec.as_str()), ("--cache-out", out_str)],
                "shard",
            ),
            (
                vec![
                    ("--spec-json", ok_spec.as_str()),
                    ("--shard", "2/2"),
                    ("--cache-out", out_str),
                ],
                "shard",
            ),
            (
                vec![
                    ("--spec-json", "nope"),
                    ("--shard", "0/2"),
                    ("--cache-out", out_str),
                ],
                "spec",
            ),
        ] {
            let error = run_worker(&args(&pairs)).expect_err("must reject");
            assert!(
                error.to_string().contains(want),
                "{error} should mention {want}"
            );
        }
        assert!(!out.exists(), "no cache file on failure");
    }

    #[test]
    fn orchestrator_rejects_already_sharded_specs() {
        let spec = CampaignSpec::smoke().with_shard(0, 2).expect("valid shard");
        let error = Orchestrator::new("unused", 2)
            .run(&spec, &ResultCache::new())
            .expect_err("shard assignment belongs to the orchestrator");
        assert!(matches!(error, OrchestrateError::Args(_)), "{error}");
        assert!(error.to_string().contains("already-sharded"));
    }

    #[test]
    fn errors_render_their_context() {
        let error = OrchestrateError::Worker {
            shard: 2,
            status: Some(1),
            stderr: "boom\n".to_string(),
        };
        assert_eq!(error.to_string(), "shard 2 worker failed (exit 1): boom");
        let signal = OrchestrateError::Worker {
            shard: 0,
            status: None,
            stderr: String::new(),
        };
        assert!(signal.to_string().contains("signal"));
    }
}
