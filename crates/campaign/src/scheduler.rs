//! Campaign-level adapters over the unit-granular [`ExecutionEngine`].
//!
//! The engine schedules *units*; campaigns are just batches of them.
//! Both entry points here expand a spec to its plan, submit every unit
//! under one subscription, and assemble the deliveries back into
//! deterministic plan order:
//!
//! - [`run_campaign`] — spins up a private engine for the call (the
//!   one-shot CLI shape: threads live exactly as long as the campaign);
//! - [`WorkerPool`] — keeps one engine alive across calls (the service
//!   shape: warm platform pools, and *concurrent* `run`s coalesce
//!   overlapping units instead of computing them twice).
//!
//! Because each unit is deterministic and assembly sorts by plan index,
//! a concurrent campaign is value-identical to a serial one — the same
//! property the pre-engine scheduler had, now inherited from a core
//! that also dedupes across campaigns.

use crate::cache::ResultCache;
use crate::engine::{ExecutionEngine, Subscription};
use crate::plan::{Plan, UnitKey};
use crate::report::{CampaignReport, UnitReport};
use crate::spec::{CampaignSpec, SpecParseError};
use oranges::experiments::ExperimentError;
use std::fmt;
use std::time::Instant;

/// Campaign failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The spec did not describe a runnable campaign (e.g. a degenerate
    /// shard assignment patched directly into the struct).
    Spec(SpecParseError),
    /// A unit's experiment failed.
    Unit {
        /// Which unit.
        key: UnitKey,
        /// Its error.
        error: ExperimentError,
    },
    /// A unit's experiment *panicked*. The engine catches the unwind —
    /// only the subscriptions waiting on this unit fail, the engine and
    /// its workers keep serving.
    UnitPanicked {
        /// Which unit.
        key: UnitKey,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The engine itself misbehaved (shut down mid-campaign).
    Worker(String),
    /// The unit's subscription was cancelled (explicitly or by
    /// dropping it) before this unit ran. Coalesced siblings of the
    /// same unit are unaffected.
    Cancelled {
        /// Which unit.
        key: UnitKey,
    },
    /// The subscription's deadline expired before this unit resolved.
    /// If the computation was already running it still completes into
    /// the cache — only this delivery fails.
    DeadlineExceeded {
        /// Which unit.
        key: UnitKey,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(e) => write!(f, "campaign spec: {e}"),
            CampaignError::Unit { key, error } => write!(f, "unit {key} failed: {error}"),
            CampaignError::UnitPanicked { key, message } => {
                write!(f, "unit {key} panicked: {message}")
            }
            CampaignError::Worker(msg) => write!(f, "worker failure: {msg}"),
            CampaignError::Cancelled { key } => {
                write!(f, "unit {key} cancelled before it ran")
            }
            CampaignError::DeadlineExceeded { key } => {
                write!(f, "unit {key} missed its submission deadline")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<SpecParseError> for CampaignError {
    fn from(e: SpecParseError) -> Self {
        CampaignError::Spec(e)
    }
}

/// Expand a spec into its (possibly sharded) plan — the one expansion
/// path every entry point (CLI adapters and the service) goes through.
pub(crate) fn expand_plan(spec: &CampaignSpec) -> Result<Plan, CampaignError> {
    let plan = Plan::expand(spec);
    match spec.shard {
        Some((index, count)) => Ok(plan.shard(index, count)?),
        None => Ok(plan),
    }
}

/// Drain a whole-plan subscription into plan-ordered unit reports,
/// invoking `on_unit` for every successful unit *as it is delivered*
/// (completion order — this is how the service streams responses).
/// Every unit is awaited (units are independent, so siblings of a
/// failing unit finish and land in the cache for the next run); the
/// inner error reported is the earliest failing unit's, matching serial
/// semantics. The outer `Result` carries the observer's own failures
/// (e.g. a dead client socket), which abort the drain immediately.
pub(crate) fn assemble_streamed<E>(
    plan: &Plan,
    subscription: &Subscription,
    mut on_unit: impl FnMut(&UnitReport) -> Result<(), E>,
) -> Result<Result<Vec<UnitReport>, CampaignError>, E> {
    let mut slots: Vec<Option<UnitReport>> = (0..plan.len()).map(|_| None).collect();
    let mut first_error: Option<(usize, CampaignError)> = None;
    for _ in 0..subscription.expected() {
        let delivery = match subscription.recv() {
            Some(delivery) => delivery,
            None => {
                return Ok(Err(CampaignError::Worker(
                    "engine shut down mid-campaign".to_string(),
                )))
            }
        };
        match delivery.outcome {
            Ok(outcome) => {
                let unit = &plan.units[delivery.index];
                let report = UnitReport {
                    index: unit.index,
                    key: unit.key.clone(),
                    source: outcome.source,

                    wall: outcome.wall,
                    output: outcome.output,
                };
                on_unit(&report)?;
                slots[delivery.index] = Some(report);
            }
            Err(error) => {
                if first_error
                    .as_ref()
                    .map(|(index, _)| delivery.index < *index)
                    .unwrap_or(true)
                {
                    first_error = Some((delivery.index, error));
                }
            }
        }
    }
    if let Some((_, error)) = first_error {
        return Ok(Err(error));
    }
    let mut units = Vec::with_capacity(plan.len());
    for (unit, slot) in plan.units.iter().zip(slots) {
        match slot {
            Some(report) => units.push(report),
            None => {
                return Ok(Err(CampaignError::Worker(format!(
                    "unit {} never reported",
                    unit.key
                ))))
            }
        }
    }
    Ok(Ok(units))
}

/// [`assemble_streamed`] without an observer.
fn assemble(plan: &Plan, subscription: &Subscription) -> Result<Vec<UnitReport>, CampaignError> {
    match assemble_streamed(plan, subscription, |_| {
        Ok::<(), std::convert::Infallible>(())
    }) {
        Ok(inner) => inner,
        Err(never) => match never {},
    }
}

/// Run a campaign on a private, call-scoped engine. The cache persists
/// across calls: pass the same instance again and an identical spec
/// re-run is served entirely from it.
pub fn run_campaign(
    spec: &CampaignSpec,
    cache: &ResultCache,
) -> Result<CampaignReport, CampaignError> {
    let plan = expand_plan(spec)?;
    let workers = spec.workers.clamp(1, plan.len().max(1));
    let started = Instant::now();
    let engine = ExecutionEngine::new(workers);
    let subscription = engine.submit(&plan.units, cache);
    let units = assemble(&plan, &subscription)?;
    Ok(CampaignReport::new(
        units,
        workers,
        started.elapsed(),
        cache.stats(),
    ))
}

/// The serial baseline: the same plan, one worker, a private throwaway
/// cache (every unit computes). Concurrent campaigns are asserted
/// value-identical to this.
pub fn run_campaign_serial(spec: &CampaignSpec) -> Result<CampaignReport, CampaignError> {
    let serial_spec = spec.clone().with_workers(1);
    run_campaign(&serial_spec, &ResultCache::new())
}

/// A *persistent* campaign runner: one long-lived
/// [`ExecutionEngine`] that successive — and *concurrent* — campaigns
/// re-enter without paying thread spawn or platform construction again.
///
/// [`run_campaign`] builds an engine per call — right for a one-shot CLI
/// run. A long-running process (the campaign service) instead keeps one
/// `WorkerPool` alive and pushes every incoming spec through it: the
/// workers' platform state stays warm across requests, and because all
/// submissions share the engine's in-flight table, two overlapping
/// campaigns against the same [`ResultCache`] compute each shared unit
/// exactly once (the later one coalesces). The pool is `Sync`: `run`
/// takes `&self` and any number of threads may call it at once, each
/// getting its own subscription.
///
/// Dropping the pool shuts the engine's threads down.
pub struct WorkerPool {
    engine: ExecutionEngine,
}

impl WorkerPool {
    /// Spawn `workers` (≥ 1 enforced) persistent engine threads.
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            engine: ExecutionEngine::new(workers),
        }
    }

    /// Number of persistent threads.
    pub fn workers(&self) -> usize {
        self.engine.workers()
    }

    /// The underlying engine (e.g. to read its dedupe/coalesce
    /// counters).
    pub fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }

    /// Run one campaign through the shared engine. Semantically
    /// identical to [`run_campaign`] (same plan expansion, sharding,
    /// cache protocol, deterministic assembly, earliest-failure error) —
    /// only the engine lifetime differs. `spec.workers` is ignored; the
    /// pool's own size governs parallelism.
    pub fn run(
        &self,
        spec: &CampaignSpec,
        cache: &ResultCache,
    ) -> Result<CampaignReport, CampaignError> {
        let plan = expand_plan(spec)?;
        let started = Instant::now();
        let subscription = self.engine.submit(&plan.units, cache);
        let units = assemble(&plan, &subscription)?;
        Ok(CampaignReport::new(
            units,
            self.engine.workers().clamp(1, plan.len().max(1)),
            started.elapsed(),
            cache.stats(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentKind;
    use oranges_soc::chip::ChipGeneration;
    use std::time::Duration;

    fn tiny_spec(workers: usize) -> CampaignSpec {
        CampaignSpec::new(
            vec![ExperimentKind::Fig4, ExperimentKind::Contention],
            vec![ChipGeneration::M1, ChipGeneration::M3],
        )
        .with_power_sizes(vec![2048])
        .with_workers(workers)
    }

    #[test]
    fn inline_and_pooled_runs_agree() {
        let serial = run_campaign_serial(&tiny_spec(1)).unwrap();
        let pooled = run_campaign(&tiny_spec(3), &ResultCache::new()).unwrap();
        assert_eq!(serial.digest(), pooled.digest());
        assert_eq!(serial.units.len(), 4);
        assert_eq!(pooled.workers, 3);
    }

    #[test]
    fn rerun_is_fully_cached() {
        let cache = ResultCache::new();
        let first = run_campaign(&tiny_spec(2), &cache).unwrap();
        assert!(first.units.iter().all(|u| !u.from_cache()));
        let second = run_campaign(&tiny_spec(2), &cache).unwrap();
        assert!(second.units.iter().all(|u| u.from_cache()));
        assert_eq!(first.digest(), second.digest());
        assert_eq!(second.cache.hit_rate(), 0.5, "4 misses then 4 hits");
    }

    #[test]
    fn duplicate_units_coalesce_within_one_campaign() {
        let cache = ResultCache::new();
        let spec = CampaignSpec::new(
            vec![ExperimentKind::Fig4, ExperimentKind::Fig4],
            vec![ChipGeneration::M2],
        )
        .with_power_sizes(vec![2048])
        .with_workers(1);
        let report = run_campaign(&spec, &cache).unwrap();
        assert_eq!(report.units.len(), 2);
        assert!(!report.units[0].from_cache());
        assert!(report.units[1].from_cache(), "second occurrence coalesced");
        assert_eq!(report.units[0].output.json, report.units[1].output.json);
        assert_eq!(report.computed_units(), 1);
        assert_eq!(report.coalesced_units(), 1);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn worker_count_exceeding_plan_is_clamped() {
        let report = run_campaign(&tiny_spec(64), &ResultCache::new()).unwrap();
        assert_eq!(report.workers, 4, "clamped to the 4 plan units");
    }

    #[test]
    fn computed_units_carry_wall_time_everywhere() {
        let cache = ResultCache::new();
        let report = run_campaign(&tiny_spec(2), &cache).unwrap();
        for unit in &report.units {
            assert!(unit.wall > Duration::ZERO, "{}", unit.key);
            let compute = unit.output.wall_time_s().expect("stamped at compute time");
            assert!(compute > 0.0, "{}", unit.key);
            assert!(unit
                .output
                .sets
                .iter()
                .all(|s| s.provenance.wall_time_s == Some(compute)));
        }
        // Cache hits keep the original compute wall in provenance.
        let rerun = run_campaign(&tiny_spec(2), &cache).unwrap();
        for (unit, original) in rerun.units.iter().zip(&report.units) {
            assert!(unit.from_cache());
            assert_eq!(unit.output.wall_time_s(), original.output.wall_time_s());
        }
    }

    #[test]
    fn persistent_pool_matches_scoped_scheduler_and_reenters_warm() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        let cache = ResultCache::new();
        let first = pool.run(&tiny_spec(3), &cache).unwrap();
        let scoped = run_campaign(&tiny_spec(3), &ResultCache::new()).unwrap();
        assert_eq!(first.digest(), scoped.digest(), "same values either way");
        assert!(first.units.iter().all(|u| !u.from_cache()));

        // Re-entry over the warm cache: zero computed units.
        let second = pool.run(&tiny_spec(3), &cache).unwrap();
        assert!(second.units.iter().all(|u| u.from_cache()));
        assert_eq!(second.computed_units(), 0);
        assert_eq!(second.fingerprint(), first.fingerprint());

        // A different spec re-enters the same threads.
        let sharded = tiny_spec(3).with_shard(0, 2).expect("valid shard");
        let other = pool.run(&sharded, &cache).unwrap();
        assert_eq!(other.units.len(), 2);
        assert_eq!(
            pool.engine().stats().units_computed,
            4,
            "nothing recomputed"
        );
        drop(pool); // joins cleanly
    }

    #[test]
    fn pool_shuts_down_even_when_never_used() {
        let pool = WorkerPool::new(4);
        drop(pool);
    }

    #[test]
    fn a_degenerate_shard_patched_into_the_spec_is_a_typed_error() {
        // `with_shard` rejects this at build time; patching the field
        // directly must surface the same typed error, not a panic.
        let mut spec = tiny_spec(1);
        spec.shard = Some((9, 2));
        match run_campaign(&spec, &ResultCache::new()) {
            Err(CampaignError::Spec(error)) => {
                assert!(error.to_string().contains("out of range"), "{error}")
            }
            other => panic!("expected a spec error, got {other:?}"),
        }
    }

    #[test]
    fn sharded_specs_run_their_subset_only() {
        let whole = run_campaign(&tiny_spec(1), &ResultCache::new()).unwrap();
        let mut union: Vec<String> = Vec::new();
        for index in 0..2 {
            let spec = tiny_spec(1).with_shard(index, 2).expect("valid shard");
            let shard = run_campaign(&spec, &ResultCache::new()).unwrap();
            assert_eq!(shard.units.len(), 2, "4 units split 2/2");
            union.extend(shard.units.iter().map(|u| u.key.to_string()));
        }
        let mut expected: Vec<String> = whole.units.iter().map(|u| u.key.to_string()).collect();
        union.sort();
        expected.sort();
        assert_eq!(union, expected);
    }
}
